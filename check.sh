#!/usr/bin/env bash
# Full verification pipeline: what CI would run.
#
#   ./check.sh                full pipeline
#   ./check.sh --perf-smoke   only the hot-path perf gate (build timing,
#                             per-strategy latency, serve throughput →
#                             BENCH_perf.json; fails on >30% throughput
#                             regression or BestMatch p95 ≥ 1 ms)
set -euo pipefail
cd "$(dirname "$0")"

perf_smoke() {
    echo "== perf smoke (hot-path regression gate) =="
    cargo run -q --release -p goalrec-bench --bin loadgen -- --perf --seconds 2
    cargo run -q --release -p goalrec-bench --bin repro -- stats table6 --scale test > /dev/null
}

if [[ "${1:-}" == "--perf-smoke" ]]; then
    perf_smoke
    echo "OK"
    exit 0
fi

echo "== build =="
cargo build --workspace --all-targets

echo "== static analysis =="
cargo run -q -p goalrec-lint --bin goalrec-lint -- --baseline lint-baseline.json

echo "== tests =="
cargo test --workspace

echo "== docs =="
cargo doc --workspace --no-deps

echo "== examples =="
for ex in quickstart text_extraction hybrid_and_priorities; do
    cargo run -q --example "$ex" > /dev/null
done
for ex in grocery_store life_goals scalability; do
    cargo run -q --release --example "$ex" > /dev/null
done

echo "== repro smoke (test scale) =="
cargo run -q --release -p goalrec-bench --bin repro -- stats table6 --scale test > /dev/null

echo "== server smoke (healthz + recommend + SIGTERM drain) =="
cargo run -q --release -p goalrec-bench --bin loadgen -- --smoke

echo "== sharded server smoke (scatter-gather path, 2 shards) =="
cargo run -q --release -p goalrec-bench --bin loadgen -- --smoke --shards 2

echo "== chaos-reload smoke (faulted reloads roll back under live traffic) =="
cargo run -q --release -p goalrec-bench --bin loadgen -- --chaos-smoke

perf_smoke

echo "OK"
