//! Matrix-factorisation CF: ALS with weighted-λ regularisation
//! (the paper's "CF MF", §6; algorithm of Zhou et al. \[8\], adapted to the
//! implicit selection/non-selection feedback of both datasets).
//!
//! The user–action matrix induced by the training activities is factorised
//! into `num_factors`-dimensional user and action embeddings by alternating
//! least squares. Regularisation is weighted by the number of observations
//! per row/column — the "WR" in ALS-WR — and implicit feedback enters via
//! confidence weighting `c = 1 + α` on observed cells (Hu–Koren style), so
//! unobserved actions act as weak negatives instead of being ignored.
//!
//! Query activities unseen at training time are *folded in*: one
//! least-squares solve against the fixed action factors produces the user
//! embedding, exactly the update a training sweep would apply.

use crate::linalg::{cholesky_solve, dot, Matrix};
use crate::training::TrainingSet;
use goalrec_core::{ActionId, Activity, Recommender, Scored};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Hyper-parameters for [`AlsWr`].
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// Latent dimensionality.
    pub num_factors: usize,
    /// Number of alternating sweeps.
    pub num_iterations: usize,
    /// Regularisation strength λ (scaled per row by observation count).
    pub lambda: f64,
    /// Implicit-feedback confidence boost α: observed cells get weight 1+α.
    pub alpha: f64,
    /// Seed for factor initialisation.
    pub seed: u64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            num_factors: 16,
            num_iterations: 10,
            lambda: 0.05,
            alpha: 20.0,
            seed: 7,
        }
    }
}

/// The trained factor model.
#[derive(Debug, Clone)]
pub struct AlsWr {
    item_factors: Matrix,
    cfg: AlsConfig,
    /// Precomputed Gram matrix `YᵀY` of the item factors, reused by every
    /// fold-in solve.
    gram: Matrix,
}

impl AlsWr {
    /// Trains the factorisation on a corpus of activities.
    pub fn train(training: &TrainingSet, cfg: AlsConfig) -> Self {
        assert!(cfg.num_factors > 0 && cfg.num_iterations > 0);
        let f = cfg.num_factors;
        let n_items = training.num_actions;
        let n_users = training.num_users();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Item → users posting lists (the transpose of the training rows).
        let mut item_users: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for (u, acts) in training.users.iter().enumerate() {
            for &a in acts.raw() {
                item_users[a as usize].push(u as u32);
            }
        }

        let mut users = random_matrix(n_users, f, &mut rng);
        let mut items = random_matrix(n_items, f, &mut rng);

        for _ in 0..cfg.num_iterations {
            // Update users given items.
            let item_gram = gram(&items);
            let new_users: Vec<Vec<f64>> = (0..n_users)
                .into_par_iter()
                .map(|u| solve_side(training.users[u].raw(), &items, &item_gram, &cfg))
                .collect();
            for (u, row) in new_users.into_iter().enumerate() {
                users.row_mut(u).copy_from_slice(&row);
            }

            // Update items given users.
            let user_gram = gram(&users);
            let new_items: Vec<Vec<f64>> = (0..n_items)
                .into_par_iter()
                .map(|i| solve_side(&item_users[i], &users, &user_gram, &cfg))
                .collect();
            for (i, row) in new_items.into_iter().enumerate() {
                items.row_mut(i).copy_from_slice(&row);
            }
        }

        let gram = gram(&items);
        Self {
            item_factors: items,
            cfg,
            gram,
        }
    }

    /// Folds in an unseen activity: the user-factor solve with item factors
    /// held fixed.
    pub fn fold_in(&self, activity: &Activity) -> Vec<f64> {
        solve_side(activity.raw(), &self.item_factors, &self.gram, &self.cfg)
    }

    /// Predicted affinity of a folded-in user for one action.
    pub fn score(&self, user_factor: &[f64], action: ActionId) -> f64 {
        dot(user_factor, self.item_factors.row(action.index()))
    }

    /// Latent dimensionality.
    pub fn num_factors(&self) -> usize {
        self.cfg.num_factors
    }

    /// Number of actions in the model.
    pub fn num_actions(&self) -> usize {
        self.item_factors.rows()
    }
}

/// One ALS half-step for a single row: solve
/// `(Yᵀ C Y + λ n I) x = Yᵀ C p` where `C` boosts observed cells by `α`
/// and `p` is the binary preference vector. Using the precomputed Gram
/// matrix, `YᵀCY = YᵀY + α Σ_{observed} y yᵀ`, so the cost is
/// `O(|observed| f² + f³)`.
fn solve_side(observed: &[u32], factors: &Matrix, gram_full: &Matrix, cfg: &AlsConfig) -> Vec<f64> {
    let f = cfg.num_factors;
    if observed.is_empty() {
        return vec![0.0; f];
    }
    let mut a = gram_full.clone();
    let mut b = vec![0.0; f];
    for &obs in observed {
        let y = factors.row(obs as usize);
        a.syr(cfg.alpha, y);
        for (bi, &yi) in b.iter_mut().zip(y) {
            *bi += (1.0 + cfg.alpha) * yi;
        }
    }
    // Weighted-λ: scale the ridge by the row's observation count.
    a.add_diagonal(cfg.lambda * observed.len() as f64);
    cholesky_solve(&a, &b).unwrap_or_else(|| vec![0.0; f])
}

fn gram(m: &Matrix) -> Matrix {
    let f = m.cols();
    let mut g = Matrix::zeros(f, f);
    for r in 0..m.rows() {
        g.syr(1.0, m.row(r));
    }
    g
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for v in m.row_mut(r) {
            *v = rng.gen_range(-0.1..0.1);
        }
    }
    m
}

impl Recommender for AlsWr {
    fn name(&self) -> String {
        "CF-MF".to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 || activity.is_empty() {
            return Vec::new();
        }
        let x = self.fold_in(activity);
        if x.iter().all(|&v| v == 0.0) {
            return Vec::new();
        }
        goalrec_core::topk::top_k(
            (0..self.num_actions() as u32)
                .filter(|&a| !activity.contains(ActionId::new(a)))
                .map(|a| Scored::new(ActionId::new(a), self.score(&x, ActionId::new(a)))),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint taste clusters: users 0-3 pick from items 0-4,
    /// users 4-7 from items 5-9.
    fn clustered_training() -> TrainingSet {
        TrainingSet::new(
            vec![
                Activity::from_raw([0, 1, 2]),
                Activity::from_raw([1, 2, 3]),
                Activity::from_raw([0, 2, 4]),
                Activity::from_raw([0, 3, 4]),
                Activity::from_raw([5, 6, 7]),
                Activity::from_raw([6, 7, 8]),
                Activity::from_raw([5, 7, 9]),
                Activity::from_raw([5, 8, 9]),
            ],
            10,
        )
    }

    fn quick_cfg() -> AlsConfig {
        AlsConfig {
            num_factors: 8,
            num_iterations: 8,
            ..AlsConfig::default()
        }
    }

    #[test]
    fn learns_cluster_structure() {
        let model = AlsWr::train(&clustered_training(), quick_cfg());
        // A user who selected items 0 and 1 should prefer the 0-4 cluster:
        // the top recommendations are the strongly co-occurring items 2/3,
        // well ahead of anything from the other cluster.
        let h = Activity::from_raw([0, 1]);
        let recs = model.recommend(&h, 2);
        assert_eq!(recs.len(), 2);
        for rec in &recs {
            assert!(
                rec.action.raw() <= 4,
                "expected in-cluster item, got {} in {recs:?}",
                rec.action
            );
        }
        let best_cross = (5..10u32)
            .map(|a| model.score(&model.fold_in(&h), ActionId::new(a)))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(recs[0].score > best_cross + 0.05);
    }

    #[test]
    fn in_cluster_scores_beat_cross_cluster() {
        let model = AlsWr::train(&clustered_training(), quick_cfg());
        let x = model.fold_in(&Activity::from_raw([0, 1]));
        let in_cluster = model.score(&x, ActionId::new(2));
        let cross = model.score(&x, ActionId::new(7));
        assert!(
            in_cluster > cross,
            "in-cluster {in_cluster} vs cross {cross}"
        );
    }

    #[test]
    fn never_recommends_performed_actions() {
        let model = AlsWr::train(&clustered_training(), quick_cfg());
        let h = Activity::from_raw([0, 1, 2]);
        for rec in model.recommend(&h, 10) {
            assert!(!h.contains(rec.action));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = AlsWr::train(&clustered_training(), quick_cfg());
        let b = AlsWr::train(&clustered_training(), quick_cfg());
        let h = Activity::from_raw([0, 1]);
        assert_eq!(a.recommend(&h, 5), b.recommend(&h, 5));
    }

    #[test]
    fn empty_activity_and_zero_k() {
        let model = AlsWr::train(&clustered_training(), quick_cfg());
        assert!(model.recommend(&Activity::new(), 5).is_empty());
        assert!(model.recommend(&Activity::from_raw([0]), 0).is_empty());
    }

    #[test]
    fn fold_in_of_empty_is_zero_vector() {
        let model = AlsWr::train(&clustered_training(), quick_cfg());
        assert!(model.fold_in(&Activity::new()).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accessors() {
        let model = AlsWr::train(&clustered_training(), quick_cfg());
        assert_eq!(model.num_factors(), 8);
        assert_eq!(model.num_actions(), 10);
        assert_eq!(model.name(), "CF-MF");
    }

    #[test]
    fn reconstructs_observed_preferences() {
        // With enough factors the model should score a user's own items
        // well above unrelated ones on average.
        let training = clustered_training();
        let model = AlsWr::train(&training, quick_cfg());
        let mut own = 0.0;
        let mut other = 0.0;
        for u in &training.users {
            let x = model.fold_in(u);
            for a in 0..10u32 {
                let s = model.score(&x, ActionId::new(a));
                if u.contains(ActionId::new(a)) {
                    own += s;
                } else {
                    other += s;
                }
            }
        }
        assert!(own / 24.0 > other / 56.0, "own {own} other {other}");
    }
}
