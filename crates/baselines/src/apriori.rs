//! Association-rule mining baseline (Apriori).
//!
//! §2 of the paper argues association rules cannot replicate goal-based
//! recommendations because they are popularity-driven and conflate actions
//! co-occurring for *different* goals. This module implements classic
//! Apriori over the training activities — frequent itemsets up to a size
//! bound, then rules `X → y` filtered by confidence — so that claim can be
//! tested empirically.

use crate::training::TrainingSet;
use goalrec_core::{setops, ActionId, Activity, Recommender, Scored};
use std::collections::HashMap;

/// Mining parameters.
#[derive(Debug, Clone)]
pub struct AprioriConfig {
    /// Minimum support as an absolute transaction count.
    pub min_support: usize,
    /// Minimum rule confidence in `[0, 1]`.
    pub min_confidence: f64,
    /// Maximum itemset size (antecedent size + 1). 3 keeps mining tractable
    /// on cart-sized transactions.
    pub max_itemset_size: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        Self {
            min_support: 4,
            min_confidence: 0.2,
            max_itemset_size: 3,
        }
    }
}

/// One mined rule `antecedent → consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Sorted antecedent item ids.
    pub antecedent: Vec<u32>,
    /// The single consequent item.
    pub consequent: u32,
    /// Rule confidence `support(X ∪ {y}) / support(X)`.
    pub confidence: f64,
    /// Absolute support of the full itemset.
    pub support: usize,
}

/// The association-rule recommender.
#[derive(Debug, Clone)]
pub struct Apriori {
    rules: Vec<Rule>,
}

impl Apriori {
    /// Mines rules from the training corpus.
    pub fn mine(training: &TrainingSet, cfg: &AprioriConfig) -> Self {
        assert!(cfg.max_itemset_size >= 2, "rules need itemsets of size ≥ 2");
        let transactions: Vec<&[u32]> = training.users.iter().map(|u| u.raw()).collect();

        // Level 1: frequent single items.
        let mut item_support: HashMap<u32, usize> = HashMap::new();
        for t in &transactions {
            for &a in *t {
                *item_support.entry(a).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<(Vec<u32>, usize)> = item_support
            .iter()
            .filter(|&(_, &s)| s >= cfg.min_support)
            .map(|(&a, &s)| (vec![a], s))
            .collect();
        frequent.sort_by(|a, b| a.0.cmp(&b.0));

        let mut support_of: HashMap<Vec<u32>, usize> = frequent.iter().cloned().collect();
        let mut level = frequent;

        for _size in 2..=cfg.max_itemset_size {
            // Candidate generation: join sets sharing a (size−1)-prefix.
            let mut candidates: Vec<Vec<u32>> = Vec::new();
            for i in 0..level.len() {
                for j in (i + 1)..level.len() {
                    let (a, b) = (&level[i].0, &level[j].0);
                    if a[..a.len() - 1] != b[..b.len() - 1] {
                        break; // sorted level → prefixes diverge for good
                    }
                    let mut cand = a.clone();
                    cand.push(b[b.len() - 1]);
                    // Prune: all (size−1)-subsets must be frequent.
                    let all_frequent = (0..cand.len()).all(|drop| {
                        let mut sub = cand.clone();
                        sub.remove(drop);
                        support_of.contains_key(&sub)
                    });
                    if all_frequent {
                        candidates.push(cand);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            // Count support by enumerating each transaction's size-_size_
            // subsets over level-1 frequent items and probing the candidate
            // set — O(Σ C(|t|, size)) instead of |candidates| × |T| scans,
            // which is what makes mining tractable on 20k carts.
            let candidate_set: std::collections::HashSet<&[u32]> =
                candidates.iter().map(Vec::as_slice).collect();
            let frequent_items: std::collections::HashSet<u32> = support_of
                .keys()
                .filter(|k| k.len() == 1)
                .map(|k| k[0])
                .collect();
            let size = candidates[0].len();
            let mut counts: HashMap<&[u32], usize> = HashMap::new();
            let mut scratch = Vec::with_capacity(size);
            for t in &transactions {
                let filtered: Vec<u32> = t
                    .iter()
                    .copied()
                    .filter(|a| frequent_items.contains(a))
                    .collect();
                if filtered.len() < size {
                    continue;
                }
                for_each_combination(&filtered, size, &mut scratch, &mut |subset| {
                    if let Some(&key) = candidate_set.get(subset) {
                        *counts.entry(key).or_insert(0) += 1;
                    }
                });
            }
            let mut next: Vec<(Vec<u32>, usize)> = counts
                .into_iter()
                .filter(|&(_, s)| s >= cfg.min_support)
                .map(|(k, s)| (k.to_vec(), s))
                .collect();
            next.sort_by(|a, b| a.0.cmp(&b.0));
            if next.is_empty() {
                break;
            }
            for (k, s) in &next {
                support_of.insert(k.clone(), *s);
            }
            level = next;
        }

        // Rule generation: for every frequent itemset of size ≥ 2, peel off
        // each single item as the consequent.
        let mut rules = Vec::new();
        for (itemset, &support) in &support_of {
            if itemset.len() < 2 {
                continue;
            }
            for (pos, &consequent) in itemset.iter().enumerate() {
                let mut antecedent = itemset.clone();
                antecedent.remove(pos);
                // Subsets of frequent sets are frequent (the a-priori
                // property), so the antecedent is always present; skip the
                // rule rather than abort if that invariant ever breaks.
                let Some(ante_support) = support_of.get(&antecedent).copied() else {
                    continue;
                };
                let confidence = support as f64 / ante_support as f64;
                if confidence >= cfg.min_confidence {
                    rules.push(Rule {
                        antecedent,
                        consequent,
                        confidence,
                        support,
                    });
                }
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.antecedent.cmp(&b.antecedent))
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        Self { rules }
    }

    /// The mined rules, confidence-descending.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}

/// Calls `f` on every sorted `size`-combination of `items` (which must be
/// sorted), using `scratch` as the working buffer.
fn for_each_combination(
    items: &[u32],
    size: usize,
    scratch: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32]),
) {
    if scratch.len() == size {
        f(scratch);
        return;
    }
    let needed = size - scratch.len();
    for (i, &item) in items.iter().enumerate() {
        if items.len() - i < needed {
            break;
        }
        scratch.push(item);
        for_each_combination(&items[i + 1..], size, scratch, f);
        scratch.pop();
    }
}

impl Recommender for Apriori {
    fn name(&self) -> String {
        "Apriori".to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 || activity.is_empty() {
            return Vec::new();
        }
        // Score each candidate by the best firing rule's confidence; break
        // confidence ties with support (scaled into the fraction digits so
        // confidence dominates).
        let mut best: HashMap<u32, f64> = HashMap::new();
        for rule in &self.rules {
            if activity.contains(ActionId::new(rule.consequent)) {
                continue;
            }
            if setops::intersection_len(&rule.antecedent, activity.raw()) == rule.antecedent.len() {
                let score = rule.confidence + (rule.support as f64).min(1e6) * 1e-9;
                let e = best.entry(rule.consequent).or_insert(0.0);
                if score > *e {
                    *e = score;
                }
            }
        }
        goalrec_core::topk::top_k(
            best.into_iter()
                .map(|(a, s)| Scored::new(ActionId::new(a), s)),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Beer–diapers style corpus: {0,1} co-occur strongly; 2 tags along
    /// half the time; 3 is frequent alone.
    fn training() -> TrainingSet {
        let mut users = Vec::new();
        for i in 0..8 {
            let mut t = vec![0u32, 1];
            if i % 2 == 0 {
                t.push(2);
            }
            users.push(Activity::from_raw(t));
        }
        for _ in 0..6 {
            users.push(Activity::from_raw([3u32]));
        }
        TrainingSet::new(users, 5)
    }

    fn mined() -> Apriori {
        Apriori::mine(
            &training(),
            &AprioriConfig {
                min_support: 3,
                min_confidence: 0.3,
                max_itemset_size: 3,
            },
        )
    }

    #[test]
    fn mines_expected_rules() {
        let ap = mined();
        // 0→1 should exist with confidence 1.0 (always together).
        let r = ap
            .rules()
            .iter()
            .find(|r| r.antecedent == vec![0] && r.consequent == 1)
            .expect("rule 0→1 missing");
        assert_eq!(r.confidence, 1.0);
        assert_eq!(r.support, 8);
        // {0,1}→2 has confidence 0.5.
        let r2 = ap
            .rules()
            .iter()
            .find(|r| r.antecedent == vec![0, 1] && r.consequent == 2)
            .expect("rule {0,1}→2 missing");
        assert!((r2.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_rules_for_isolated_items() {
        let ap = mined();
        assert!(ap.rules().iter().all(|r| r.consequent != 3));
        assert!(ap.rules().iter().all(|r| !r.antecedent.contains(&3)));
    }

    #[test]
    fn recommends_rule_consequents() {
        let ap = mined();
        let recs = ap.recommend(&Activity::from_raw([0]), 5);
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids[0], 1, "strongest consequent first: {recs:?}");
        assert!(ids.contains(&2));
        assert!(!ids.contains(&3), "popular-but-uncorrelated item excluded");
    }

    #[test]
    fn firing_requires_full_antecedent() {
        let ap = mined();
        // Activity {2}: rules with antecedent {0,1} or {0} don't fire from
        // item 2 alone except those with antecedent {2}.
        let recs = ap.recommend(&Activity::from_raw([2]), 5);
        for r in &recs {
            assert_ne!(r.action.raw(), 3);
        }
    }

    #[test]
    fn never_recommends_performed() {
        let ap = mined();
        let h = Activity::from_raw([0, 1]);
        for r in ap.recommend(&h, 5) {
            assert!(!h.contains(r.action));
        }
    }

    #[test]
    fn support_threshold_filters() {
        let strict = Apriori::mine(
            &training(),
            &AprioriConfig {
                min_support: 100,
                min_confidence: 0.1,
                max_itemset_size: 3,
            },
        );
        assert!(strict.rules().is_empty());
        assert!(strict.recommend(&Activity::from_raw([0]), 5).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let ap = mined();
        assert!(ap.recommend(&Activity::new(), 5).is_empty());
        assert!(ap.recommend(&Activity::from_raw([0]), 0).is_empty());
        assert_eq!(ap.name(), "Apriori");
    }

    #[test]
    fn deterministic_rule_order() {
        let a = mined();
        let b = mined();
        assert_eq!(a.rules(), b.rules());
    }
}
