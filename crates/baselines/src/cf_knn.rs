//! Nearest-neighbour collaborative filtering (the paper's "CF KNN", §6).
//!
//! The classic user-based kNN recommender over implicit feedback \[20\]:
//! find the `n` training users most similar to the query activity
//! (Tanimoto coefficient by default, since the feedback is selection /
//! non-selection), then score each candidate action by the summed
//! similarity of the neighbours who selected it.

use crate::similarity::SetSimilarity;
use crate::training::TrainingSet;
use goalrec_core::{ActionId, Activity, Recommender, Scored};
use std::collections::HashMap;

/// User-based kNN collaborative filtering.
#[derive(Debug, Clone)]
pub struct CfKnn {
    training: TrainingSet,
    neighbourhood: usize,
    similarity: SetSimilarity,
}

impl CfKnn {
    /// Creates a kNN recommender over a training corpus with a
    /// neighbourhood of `n` users.
    pub fn new(training: TrainingSet, neighbourhood: usize, similarity: SetSimilarity) -> Self {
        assert!(neighbourhood > 0, "neighbourhood must be positive");
        Self {
            training,
            neighbourhood,
            similarity,
        }
    }

    /// Paper configuration: Tanimoto similarity.
    pub fn tanimoto(training: TrainingSet, neighbourhood: usize) -> Self {
        Self::new(training, neighbourhood, SetSimilarity::Tanimoto)
    }

    /// The `n` most similar training users (index, similarity), similarity
    /// descending, ties by index; zero-similarity users are excluded.
    pub fn neighbours(&self, activity: &Activity) -> Vec<(usize, f64)> {
        let mut sims: Vec<(usize, f64)> = self
            .training
            .users
            .iter()
            .enumerate()
            .filter_map(|(i, u)| {
                let s = self.similarity.compute(activity.raw(), u.raw());
                (s > 0.0).then_some((i, s))
            })
            .collect();
        sims.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        sims.truncate(self.neighbourhood);
        sims
    }
}

impl Recommender for CfKnn {
    fn name(&self) -> String {
        "CF-kNN".to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 || activity.is_empty() {
            return Vec::new();
        }
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for (user, sim) in self.neighbours(activity) {
            for &a in self.training.users[user].raw() {
                if !activity.contains(ActionId::new(a)) {
                    *scores.entry(a).or_insert(0.0) += sim;
                }
            }
        }
        goalrec_core::topk::top_k(
            scores
                .into_iter()
                .map(|(a, s)| Scored::new(ActionId::new(a), s)),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> TrainingSet {
        TrainingSet::new(
            vec![
                Activity::from_raw([0, 1, 2]),    // u0
                Activity::from_raw([0, 1, 3]),    // u1
                Activity::from_raw([5, 6, 7]),    // u2 (disjoint cluster)
                Activity::from_raw([0, 2, 3, 4]), // u3
            ],
            8,
        )
    }

    #[test]
    fn neighbours_are_similarity_ordered() {
        let cf = CfKnn::tanimoto(training(), 10);
        let h = Activity::from_raw([0, 1]);
        let n = cf.neighbours(&h);
        // u0: 2/3, u1: 2/3, u3: 1/5, u2: 0 (excluded).
        assert_eq!(n.len(), 3);
        assert_eq!(n[0].0, 0);
        assert_eq!(n[1].0, 1);
        assert_eq!(n[2].0, 2 + 1); // u3
        assert!(n[0].1 >= n[1].1 && n[1].1 > n[2].1);
    }

    #[test]
    fn neighbourhood_size_truncates() {
        let cf = CfKnn::tanimoto(training(), 1);
        let h = Activity::from_raw([0, 1]);
        assert_eq!(cf.neighbours(&h).len(), 1);
    }

    #[test]
    fn recommends_neighbour_items_not_in_activity() {
        let cf = CfKnn::tanimoto(training(), 2);
        let h = Activity::from_raw([0, 1]);
        let recs = cf.recommend(&h, 5);
        // Neighbours u0 {0,1,2} and u1 {0,1,3} contribute 2 and 3.
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert!(ids.contains(&2) && ids.contains(&3));
        assert!(!ids.contains(&0) && !ids.contains(&1));
    }

    #[test]
    fn follows_the_crowd_not_the_goal_structure() {
        // The philosophical difference the paper stresses: kNN can only
        // surface actions seen in similar users' histories.
        let cf = CfKnn::tanimoto(training(), 4);
        let h = Activity::from_raw([0, 1]);
        for rec in cf.recommend(&h, 8) {
            let in_some_neighbour = training().users.iter().any(|u| u.contains(rec.action));
            assert!(in_some_neighbour);
        }
    }

    #[test]
    fn empty_activity_or_no_overlap_yields_empty() {
        let cf = CfKnn::tanimoto(training(), 3);
        assert!(cf.recommend(&Activity::new(), 5).is_empty());
        let stranger = Activity::from_raw([9, 10]); // ids unseen in training
        assert!(cf.recommend(&stranger, 5).is_empty());
    }

    #[test]
    fn respects_k() {
        let cf = CfKnn::tanimoto(training(), 4);
        let h = Activity::from_raw([0]);
        assert!(cf.recommend(&h, 2).len() <= 2);
        assert!(cf.recommend(&h, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "neighbourhood")]
    fn zero_neighbourhood_rejected() {
        CfKnn::tanimoto(training(), 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(CfKnn::tanimoto(training(), 2).name(), "CF-kNN");
    }
}
