//! Content-based filtering (the paper's "Content" baseline, §6).
//!
//! Actions are described by sparse domain-specific feature vectors (for
//! FoodMart: the 128 product (sub)categories plus their top-level classes).
//! The user profile is the mean of the feature vectors of the actions in
//! the activity; candidates are ranked by cosine similarity to the profile.
//! This is the method whose recommendation lists are maximally
//! self-similar (Table 5: average pairwise similarity ≈ 0.8).

use goalrec_core::{ActionId, Activity, Recommender, Scored};
use std::collections::BTreeMap;

/// Sparse feature vectors, one per action.
#[derive(Debug, Clone, Default)]
pub struct ItemFeatures {
    vectors: Vec<Vec<(u32, f64)>>,
    norms: Vec<f64>,
}

impl ItemFeatures {
    /// Creates the feature table; each action's vector is a sparse list of
    /// `(dimension, weight)` pairs.
    pub fn new(vectors: Vec<Vec<(u32, f64)>>) -> Self {
        let norms = vectors
            .iter()
            .map(|v| v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt())
            .collect();
        Self { vectors, norms }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether no action has features.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The sparse vector of one action.
    pub fn vector(&self, a: ActionId) -> &[(u32, f64)] {
        &self.vectors[a.index()]
    }

    /// Cosine similarity between two actions' feature vectors — the
    /// pairwise similarity of Table 5.
    pub fn pairwise_similarity(&self, a: ActionId, b: ActionId) -> f64 {
        let (na, nb) = (self.norms[a.index()], self.norms[b.index()]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        sparse_dot(&self.vectors[a.index()], &self.vectors[b.index()]) / (na * nb)
    }
}

fn sparse_dot(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    // Feature vectors are tiny (a handful of dims); a nested scan beats
    // hashing.
    let mut dot = 0.0;
    for &(da, wa) in a {
        for &(db, wb) in b {
            if da == db {
                dot += wa * wb;
            }
        }
    }
    dot
}

/// The content-based recommender.
#[derive(Debug, Clone)]
pub struct ContentBased {
    features: ItemFeatures,
}

impl ContentBased {
    /// Creates a content-based recommender from item features.
    pub fn new(features: ItemFeatures) -> Self {
        Self { features }
    }

    /// The dense-as-map user profile: mean of the activity's vectors.
    /// A `BTreeMap` keeps every float accumulation in dimension order, so
    /// scores are bit-for-bit reproducible across runs.
    pub fn profile(&self, activity: &Activity) -> BTreeMap<u32, f64> {
        let mut p: BTreeMap<u32, f64> = BTreeMap::new();
        for a in activity.iter() {
            if a.index() >= self.features.len() {
                continue;
            }
            for &(d, w) in self.features.vector(a) {
                *p.entry(d).or_insert(0.0) += w;
            }
        }
        let n = activity.len().max(1) as f64;
        for v in p.values_mut() {
            *v /= n;
        }
        p
    }
}

impl Recommender for ContentBased {
    fn name(&self) -> String {
        "Content".to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 || activity.is_empty() {
            return Vec::new();
        }
        let profile = self.profile(activity);
        if profile.is_empty() {
            return Vec::new();
        }
        let pnorm: f64 = profile.values().map(|w| w * w).sum::<f64>().sqrt();
        goalrec_core::topk::top_k(
            (0..self.features.len() as u32)
                .filter(|&a| !activity.contains(ActionId::new(a)))
                .filter_map(|a| {
                    let id = ActionId::new(a);
                    let vnorm = self.features.norms[id.index()];
                    if vnorm == 0.0 {
                        return None;
                    }
                    let dot: f64 = self
                        .features
                        .vector(id)
                        .iter()
                        .map(|(d, w)| profile.get(d).copied().unwrap_or(0.0) * w)
                        .sum();
                    Some(Scored::new(id, dot / (pnorm * vnorm)))
                }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Items 0-2 share category 0; items 3-4 share category 1; item 5 has
    /// no features.
    fn features() -> ItemFeatures {
        ItemFeatures::new(vec![
            vec![(0, 1.0)],
            vec![(0, 1.0)],
            vec![(0, 1.0), (7, 0.5)],
            vec![(1, 1.0)],
            vec![(1, 1.0)],
            vec![],
        ])
    }

    #[test]
    fn recommends_same_category_items() {
        let cb = ContentBased::new(features());
        let h = Activity::from_raw([0]);
        let recs = cb.recommend(&h, 3);
        // Items 1 and 2 (category 0) must precede 3 and 4 (category 1).
        assert_eq!(recs[0].action, ActionId::new(1));
        assert_eq!(recs[1].action, ActionId::new(2));
        assert!(recs[0].score > 0.99);
    }

    #[test]
    fn featureless_items_are_never_recommended() {
        let cb = ContentBased::new(features());
        let recs = cb.recommend(&Activity::from_raw([0]), 10);
        assert!(recs.iter().all(|r| r.action != ActionId::new(5)));
    }

    #[test]
    fn profile_averages_vectors() {
        let cb = ContentBased::new(features());
        let p = cb.profile(&Activity::from_raw([0, 3]));
        assert_eq!(p.get(&0), Some(&0.5));
        assert_eq!(p.get(&1), Some(&0.5));
    }

    #[test]
    fn pairwise_similarity_values() {
        let f = features();
        assert_eq!(
            f.pairwise_similarity(ActionId::new(0), ActionId::new(1)),
            1.0
        );
        assert_eq!(
            f.pairwise_similarity(ActionId::new(0), ActionId::new(3)),
            0.0
        );
        assert_eq!(
            f.pairwise_similarity(ActionId::new(0), ActionId::new(5)),
            0.0
        );
        // Item 2 has an extra feature dim, so similarity to 0 is < 1.
        let s = f.pairwise_similarity(ActionId::new(0), ActionId::new(2));
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn empty_activity_zero_k_and_unknown_actions() {
        let cb = ContentBased::new(features());
        assert!(cb.recommend(&Activity::new(), 5).is_empty());
        assert!(cb.recommend(&Activity::from_raw([0]), 0).is_empty());
        // Activity of only-unknown ids → empty profile → empty list.
        assert!(cb.recommend(&Activity::from_raw([99]), 5).is_empty());
    }

    #[test]
    fn never_recommends_performed() {
        let cb = ContentBased::new(features());
        let h = Activity::from_raw([0, 1]);
        for r in cb.recommend(&h, 10) {
            assert!(!h.contains(r.action));
        }
    }

    #[test]
    fn accessors() {
        let f = features();
        assert_eq!(f.len(), 6);
        assert!(!f.is_empty());
        assert_eq!(f.vector(ActionId::new(2)).len(), 2);
        assert_eq!(ContentBased::new(f).name(), "Content");
    }
}
