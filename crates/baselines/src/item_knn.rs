//! Item-based nearest-neighbour collaborative filtering.
//!
//! The classic complement to the paper's user-based CF-kNN: precompute an
//! item-item similarity matrix from column co-occurrence (Tanimoto over
//! the items' user sets), keep the top-`n` neighbours per item, and score
//! candidates by their summed similarity to the activity's items. Not in
//! the paper's comparison set, but the standard production variant — and
//! a useful extra reference point for the overlap studies.

use crate::similarity::SetSimilarity;
use crate::training::TrainingSet;
use goalrec_core::{ActionId, Activity, Recommender, Scored};
use std::collections::HashMap;

/// Item-based kNN with a precomputed truncated similarity matrix.
#[derive(Debug, Clone)]
pub struct ItemKnn {
    /// Per item: its top neighbours as `(item, similarity)`, similarity
    /// descending.
    neighbours: Vec<Vec<(u32, f64)>>,
}

impl ItemKnn {
    /// Builds the truncated item-item matrix from a training corpus.
    ///
    /// Cost: one pass over transactions to accumulate co-occurrence counts
    /// (`O(Σ |t|²)`), then per-item similarity + truncation to
    /// `neighbourhood` entries.
    pub fn train(training: &TrainingSet, neighbourhood: usize, similarity: SetSimilarity) -> Self {
        assert!(neighbourhood > 0, "neighbourhood must be positive");
        let n = training.num_actions;
        let mut item_count = vec![0u32; n];
        let mut co: HashMap<(u32, u32), u32> = HashMap::new();
        for t in &training.users {
            let items = t.raw();
            for (i, &a) in items.iter().enumerate() {
                item_count[a as usize] += 1;
                for &b in &items[i + 1..] {
                    *co.entry((a, b)).or_insert(0) += 1;
                }
            }
        }

        let mut neighbours: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (&(a, b), &both) in &co {
            let (ca, cb) = (item_count[a as usize] as f64, item_count[b as usize] as f64);
            let both = both as f64;
            let sim = match similarity {
                SetSimilarity::Tanimoto => both / (ca + cb - both),
                SetSimilarity::Cosine => both / (ca * cb).sqrt(),
                SetSimilarity::Overlap => both / ca.min(cb),
            };
            if sim > 0.0 {
                neighbours[a as usize].push((b, sim));
                neighbours[b as usize].push((a, sim));
            }
        }
        for (item, list) in neighbours.iter_mut().enumerate() {
            list.sort_by(|x, y| {
                y.1.partial_cmp(&x.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| x.0.cmp(&y.0))
            });
            list.truncate(neighbourhood);
            debug_assert!(list.iter().all(|&(b, _)| b as usize != item));
        }
        Self { neighbours }
    }

    /// The stored neighbours of one item.
    pub fn neighbours_of(&self, a: ActionId) -> &[(u32, f64)] {
        self.neighbours
            .get(a.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> String {
        "Item-kNN".to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 || activity.is_empty() {
            return Vec::new();
        }
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for a in activity.iter() {
            for &(b, sim) in self.neighbours_of(a) {
                if !activity.contains(ActionId::new(b)) {
                    *scores.entry(b).or_insert(0.0) += sim;
                }
            }
        }
        goalrec_core::topk::top_k(
            scores
                .into_iter()
                .map(|(a, s)| Scored::new(ActionId::new(a), s)),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Items 0,1 always co-occur; 2 joins them half the time; 3,4 form a
    /// separate pair.
    fn training() -> TrainingSet {
        let mut users = Vec::new();
        for i in 0..8 {
            let mut t = vec![0u32, 1];
            if i % 2 == 0 {
                t.push(2);
            }
            users.push(Activity::from_raw(t));
        }
        for _ in 0..4 {
            users.push(Activity::from_raw([3u32, 4]));
        }
        TrainingSet::new(users, 6)
    }

    #[test]
    fn similarity_matrix_structure() {
        let m = ItemKnn::train(&training(), 5, SetSimilarity::Tanimoto);
        let n0 = m.neighbours_of(ActionId::new(0));
        // 0's best neighbour is 1 (sim 1.0), then 2 (4/(8+4-4)=0.5).
        assert_eq!(n0[0], (1, 1.0));
        assert!((n0[1].1 - 0.5).abs() < 1e-12);
        // Cross-cluster pairs never co-occur.
        assert!(n0.iter().all(|&(b, _)| b != 3 && b != 4));
    }

    #[test]
    fn truncation_respects_neighbourhood() {
        let m = ItemKnn::train(&training(), 1, SetSimilarity::Tanimoto);
        assert_eq!(m.neighbours_of(ActionId::new(0)).len(), 1);
    }

    #[test]
    fn recommends_within_cluster() {
        let m = ItemKnn::train(&training(), 5, SetSimilarity::Tanimoto);
        let recs = m.recommend(&Activity::from_raw([0]), 3);
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids[0], 1);
        assert!(ids.contains(&2));
        assert!(!ids.contains(&3) && !ids.contains(&4));
    }

    #[test]
    fn scores_accumulate_over_activity_items() {
        let m = ItemKnn::train(&training(), 5, SetSimilarity::Tanimoto);
        // With H = {0, 1}, item 2's score is sim(0,2) + sim(1,2) = 1.0.
        let recs = m.recommend(&Activity::from_raw([0, 1]), 1);
        assert_eq!(recs[0].action, ActionId::new(2));
        assert!((recs[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cases() {
        let m = ItemKnn::train(&training(), 5, SetSimilarity::Cosine);
        assert!(m.recommend(&Activity::new(), 5).is_empty());
        assert!(m.recommend(&Activity::from_raw([0]), 0).is_empty());
        assert!(m.recommend(&Activity::from_raw([5]), 5).is_empty()); // isolated item
        assert_eq!(m.name(), "Item-kNN");
        assert!(m.neighbours_of(ActionId::new(99)).is_empty());
    }

    #[test]
    #[should_panic(expected = "neighbourhood")]
    fn zero_neighbourhood_rejected() {
        ItemKnn::train(&training(), 0, SetSimilarity::Tanimoto);
    }
}
