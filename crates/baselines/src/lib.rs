//! # goalrec-baselines
//!
//! The state-of-the-art recommenders the paper compares against (§6),
//! implemented from scratch, plus two reference points:
//!
//! * [`cf_knn`] — user-based nearest-neighbour CF with Tanimoto
//!   neighbourhoods (the paper's "CF KNN" \[20\]);
//! * [`item_knn`] — item-based kNN, the standard production variant;
//! * [`als`] — ALS-WR matrix factorisation with implicit-feedback
//!   confidence weighting (the paper's "CF MF" \[8\]; the authors used
//!   Mahout, we implement the algorithm directly);
//! * [`content`] — content-based filtering over domain features (the
//!   paper's "Content" \[3\]);
//! * [`apriori`] — association-rule mining, the §2 comparator;
//! * [`popularity`] — most-popular reference for the Table 3 correlation
//!   study.
//!
//! All recommenders implement [`goalrec_core::Recommender`], so the
//! evaluation layer treats them interchangeably with the goal-based
//! strategies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod als;
pub mod apriori;
pub mod cf_knn;
pub mod content;
pub mod item_knn;
pub mod linalg;
pub mod popularity;
pub mod similarity;
pub mod training;

pub use als::{AlsConfig, AlsWr};
pub use apriori::{Apriori, AprioriConfig, Rule};
pub use cf_knn::CfKnn;
pub use content::{ContentBased, ItemFeatures};
pub use item_knn::ItemKnn;
pub use popularity::Popularity;
pub use similarity::SetSimilarity;
pub use training::TrainingSet;
