//! Minimal dense linear algebra for the ALS-WR factoriser.
//!
//! ALS solves one small symmetric positive-definite system per user/item
//! per sweep (dimension = number of latent factors, typically 8–64), so a
//! compact row-major matrix with an in-place Cholesky solver is all the
//! factoriser needs — no external linear-algebra dependency.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n×n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from rows; panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · v` for a column vector `v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Adds `alpha · x xᵀ` (symmetric rank-1 update); `self` must be square
    /// with dimension `x.len()`.
    pub fn syr(&mut self, alpha: f64, x: &[f64]) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(x.len(), self.rows);
        for i in 0..self.rows {
            let xi = alpha * x[i];
            let row = self.row_mut(i);
            for (j, &xj) in x.iter().enumerate() {
                row[j] += xi * xj;
            }
        }
    }

    /// Adds `alpha` to the diagonal (ridge/regularisation term).
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        let c = self.cols;
        &mut self.data[i * c + j]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// decomposition (`A = L Lᵀ`, forward then backward substitution).
///
/// Returns `None` when `A` is not positive definite (a non-positive pivot
/// appears), which callers treat as a degenerate update and skip.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);

    // Decompose into lower-triangular L (stored densely).
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }

    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }

    // Backward substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_and_rows() {
        let mut m = Matrix::zeros(2, 3);
        m[(0, 1)] = 5.0;
        m[(1, 2)] = 7.0;
        assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(3);
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_matvec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn syr_accumulates_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.syr(2.0, &[1.0, 3.0]);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], 6.0);
        assert_eq!(m[(1, 0)], 6.0);
        assert_eq!(m[(1, 1)], 18.0);
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4, 2], [2, 3]], b = [10, 8] → x = [1.75, 1.5].
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = cholesky_solve(&a, &[10.0, 8.0]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-10);
        assert!((x[1] - 1.5).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]);
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_none());
        let neg = Matrix::from_rows(&[&[-1.0]]);
        assert!(cholesky_solve(&neg, &[1.0]).is_none());
    }

    #[test]
    fn dot_products() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    proptest! {
        /// Build SPD matrices as B Bᵀ + εI, solve, and check the residual.
        #[test]
        fn prop_cholesky_residual_small(
            entries in proptest::collection::vec(-2.0f64..2.0, 9),
            b in proptest::collection::vec(-5.0f64..5.0, 3)
        ) {
            let bmat = Matrix::from_rows(&[&entries[0..3], &entries[3..6], &entries[6..9]]);
            let mut a = Matrix::zeros(3, 3);
            // A = B Bᵀ + 0.1 I (SPD by construction).
            for i in 0..3 {
                for j in 0..3 {
                    a[(i, j)] = dot(bmat.row(i), bmat.row(j));
                }
            }
            a.add_diagonal(0.1);
            let x = cholesky_solve(&a, &b).expect("SPD must decompose");
            let ax = a.matvec(&x);
            for (got, want) in ax.iter().zip(&b) {
                prop_assert!((got - want).abs() < 1e-6, "residual too large");
            }
        }
    }
}
