//! Popularity baseline: recommend the globally most-selected actions.
//!
//! Not one of the paper's compared systems, but the natural reference
//! point for the Table 3 popularity-correlation study — by construction
//! its lists correlate perfectly with the top-popular actions, bounding
//! what "perpetuating collective behaviour" looks like.

use crate::training::TrainingSet;
use goalrec_core::{ActionId, Activity, Recommender, Scored};

/// Most-popular recommender.
#[derive(Debug, Clone)]
pub struct Popularity {
    counts: Vec<u32>,
}

impl Popularity {
    /// Counts selections over the training corpus.
    pub fn from_training(training: &TrainingSet) -> Self {
        Self {
            counts: training.action_counts(),
        }
    }

    /// The selection count of one action.
    pub fn count(&self, a: ActionId) -> u32 {
        self.counts.get(a.index()).copied().unwrap_or(0)
    }
}

impl Recommender for Popularity {
    fn name(&self) -> String {
        "Popularity".to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 {
            return Vec::new();
        }
        goalrec_core::topk::top_k(
            self.counts
                .iter()
                .enumerate()
                .filter(|&(a, &c)| c > 0 && !activity.contains(ActionId::new(a as u32)))
                .map(|(a, &c)| Scored::new(ActionId::new(a as u32), c as f64)),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Popularity {
        Popularity::from_training(&TrainingSet::new(
            vec![
                Activity::from_raw([0, 1]),
                Activity::from_raw([1, 2]),
                Activity::from_raw([1, 2]),
                Activity::from_raw([2]),
            ],
            5,
        ))
    }

    #[test]
    fn ranks_by_count() {
        let recs = pop().recommend(&Activity::new(), 5);
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]); // counts 3, 3, 1 — tie by id
        assert_eq!(recs[0].score, 3.0);
    }

    #[test]
    fn excludes_performed_and_unseen() {
        let recs = pop().recommend(&Activity::from_raw([1]), 5);
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![2, 0]);
        // Actions 3 and 4 never selected → never recommended.
        assert!(!ids.contains(&3) && !ids.contains(&4));
    }

    #[test]
    fn count_accessor() {
        let p = pop();
        assert_eq!(p.count(ActionId::new(1)), 3);
        assert_eq!(p.count(ActionId::new(4)), 0);
        assert_eq!(p.count(ActionId::new(99)), 0);
        assert_eq!(p.name(), "Popularity");
    }

    #[test]
    fn zero_k() {
        assert!(pop().recommend(&Activity::new(), 0).is_empty());
    }
}
