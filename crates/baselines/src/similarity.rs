//! User-user similarity measures for neighbourhood CF.
//!
//! The paper's CF-kNN forms neighbourhoods with the Jaccard (a.k.a.
//! Tanimoto) coefficient because the feedback is implicit (§6 "Comparison
//! with the State-of-the-art"); cosine and overlap are provided for
//! ablation.

use goalrec_core::setops;
use serde::{Deserialize, Serialize};

/// Similarity measure between two action *sets* (sorted id slices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SetSimilarity {
    /// `|a∩b| / |a∪b|` — the paper's choice for implicit feedback.
    #[default]
    Tanimoto,
    /// `|a∩b| / √(|a|·|b|)` — cosine over binary vectors.
    Cosine,
    /// `|a∩b| / min(|a|, |b|)` — overlap coefficient.
    Overlap,
}

impl SetSimilarity {
    /// Computes the similarity of two sorted sets. Empty inputs score 0.
    pub fn compute(self, a: &[u32], b: &[u32]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = setops::intersection_len(a, b) as f64;
        match self {
            SetSimilarity::Tanimoto => inter / (a.len() as f64 + b.len() as f64 - inter),
            SetSimilarity::Cosine => inter / ((a.len() as f64) * (b.len() as f64)).sqrt(),
            SetSimilarity::Overlap => inter / a.len().min(b.len()) as f64,
        }
    }

    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SetSimilarity::Tanimoto => "tanimoto",
            SetSimilarity::Cosine => "cosine",
            SetSimilarity::Overlap => "overlap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tanimoto_matches_jaccard() {
        assert!((SetSimilarity::Tanimoto.compute(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(SetSimilarity::Tanimoto.compute(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(SetSimilarity::Tanimoto.compute(&[1], &[2]), 0.0);
    }

    #[test]
    fn cosine_binary() {
        // |a∩b|=1, |a|=1, |b|=4 → 1/2.
        assert!((SetSimilarity::Cosine.compute(&[1], &[1, 2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_is_one_on_subset() {
        assert_eq!(SetSimilarity::Overlap.compute(&[1, 2], &[1, 2, 3, 4]), 1.0);
    }

    #[test]
    fn empty_sets_score_zero() {
        for s in [
            SetSimilarity::Tanimoto,
            SetSimilarity::Cosine,
            SetSimilarity::Overlap,
        ] {
            assert_eq!(s.compute(&[], &[1]), 0.0);
            assert_eq!(s.compute(&[1], &[]), 0.0);
        }
    }

    proptest! {
        #[test]
        fn prop_bounded_and_symmetric(
            a in proptest::collection::btree_set(0u32..100, 1..30),
            b in proptest::collection::btree_set(0u32..100, 1..30)
        ) {
            let a: Vec<u32> = a.into_iter().collect();
            let b: Vec<u32> = b.into_iter().collect();
            for s in [SetSimilarity::Tanimoto, SetSimilarity::Cosine, SetSimilarity::Overlap] {
                let v = s.compute(&a, &b);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{} out of range: {v}", s.name());
                prop_assert!((v - s.compute(&b, &a)).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_identical_sets_score_one(
            a in proptest::collection::btree_set(0u32..100, 1..30)
        ) {
            let a: Vec<u32> = a.into_iter().collect();
            for s in [SetSimilarity::Tanimoto, SetSimilarity::Cosine, SetSimilarity::Overlap] {
                prop_assert!((s.compute(&a, &a) - 1.0).abs() < 1e-12);
            }
        }
    }
}
