//! Training data shared by all baselines: implicit-feedback user histories.
//!
//! The paper's baselines are trained on the same inputs the goal-based
//! methods receive at query time — the carts / user activities — but used
//! as a *training corpus*: CF-kNN forms neighbourhoods over them, ALS-WR
//! factorises the user-action matrix they induce, Apriori mines their
//! co-occurrence, and popularity counts their frequencies.

use goalrec_core::Activity;
use serde::{Deserialize, Serialize};

/// A corpus of user activities with implicit (selected / not-selected)
/// feedback over a fixed action universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingSet {
    /// One activity per training user (or per cart, in the grocery case).
    pub users: Vec<Activity>,
    /// Size of the action id space.
    pub num_actions: usize,
}

impl TrainingSet {
    /// Creates a training set; activities must only reference ids below
    /// `num_actions`.
    pub fn new(users: Vec<Activity>, num_actions: usize) -> Self {
        debug_assert!(users
            .iter()
            .all(|u| u.raw().iter().all(|&a| (a as usize) < num_actions)));
        Self { users, num_actions }
    }

    /// Number of training users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Global selection count of every action — the popularity profile used
    /// by the popularity baseline and the Table 3 correlation study.
    pub fn action_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_actions];
        for u in &self.users {
            for &a in u.raw() {
                counts[a as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_actions_across_users() {
        let t = TrainingSet::new(
            vec![
                Activity::from_raw([0, 1]),
                Activity::from_raw([1, 2]),
                Activity::from_raw([1]),
            ],
            4,
        );
        assert_eq!(t.num_users(), 3);
        assert_eq!(t.action_counts(), vec![1, 3, 1, 0]);
    }

    #[test]
    fn empty_training_set() {
        let t = TrainingSet::new(vec![], 3);
        assert_eq!(t.num_users(), 0);
        assert_eq!(t.action_counts(), vec![0, 0, 0]);
    }
}
