//! Baseline recommender benchmarks: training cost and per-request latency
//! of CF-kNN, ALS-WR, Content and Apriori on FoodMart-shaped data.

use criterion::{criterion_group, criterion_main, Criterion};
use goalrec_baselines::{
    AlsConfig, AlsWr, Apriori, AprioriConfig, CfKnn, ContentBased, ItemFeatures, Popularity,
    TrainingSet,
};
use goalrec_core::Recommender;
use goalrec_datasets::{FoodMart, FoodMartConfig};
use std::hint::black_box;

fn setup() -> (FoodMart, TrainingSet) {
    let fm = FoodMart::generate(&FoodMartConfig::paper_scale().with_scale(0.05));
    let training = TrainingSet::new(fm.carts.clone(), fm.library.num_actions());
    (fm, training)
}

fn bench_training(c: &mut Criterion) {
    let (_, training) = setup();
    let mut group = c.benchmark_group("baselines/train");
    group.sample_size(10);
    group.bench_function("als_wr", |b| {
        b.iter(|| {
            black_box(AlsWr::train(
                &training,
                AlsConfig {
                    num_iterations: 3,
                    ..AlsConfig::default()
                },
            ))
        })
    });
    group.bench_function("apriori", |b| {
        b.iter(|| {
            black_box(Apriori::mine(
                &training,
                &AprioriConfig {
                    min_support: 8,
                    ..AprioriConfig::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_recommend(c: &mut Criterion) {
    let (fm, training) = setup();
    let queries: Vec<_> = fm.carts.iter().take(20).cloned().collect();

    let recs: Vec<Box<dyn Recommender>> = vec![
        Box::new(CfKnn::tanimoto(training.clone(), 50)),
        Box::new(AlsWr::train(
            &training,
            AlsConfig {
                num_iterations: 5,
                ..AlsConfig::default()
            },
        )),
        Box::new(ContentBased::new(ItemFeatures::new(
            fm.product_feature_vectors(),
        ))),
        Box::new(Apriori::mine(
            &training,
            &AprioriConfig {
                min_support: 8,
                ..AprioriConfig::default()
            },
        )),
        Box::new(Popularity::from_training(&training)),
    ];

    let mut group = c.benchmark_group("baselines/recommend");
    for rec in &recs {
        group.bench_function(rec.name(), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(rec.recommend(q, 10));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_recommend);
criterion_main!(benches);
