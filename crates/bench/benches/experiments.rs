//! One bench target per paper table/figure (DESIGN.md §4).
//!
//! Each benchmark runs the corresponding experiment end-to-end on the
//! test-scale context, so `cargo bench --bench experiments` regenerates
//! (and times) every table and figure. The shared context is built once.

use criterion::{criterion_group, criterion_main, Criterion};
use goalrec_eval::experiments::figure7::Figure7Config;
use goalrec_eval::experiments::{
    ablation, figure4, figure7, figures56, table2, table3, table4, table5, table6,
};
use goalrec_eval::{EvalConfig, EvalContext};
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalConfig::test_scale()))
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table2_overlap", |b| {
        b.iter(|| black_box(table2::run(ctx())))
    });
    group.bench_function("table3_popularity_correlation", |b| {
        b.iter(|| black_box(table3::run(ctx())))
    });
    group.bench_function("table4_figure3_usefulness", |b| {
        b.iter(|| black_box(table4::run(ctx())))
    });
    group.bench_function("table5_pairwise_similarity", |b| {
        b.iter(|| black_box(table5::run(ctx())))
    });
    group.bench_function("table6_goal_based_overlap", |b| {
        b.iter(|| black_box(table6::run(ctx())))
    });
    group.bench_function("figure4_avg_tpr", |b| {
        b.iter(|| black_box(figure4::run(ctx())))
    });
    group.bench_function("figures5_6_frequency", |b| {
        b.iter(|| black_box(figures56::run(ctx())))
    });
    group.bench_function("ablation_distance_metric", |b| {
        b.iter(|| black_box(ablation::run(ctx())))
    });
    group.finish();

    // Figure 7 is itself a timing harness; run it once under a coarse
    // sample to keep the bench suite bounded.
    let mut fig7 = c.benchmark_group("experiments/figure7");
    fig7.sample_size(10);
    fig7.bench_function("scalability_sweep", |b| {
        b.iter(|| black_box(figure7::run(&Figure7Config::test_scale())))
    });
    fig7.finish();
}

fn bench_context_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments/context");
    group.sample_size(10);
    group.bench_function("build_test_scale", |b| {
        b.iter(|| black_box(EvalContext::build(EvalConfig::test_scale())))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_context_build);
criterion_main!(benches);
