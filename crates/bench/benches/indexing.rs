//! Model construction and space-operation benchmarks.
//!
//! Measures what §4 claims the index structures buy: building the five
//! indexes is one linear pass, and goal/action/implementation spaces
//! resolve in posting-list time rather than by scanning the library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goalrec_core::GoalModel;
use goalrec_datasets::{FoodMart, FoodMartConfig};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexing/build");
    group.sample_size(10);
    for &scale in &[0.02f64, 0.1, 0.25] {
        let fm = FoodMart::generate(&FoodMartConfig::paper_scale().with_scale(scale));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}impls", fm.library.len())),
            &fm,
            |b, fm| b.iter(|| black_box(GoalModel::build(&fm.library).expect("non-empty"))),
        );
    }
    group.finish();
}

fn bench_spaces(c: &mut Criterion) {
    let fm = FoodMart::generate(&FoodMartConfig::paper_scale().with_scale(0.1));
    let model = GoalModel::build(&fm.library).expect("non-empty");
    let cart = fm.carts[0].raw();

    let mut group = c.benchmark_group("indexing/spaces");
    group.bench_function("implementation_space", |b| {
        b.iter(|| black_box(model.implementation_space(cart)))
    });
    group.bench_function("goal_space", |b| {
        b.iter(|| black_box(model.goal_space(cart)))
    });
    group.bench_function("action_space", |b| {
        b.iter(|| black_box(model.action_space(cart)))
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_spaces);
criterion_main!(benches);
