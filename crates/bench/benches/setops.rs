//! Ablation bench (DESIGN.md §7): sorted-Vec set algebra vs `HashSet`.
//!
//! Justifies the model's posting-list representation: intersection and
//! difference over strictly-sorted `u32` slices (with galloping for
//! asymmetric sizes) against the `std` hash-set equivalents, at the size
//! ratios the strategies actually see (cart ~10 vs recipe ~30, and cart
//! vs whole posting list ~1000).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goalrec_core::setops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::hint::black_box;

fn sorted_set(rng: &mut StdRng, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..universe)).collect();
    setops::normalize(&mut v);
    v.truncate(len);
    v
}

fn bench_intersection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut group = c.benchmark_group("setops/intersection_len");
    for &(small, large) in &[
        (10usize, 30usize),
        (10, 1_000),
        (200, 1_000),
        (1_000, 1_000),
    ] {
        let a = sorted_set(&mut rng, small, 10_000);
        let b = sorted_set(&mut rng, large, 10_000);
        let ha: HashSet<u32> = a.iter().copied().collect();
        let hb: HashSet<u32> = b.iter().copied().collect();

        group.bench_with_input(
            BenchmarkId::new("sorted_vec", format!("{small}x{large}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(setops::intersection_len(a, b))),
        );
        group.bench_with_input(
            BenchmarkId::new("hashset", format!("{small}x{large}")),
            &(&ha, &hb),
            |bench, (ha, hb)| bench.iter(|| black_box(ha.intersection(hb).count())),
        );
    }
    group.finish();
}

fn bench_difference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(43);
    let mut group = c.benchmark_group("setops/difference");
    let a = sorted_set(&mut rng, 30, 10_000);
    let b = sorted_set(&mut rng, 10, 10_000);
    let ha: HashSet<u32> = a.iter().copied().collect();
    let hb: HashSet<u32> = b.iter().copied().collect();
    group.bench_function("sorted_vec", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into(&a, &b, &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("hashset", |bench| {
        bench.iter(|| black_box(ha.difference(&hb).count()))
    });
    group.finish();
}

fn bench_union_many(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(44);
    // |H| = 10 posting lists of 1 000 ids each — the IS(H) union of a
    // FoodMart-like query.
    let lists: Vec<Vec<u32>> = (0..10)
        .map(|_| sorted_set(&mut rng, 1_000, 100_000))
        .collect();
    c.bench_function("setops/union_many/10x1000", |bench| {
        bench.iter(|| black_box(setops::union_many(lists.iter().map(Vec::as_slice)).len()))
    });
}

criterion_group!(
    benches,
    bench_intersection,
    bench_difference,
    bench_union_many
);
criterion_main!(benches);
