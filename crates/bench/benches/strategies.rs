//! Figure 7 companion bench: per-request latency of each goal-based
//! strategy under Criterion, on FoodMart-shaped (high-connectivity) and
//! 43Things-shaped (low-connectivity) libraries, plus the Breadth
//! accumulating-vs-naive ablation (DESIGN.md §7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goalrec_core::strategies::{default_strategies, Breadth};
use goalrec_core::{Activity, GoalModel};
use goalrec_datasets::{FoodMart, FoodMartConfig, FortyThings, FortyThingsConfig};
use std::hint::black_box;

fn bench_strategies_foodmart(c: &mut Criterion) {
    // ~1/10 paper scale keeps Criterion runs in seconds while preserving
    // the high-connectivity regime.
    let fm = FoodMart::generate(&FoodMartConfig::paper_scale().with_scale(0.1));
    let model = GoalModel::build(&fm.library).expect("non-empty");
    let queries: Vec<&Activity> = fm.carts.iter().take(20).collect();

    let mut group = c.benchmark_group("strategies/foodmart");
    group.sample_size(20);
    for strategy in default_strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    for q in &queries {
                        black_box(strategy.rank(&model, q, 10));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_strategies_fortythree(c: &mut Criterion) {
    let ft = FortyThings::generate(&FortyThingsConfig::paper_scale());
    let model = GoalModel::build(&ft.library).expect("non-empty");
    let queries: Vec<&Activity> = ft.full_activities.iter().take(50).collect();

    let mut group = c.benchmark_group("strategies/fortythree");
    for strategy in default_strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    for q in &queries {
                        black_box(strategy.rank(&model, q, 10));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_breadth_ablation(c: &mut Criterion) {
    let fm = FoodMart::generate(&FoodMartConfig::test_scale());
    let model = GoalModel::build(&fm.library).expect("non-empty");
    let queries: Vec<&Activity> = fm.carts.iter().take(20).collect();

    let mut group = c.benchmark_group("strategies/breadth_ablation");
    group.bench_function("dense_scoreboard_rank", |b| {
        use goalrec_core::Strategy as _;
        b.iter(|| {
            for q in &queries {
                black_box(Breadth.rank(&model, q, 10));
            }
        })
    });
    group.bench_function("accumulating_alg2", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(Breadth::scores(&model, q));
            }
        })
    });
    group.bench_function("naive_per_candidate", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(Breadth::scores_naive(&model, q));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies_foodmart,
    bench_strategies_fortythree,
    bench_breadth_ablation
);
criterion_main!(benches);
