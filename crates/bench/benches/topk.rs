//! Ablation bench (DESIGN.md §7): bounded-heap top-k vs full sort.
//!
//! Every strategy ends with "rank R and return the top k"; this measures
//! the `O(n log k)` bounded heap against the `O(n log n)` sort at the
//! candidate-pool sizes of both datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goalrec_core::topk::{rank_full, top_k, Scored};
use goalrec_core::ActionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn candidates(rng: &mut StdRng, n: usize) -> Vec<Scored> {
    (0..n)
        .map(|i| Scored::new(ActionId::new(i as u32), rng.gen::<f64>()))
        .collect()
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("topk");
    for &n in &[100usize, 1_500, 10_000, 100_000] {
        let items = candidates(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("bounded_heap", n), &items, |b, items| {
            b.iter(|| black_box(top_k(items.iter().copied(), 10)))
        });
        group.bench_with_input(BenchmarkId::new("full_sort", n), &items, |b, items| {
            b.iter(|| black_box(rank_full(items.clone(), 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
