//! `loadgen` — closed-loop load generator for `goalrec-server`.
//!
//! ```text
//! loadgen [--clients N] [--seconds S] [--out FILE] [--smoke [--shards N]]
//!         [--chaos-smoke] [--perf]
//!
//! --clients N     keep-alive client threads for the throughput phase (default 8)
//! --seconds S     measurement window per phase, seconds (default 3)
//! --out FILE      where to write the JSON report (default BENCH_serve.json,
//!                 or BENCH_perf.json under --perf)
//! --smoke         CI mode: probe /healthz and /v1/recommend against an
//!                 in-process server, raise a real SIGTERM, assert a clean
//!                 drain, exit 0 — no load, no report; `--shards N` boots
//!                 the server on the sharded scatter-gather path
//! --chaos-smoke   CI mode: drive recommend traffic while hot reloads go
//!                 through injected fault plans (IO error, torn write,
//!                 slow read); assert every faulted reload rolls back,
//!                 no request is dropped or 5xx'd, and a clean reload
//!                 then bumps the model generation. Then validates the
//!                 tracing pipeline: every response carries an
//!                 `X-Goalrec-Trace` id, and the final `/debug/traces`
//!                 snapshot (written to DEBUG_traces.json for CI
//!                 artifacts) holds ≥1 trace per strategy, each with a
//!                 `span.rank` span and top-level spans summing to
//!                 within 10% of the trace total. A second, sharded
//!                 server then takes the same treatment: a faulted
//!                 *targeted* reload (`{"shard": i}`) must roll back
//!                 that shard alone while the other shards keep
//!                 answering 200 on their old generation, with zero
//!                 requests dropped. A third section drives the live
//!                 mutation plane: rows are appended into the delta and
//!                 three consecutive background compactions are faulted
//!                 (read error at the read-back verify, torn write at
//!                 the persist, stall-then-error write) — each must roll
//!                 back whole with the old generation serving and the
//!                 delta and WAL intact, and the clean backoff retry
//!                 must then compact, bump the generation, and clear
//!                 the WAL, all with zero dropped or non-200 requests
//! --perf          hot-path regression bench: serial vs parallel model
//!                 build at scalability size, per-strategy rank_into
//!                 latency over the FoodMart test-scale carts (the
//!                 table6 workload), the sharded scatter-gather sweep
//!                 over shard counts {1, 2, 4, 8}, the keep-alive
//!                 throughput phase, and the append-under-load sweep
//!                 (appends/s {0, 50, 200} against the live delta);
//!                 writes BENCH_perf.json and FAILS if BestMatch p95
//!                 ≥ 1 ms, single-shard scatter-gather costs >10% over
//!                 the unsharded path, throughput regresses >30%
//!                 against the committed baseline, or the idle (empty
//!                 delta) live plane costs more than 5% of throughput
//! ```
//!
//! Two measurement phases, both against an in-process server on an
//! ephemeral loopback port (no network noise, no fixed-port races):
//!
//! 1. **throughput** — N keep-alive clients hammer `POST /v1/recommend`
//!    at the default queue depth; reports req/s and p50/p95/p99 latency.
//! 2. **queue-depth sweep** — connection-per-request clients outnumber
//!    the workers at queue depths {1, 16, 256}; reports the reject (503)
//!    rate at each depth, demonstrating admission control under overload.

use goalrec_core::LibraryBuilder;
use goalrec_server::{shutdown, start, ServerConfig, Shutdown};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A synthetic goal library: `goals` implementations of `impl_len`
/// actions each over an `actions`-word vocabulary.
fn synthetic_library_sized(goals: u64, actions: u64, impl_len: usize) -> goalrec_core::GoalLibrary {
    let mut builder = LibraryBuilder::new();
    let mut seed = 0x9e37_79b9_u64;
    let mut next = move |m: u64| {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) % m
    };
    for g in 0..goals {
        let names: Vec<String> = (0..impl_len)
            .map(|_| format!("action-{}", next(actions)))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        builder
            .add_impl(&format!("goal-{g}"), refs)
            .expect("synthetic library");
    }
    builder.build().expect("synthetic library")
}

/// The serving-phase library: big enough to make ranking do real work —
/// 200 goals over a 300-action vocabulary, 6 actions per implementation.
fn synthetic_library() -> goalrec_core::GoalLibrary {
    synthetic_library_sized(200, 300, 6)
}

fn config(workers: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        port: 0,
        workers,
        queue_depth,
        deadline: Duration::from_millis(1000),
        idle_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

const RECOMMEND_BODY: &str = r#"{"activity": [1, 2, 3, 4], "strategy": "breadth", "k": 10}"#;

fn recommend_request(keep_alive: bool) -> Vec<u8> {
    format!(
        "POST /v1/recommend HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\n\
         connection: {}\r\n\r\n{RECOMMEND_BODY}",
        RECOMMEND_BODY.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// Reads one response off `stream`; returns its status code.
fn read_status(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<u16> {
    buf.clear();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(std::io::ErrorKind::InvalidData)?;
    let len: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut have = buf.len() - header_end;
    while have < len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        have += n;
    }
    Ok(status)
}

#[derive(Default)]
struct ClientTally {
    latencies_ns: Vec<u64>,
    ok: u64,
    rejected: u64,
    other: u64,
    errors: u64,
}

/// One keep-alive client: a single connection reused for every request.
fn keep_alive_client(addr: SocketAddr, stop: Arc<AtomicBool>) -> ClientTally {
    let mut tally = ClientTally::default();
    let request = recommend_request(true);
    let mut buf = Vec::with_capacity(8192);
    // ordering: Relaxed — `stop` only quiesces the request loop; the
    // tallies are handed back through thread join, which synchronizes.
    'reconnect: while !stop.load(Ordering::Relaxed) {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            tally.errors += 1;
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        // ordering: as above
        while !stop.load(Ordering::Relaxed) {
            let t0 = Instant::now();
            if stream.write_all(&request).is_err() {
                tally.errors += 1;
                continue 'reconnect;
            }
            match read_status(&mut stream, &mut buf) {
                Ok(200) => {
                    tally.ok += 1;
                    tally
                        .latencies_ns
                        .push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                Ok(503) => {
                    tally.rejected += 1;
                    continue 'reconnect; // 503s close the connection
                }
                Ok(_) => {
                    tally.other += 1;
                    continue 'reconnect;
                }
                Err(_) => {
                    tally.errors += 1;
                    continue 'reconnect;
                }
            }
        }
        break;
    }
    tally
}

/// One connection-per-request client: reconnects for every request, so
/// concurrent clients pile up in the admission queue.
fn reconnect_client(addr: SocketAddr, stop: Arc<AtomicBool>) -> ClientTally {
    let mut tally = ClientTally::default();
    let request = recommend_request(false);
    let mut buf = Vec::with_capacity(8192);
    // ordering: Relaxed — `stop` only quiesces the request loop; the
    // tallies are handed back through thread join, which synchronizes.
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        let Ok(mut stream) = TcpStream::connect(addr) else {
            tally.errors += 1;
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        if stream.write_all(&request).is_err() {
            tally.errors += 1;
            continue;
        }
        match read_status(&mut stream, &mut buf) {
            Ok(200) => {
                tally.ok += 1;
                tally
                    .latencies_ns
                    .push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            Ok(503) => tally.rejected += 1,
            Ok(_) => tally.other += 1,
            Err(_) => tally.errors += 1,
        }
    }
    tally
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Runs `clients` copies of `client` against a fresh server for `seconds`,
/// merges the tallies, and returns the phase report.
struct PhaseOutcome {
    value: serde_json::Value,
    summary: String,
    req_per_s: f64,
}

fn run_phase(
    workers: usize,
    queue_depth: usize,
    shards: usize,
    clients: usize,
    seconds: f64,
    client: fn(SocketAddr, Arc<AtomicBool>) -> ClientTally,
) -> PhaseOutcome {
    let mut cfg = config(workers, queue_depth);
    cfg.shards = shards;
    let handle = start(synthetic_library(), cfg).expect("start server");
    let addr = handle.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client(addr, stop))
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(seconds));
    // ordering: Relaxed — quiesce signal only; the join below is the
    // synchronization point for the tallies.
    stop.store(true, Ordering::Relaxed);
    let mut merged = ClientTally::default();
    for t in threads {
        let tally = t.join().expect("client thread");
        merged.latencies_ns.extend(tally.latencies_ns);
        merged.ok += tally.ok;
        merged.rejected += tally.rejected;
        merged.other += tally.other;
        merged.errors += tally.errors;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    handle.shutdown();

    merged.latencies_ns.sort_unstable();
    let total = merged.ok + merged.rejected + merged.other + merged.errors;
    let req_per_s = if elapsed > 0.0 {
        merged.ok as f64 / elapsed
    } else {
        0.0
    };
    let reject_rate = if total > 0 {
        merged.rejected as f64 / total as f64
    } else {
        0.0
    };
    let summary = format!(
        "{:.0} req/s ok, reject rate {:.3}, p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs",
        req_per_s,
        reject_rate,
        percentile_us(&merged.latencies_ns, 50.0),
        percentile_us(&merged.latencies_ns, 95.0),
        percentile_us(&merged.latencies_ns, 99.0),
    );
    let value = serde_json::json!({
        "workers": workers,
        "queue_depth": queue_depth,
        "shards": shards,
        "clients": clients,
        "seconds": (elapsed * 100.0).round() / 100.0,
        "requests": total,
        "ok": merged.ok,
        "rejected_503": merged.rejected,
        "other_status": merged.other,
        "transport_errors": merged.errors,
        "reject_rate": reject_rate,
        "req_per_s": req_per_s,
        "p50_us": percentile_us(&merged.latencies_ns, 50.0),
        "p95_us": percentile_us(&merged.latencies_ns, 95.0),
        "p99_us": percentile_us(&merged.latencies_ns, 99.0),
    });
    PhaseOutcome {
        value,
        summary,
        req_per_s,
    }
}

/// CI smoke: boot (sharded when `shards > 0`), probe every route once,
/// then exercise the *real* SIGTERM path and require a clean drain.
fn smoke(shards: usize) {
    shutdown::install_signal_handlers();
    let token = Shutdown::watching_signals();
    let mut cfg = config(2, 16);
    cfg.shards = shards;
    let handle =
        goalrec_server::start_with_shutdown(synthetic_library(), cfg, token).expect("start server");
    let addr = handle.local_addr();
    let mut buf = Vec::new();

    let mut health = TcpStream::connect(addr).expect("connect /healthz");
    health
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: smoke\r\nconnection: close\r\n\r\n")
        .expect("write /healthz");
    assert_eq!(
        read_status(&mut health, &mut buf).expect("read /healthz"),
        200
    );
    eprintln!("smoke: /healthz ok");

    let mut rec = TcpStream::connect(addr).expect("connect /v1/recommend");
    rec.write_all(&recommend_request(false))
        .expect("write /v1/recommend");
    assert_eq!(
        read_status(&mut rec, &mut buf).expect("read /v1/recommend"),
        200
    );
    eprintln!("smoke: /v1/recommend ok");

    // Real signal, real drain: the accept loop and both workers must exit.
    shutdown::raise_signal(shutdown::SIGTERM);
    let drained = std::thread::spawn(move || handle.wait());
    std::thread::sleep(Duration::from_millis(50));
    drained.join().expect("graceful drain after SIGTERM");
    eprintln!("smoke: SIGTERM drained cleanly");
}

/// Fetches one full response: status plus body text.
fn fetch(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("chaos: connect");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    stream.write_all(raw.as_bytes()).expect("chaos: write");
    let mut raw_reply = Vec::new();
    stream.read_to_end(&mut raw_reply).expect("chaos: read");
    let text = String::from_utf8_lossy(&raw_reply).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("chaos: status line");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// A numeric field from the `/healthz` body.
fn healthz_u64(addr: SocketAddr, key: &str) -> u64 {
    let (status, body) = fetch(
        addr,
        "GET /healthz HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "/healthz must stay green, body: {body}");
    body.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("no {key} in /healthz body: {body}"))
}

/// The serving generation as reported by `/healthz`.
fn generation(addr: SocketAddr) -> u64 {
    healthz_u64(addr, "generation")
}

/// One counter's value from `/metrics?format=prometheus` (the registry is
/// process-global, so chaos sections diff against a baseline read).
fn metric_counter(addr: SocketAddr, prom: &str) -> u64 {
    let (status, body) = fetch(
        addr,
        "GET /metrics?format=prometheus HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "/metrics must stay green");
    body.lines()
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some(prom)).then(|| parts.next().and_then(|v| v.parse().ok()))?
        })
        .unwrap_or_else(|| panic!("no {prom} counter in /metrics"))
}

/// The per-shard generation vector from a sharded server's `/healthz`.
fn shard_generations(addr: SocketAddr) -> Vec<u64> {
    use serde_json::Value;
    let (status, body) = fetch(
        addr,
        "GET /healthz HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "/healthz must stay green, body: {body}");
    let doc: Value = serde_json::from_str(&body).expect("chaos: parse /healthz");
    match doc.get("shards") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|s| {
                s.get("generation")
                    .and_then(Value::as_u64)
                    .unwrap_or_else(|| panic!("shard row without a generation: {s}"))
            })
            .collect(),
        other => panic!("sharded /healthz must carry a shards array, got {other:?}"),
    }
}

/// `POST /v1/admin/reload` with `body`; returns the status code.
fn admin_reload(addr: SocketAddr, body: &str) -> u16 {
    let raw = format!(
        "POST /v1/admin/reload HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n{body}",
        body.len()
    );
    fetch(addr, &raw).0
}

/// One traced recommend round-trip: asserts a 200 and returns the
/// response's `X-Goalrec-Trace` id.
fn recommend_traced(addr: SocketAddr, strategy: &str) -> String {
    let body = format!(r#"{{"activity": [1, 2, 3, 4], "strategy": "{strategy}", "k": 10}}"#);
    let raw = format!(
        "POST /v1/recommend HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).expect("chaos: connect");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    stream.write_all(raw.as_bytes()).expect("chaos: write");
    let mut raw_reply = Vec::new();
    stream.read_to_end(&mut raw_reply).expect("chaos: read");
    let text = String::from_utf8_lossy(&raw_reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("chaos: status line");
    assert_eq!(status, 200, "traced {strategy} recommend must answer 200");
    text.lines()
        .take_while(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("x-goalrec-trace"))
        .map(|(_, v)| v.trim().to_owned())
        .expect("every response from a tracing server must carry X-Goalrec-Trace")
}

/// The strategies the API accepts, paired with the internal names traces
/// are tagged with.
const TRACE_STRATEGIES: &[(&str, &str)] = &[
    ("breadth", "Breadth"),
    ("best-match", "BestMatch"),
    ("focus-cmp", "Focus_cmp"),
    ("focus-cl", "Focus_cl"),
];

/// Drives a few requests per strategy, snapshots `/debug/traces`, writes
/// the dump to `out`, and checks the coherence invariants: at least one
/// captured trace per strategy; every completed recommend trace carries a
/// `span.rank` span and a positive total; and on every captured trace the
/// top-level spans sum to within 10% of the trace total (which is, by
/// construction, the request's `server.latency` observation).
fn validate_traces(addr: SocketAddr, out: &std::path::Path) {
    use serde_json::Value;

    for (api, _) in TRACE_STRATEGIES {
        for _ in 0..4 {
            let id = recommend_traced(addr, api);
            assert_eq!(id.len(), 16, "trace ids are 16 hex chars, got '{id}'");
            assert!(
                id.chars().all(|c| c.is_ascii_hexdigit()),
                "trace id '{id}' is not hex"
            );
        }
    }

    let (status, body) = fetch(
        addr,
        "GET /debug/traces HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "/debug/traces must answer 200, body: {body}");
    std::fs::write(out, &body).expect("chaos: write trace dump");

    let doc: Value = serde_json::from_str(&body).expect("chaos: parse /debug/traces");
    let traces = match doc.get("traces") {
        Some(Value::Array(items)) => items,
        other => panic!("/debug/traces must hold a 'traces' array, got {other:?}"),
    };
    assert!(
        !traces.is_empty(),
        "chaos left no traces in the tail sampler"
    );

    let mut seen_strategies: Vec<&str> = Vec::new();
    for trace in traces {
        let total = trace
            .get("total_ns")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("trace without a numeric total_ns: {trace}"));
        assert!(total > 0, "captured trace with zero total: {trace}");
        let spans = match trace.get("spans") {
            Some(Value::Array(items)) => items,
            other => panic!("trace without a spans array: {other:?}"),
        };
        let top_level_sum: u64 = spans
            .iter()
            .filter(|s| s.get("child") != Some(&Value::Bool(true)))
            .filter_map(|s| s.get("dur_ns").and_then(Value::as_u64))
            .sum();
        assert!(
            total.abs_diff(top_level_sum) * 10 <= total,
            "top-level spans ({top_level_sum} ns) must sum to within 10% of the \
             trace total ({total} ns): {trace}"
        );
        let route = trace.get("route").and_then(Value::as_str).unwrap_or("");
        let status = trace.get("status").and_then(Value::as_u64).unwrap_or(0);
        if route == "recommend" && status == 200 {
            assert!(
                spans.iter().any(|s| s.get("name").and_then(Value::as_str)
                    == Some(goalrec_obs::names::SPAN_RANK)),
                "completed recommend trace without a span.rank span: {trace}"
            );
            if let Some(strategy) = trace.get("strategy").and_then(Value::as_str) {
                if let Some(known) = TRACE_STRATEGIES
                    .iter()
                    .map(|(_, internal)| *internal)
                    .find(|internal| *internal == strategy)
                {
                    if !seen_strategies.contains(&known) {
                        seen_strategies.push(known);
                    }
                }
            }
        }
    }
    for (_, internal) in TRACE_STRATEGIES {
        assert!(
            seen_strategies.contains(internal),
            "no captured trace for strategy {internal} (saw {seen_strategies:?})"
        );
    }
    eprintln!(
        "chaos: {} traces captured, all strategies covered, span sums coherent → {}",
        traces.len(),
        out.display()
    );
}

/// Chaos smoke: recommend traffic flows continuously while reload
/// attempts are pushed through injected fault plans. Every faulted
/// attempt must answer 500 and leave the last good generation serving;
/// the traffic tally must show zero non-200 responses and zero transport
/// errors; and once the chaos stops, a clean reload must bump the
/// generation.
fn chaos_smoke() {
    use goalrec_faults::{with_plan, FaultPlan};

    let dir = std::env::temp_dir().join("goalrec-chaos-smoke");
    std::fs::create_dir_all(&dir).expect("chaos: temp dir");
    let serving = dir.join("chaos-serving.grlb");
    goalrec_datasets::binary::write_library_binary(&synthetic_library(), &serving)
        .expect("chaos: seed library");
    let good_bytes = std::fs::read(&serving).expect("chaos: read seed");

    // Each keep-alive client pins a worker for the whole window, so give
    // the probes and the admin endpoint headroom beyond the 4 clients.
    let mut cfg = config(8, 64);
    cfg.library_path = Some(serving.clone());
    let handle = start(synthetic_library(), cfg).expect("chaos: start server");
    let addr = handle.local_addr();

    // Continuous recommend traffic for the whole chaos window.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || keep_alive_client(addr, stop))
        })
        .collect();

    assert_eq!(generation(addr), 1);

    // Faulted attempt 1: the library read dies with an injected IO error.
    with_plan(
        FaultPlan::parse("path=chaos-serving;read-error@byte=8").expect("chaos: plan"),
        || {
            assert_eq!(admin_reload(addr, ""), 500, "faulted reload must 500");
        },
    );
    assert_eq!(generation(addr), 1, "failed reload must roll back");
    eprintln!("chaos: reload under injected read error rolled back, generation 1 serving");

    // Faulted attempt 2: a torn-write artifact — the partial file a
    // non-crash-safe writer would leave behind — must be rejected whole.
    let torn = dir.join("chaos-torn.grlb");
    std::fs::write(&torn, &good_bytes[..good_bytes.len() * 3 / 5]).expect("chaos: torn file");
    assert_eq!(
        admin_reload(addr, &format!(r#"{{"path": "{}"}}"#, torn.display())),
        500,
        "a torn library file must never be swapped in"
    );
    assert_eq!(generation(addr), 1, "torn-file reload must roll back");
    // And the crate's own writer cannot produce such a file: a torn write
    // through the crash-safe writer leaves the serving file untouched.
    with_plan(
        FaultPlan::parse("path=chaos-serving;torn-write@byte=64").expect("chaos: plan"),
        || {
            assert!(
                goalrec_datasets::binary::write_library_binary(&synthetic_library(), &serving)
                    .is_err(),
                "torn write must fail the writer"
            );
        },
    );
    assert_eq!(
        std::fs::read(&serving).expect("chaos: reread"),
        good_bytes,
        "crash-safe writer must leave the target byte-identical after a torn write"
    );
    eprintln!("chaos: torn-write artifact rejected, crash-safe writer kept the target intact");

    // Faulted attempt 3: a slow read that then errors mid-file.
    with_plan(
        FaultPlan::parse("path=chaos-serving;stall-50ms@op=1;read-error@byte=512")
            .expect("chaos: plan"),
        || {
            assert_eq!(admin_reload(addr, ""), 500, "slow faulted reload must 500");
        },
    );
    assert_eq!(generation(addr), 1, "slow faulted reload must roll back");
    eprintln!("chaos: reload under stalled-then-failing read rolled back, generation 1 serving");

    // Chaos over: a clean reload must go through and bump the generation.
    assert_eq!(admin_reload(addr, ""), 200, "clean reload must succeed");
    assert_eq!(generation(addr), 2, "clean reload must bump the generation");
    eprintln!("chaos: clean reload bumped to generation 2");

    // ordering: Relaxed — quiesce signal only; the join below is the
    // synchronization point for the tallies.
    stop.store(true, Ordering::Relaxed);
    let mut merged = ClientTally::default();
    for c in clients {
        let tally = c.join().expect("chaos: client thread");
        merged.ok += tally.ok;
        merged.rejected += tally.rejected;
        merged.other += tally.other;
        merged.errors += tally.errors;
    }

    // With the background traffic stopped, validate the tracing pipeline
    // end to end and leave the dump behind for CI artifacts.
    validate_traces(addr, std::path::Path::new("DEBUG_traces.json"));

    handle.shutdown();

    assert!(
        merged.ok > 0,
        "chaos traffic produced no successful requests"
    );
    assert_eq!(
        (merged.other, merged.errors, merged.rejected),
        (0, 0, 0),
        "chaos reloads must not fail, drop, or shed recommend traffic \
         (ok {}, non-200 {}, transport errors {}, 503s {})",
        merged.ok,
        merged.other,
        merged.errors,
        merged.rejected
    );
    eprintln!(
        "chaos: {} recommend requests answered 200, zero dropped, zero 5xx, zero 503",
        merged.ok
    );
}

/// Sharded chaos: the same faulted-reload treatment against a 3-shard
/// server, but *targeted* — a reload of one shard goes through injected
/// faults and must roll back that shard alone. The other shards keep
/// answering 200 on their old generation the whole time (the traffic
/// tally proves zero dropped or non-200 requests), a clean targeted
/// reload then bumps only its shard, and a full reload bumps every shard
/// in lockstep.
fn sharded_chaos() {
    use goalrec_faults::{with_plan, FaultPlan};

    let dir = std::env::temp_dir().join("goalrec-chaos-sharded");
    std::fs::create_dir_all(&dir).expect("chaos: temp dir");
    let serving = dir.join("sharded-serving.grlb");
    goalrec_datasets::binary::write_library_binary(&synthetic_library(), &serving)
        .expect("chaos: seed library");
    let good_bytes = std::fs::read(&serving).expect("chaos: read seed");

    let mut cfg = config(8, 64);
    cfg.library_path = Some(serving.clone());
    cfg.shards = 3;
    let handle = start(synthetic_library(), cfg).expect("chaos: start sharded server");
    let addr = handle.local_addr();

    // Continuous recommend traffic across every shard for the whole window.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || keep_alive_client(addr, stop))
        })
        .collect();

    assert_eq!(shard_generations(addr), vec![1, 1, 1]);

    // Faulted targeted reload: shard 1's library read dies mid-file. Only
    // shard 1's swap is in flight, and it must roll back alone.
    with_plan(
        FaultPlan::parse("path=sharded-serving;read-error@byte=8").expect("chaos: plan"),
        || {
            assert_eq!(
                admin_reload(addr, r#"{"shard": 1}"#),
                500,
                "faulted targeted reload must 500"
            );
        },
    );
    assert_eq!(
        shard_generations(addr),
        vec![1, 1, 1],
        "a faulted shard reload must roll back that shard and touch no other"
    );
    eprintln!("chaos: targeted reload of shard 1 under injected read error rolled back alone");

    // A torn library file aimed at one shard must be rejected whole.
    let torn = dir.join("sharded-torn.grlb");
    std::fs::write(&torn, &good_bytes[..good_bytes.len() * 3 / 5]).expect("chaos: torn file");
    assert_eq!(
        admin_reload(
            addr,
            &format!(r#"{{"path": "{}", "shard": 0}}"#, torn.display())
        ),
        500,
        "a torn library file must never be swapped into a shard"
    );
    assert_eq!(shard_generations(addr), vec![1, 1, 1]);
    eprintln!("chaos: torn-file targeted reload of shard 0 rejected, all shards on generation 1");

    // Out-of-range shard ids are a client error, not a crash or a swap.
    assert_eq!(
        admin_reload(addr, r#"{"shard": 9}"#),
        400,
        "an out-of-range shard id must be a 400"
    );

    // Chaos over: a clean targeted reload bumps only its shard, and the
    // top-level generation reports the minimum across the vector.
    assert_eq!(admin_reload(addr, r#"{"shard": 1}"#), 200);
    assert_eq!(shard_generations(addr), vec![1, 2, 1]);
    assert_eq!(
        generation(addr),
        1,
        "the top-level generation is the minimum across shards"
    );
    eprintln!("chaos: clean targeted reload bumped shard 1 to generation 2, others untouched");

    // And a full reload swaps every shard in lockstep.
    assert_eq!(
        admin_reload(addr, ""),
        200,
        "clean full reload must succeed"
    );
    assert_eq!(shard_generations(addr), vec![2, 3, 2]);
    assert_eq!(generation(addr), 2);
    eprintln!("chaos: full reload bumped every shard in lockstep");

    // ordering: Relaxed — quiesce signal only; the join below is the
    // synchronization point for the tallies.
    stop.store(true, Ordering::Relaxed);
    let mut merged = ClientTally::default();
    for c in clients {
        let tally = c.join().expect("chaos: client thread");
        merged.ok += tally.ok;
        merged.rejected += tally.rejected;
        merged.other += tally.other;
        merged.errors += tally.errors;
    }
    handle.shutdown();

    assert!(
        merged.ok > 0,
        "sharded chaos traffic produced no successful requests"
    );
    assert_eq!(
        (merged.other, merged.errors, merged.rejected),
        (0, 0, 0),
        "shard faults must not fail, drop, or shed recommend traffic \
         (ok {}, non-200 {}, transport errors {}, 503s {})",
        merged.ok,
        merged.other,
        merged.errors,
        merged.rejected
    );
    eprintln!(
        "chaos: {} sharded recommend requests answered 200, zero dropped, zero 5xx, zero 503",
        merged.ok
    );
}

/// `POST /v1/admin/library/append` with `body`; returns status and body.
fn admin_append(addr: SocketAddr, body: &str) -> (u16, String) {
    let raw = format!(
        "POST /v1/admin/library/append HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n{body}",
        body.len()
    );
    fetch(addr, &raw)
}

/// Polls `probe` every 25 ms until it returns true, or panics with `what`
/// after ten seconds.
fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Faulted-compaction chaos: rows are appended into the live delta, and
/// the age-triggered background compaction is then driven through three
/// consecutive injected fault plans — a read error at the read-back
/// verify, a torn write at the persist, and a stall-then-error write.
/// Every faulted compaction must roll back whole (old generation serving,
/// delta and WAL intact, serving file never torn), recommend traffic must
/// see zero drops and zero non-200s throughout, and once the faults are
/// lifted the backoff-gated retry must compact cleanly: generation
/// bumped, delta emptied, WAL cleared, merged library on disk.
fn compaction_chaos() {
    use goalrec_faults::{arm, disarm, FaultPlan};

    let dir = std::env::temp_dir().join("goalrec-chaos-compact");
    std::fs::create_dir_all(&dir).expect("chaos: temp dir");
    let serving = dir.join("chaos-live.jsonl");
    goalrec_datasets::io::write_library_jsonl(&synthetic_library(), &serving)
        .expect("chaos: seed library");
    let _ = std::fs::remove_file(dir.join("chaos-live.jsonl.wal"));
    let base_impls = synthetic_library().len();

    let mut cfg = config(8, 64);
    cfg.library_path = Some(serving.clone());
    cfg.compact_threshold = 0; // no count trigger —
    cfg.compact_max_age = Duration::from_millis(500); // — age drives it
    let handle = start(synthetic_library(), cfg).expect("chaos: start live server");
    let addr = handle.local_addr();

    // Continuous recommend traffic for the whole faulted-compaction window.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || keep_alive_client(addr, stop))
        })
        .collect();

    let failures0 = metric_counter(addr, "goalrec_library_compaction_failures");
    let compactions0 = metric_counter(addr, "goalrec_library_compactions");

    // Three consecutive fault plans, armed back to back with no unarmed
    // gap (a plan faults every attempt while armed, so a backoff retry
    // landing before the next plan is armed still fails and rolls back).
    let plans = [
        (
            "read error at the read-back verify",
            "path=chaos-live.jsonl;read-error@op=1",
        ),
        (
            "torn write at the persist",
            "path=chaos-live.jsonl;torn-write@byte=64",
        ),
        (
            "stall-then-error write",
            "path=chaos-live.jsonl;stall-50ms@op=1;write-error@op=2",
        ),
    ];
    arm(FaultPlan::parse(plans[0].1).expect("chaos: plan"));

    // Stage two rows; the age trigger fires the first compaction ~500ms on.
    for body in [
        r#"{"goal": 0, "actions": [1, 2, 3]}"#,
        r#"{"implementations": [{"goal": 1, "actions": [4, 5]}]}"#,
    ] {
        let (status, reply) = admin_append(addr, body);
        assert_eq!(status, 200, "append must stage: {reply}");
    }
    assert_eq!(healthz_u64(addr, "delta_size"), 2);
    assert_eq!(generation(addr), 1);

    for (i, (what, plan)) in plans.iter().enumerate() {
        if i > 0 {
            arm(FaultPlan::parse(plan).expect("chaos: plan"));
        }
        let want = failures0 + i as u64 + 1;
        wait_until(&format!("faulted compaction #{} ({what})", i + 1), || {
            metric_counter(addr, "goalrec_library_compaction_failures") >= want
        });
        assert_eq!(
            generation(addr),
            1,
            "a faulted compaction must leave the old generation serving"
        );
        assert_eq!(
            healthz_u64(addr, "delta_size"),
            2,
            "a faulted compaction must leave the delta intact"
        );
        // The serving file is never torn: every line parses, and the row
        // count is either the base or the merged library (a failure after
        // the atomic rename but before the WAL clear legitimately leaves
        // the merge behind). Read with std::fs — the datasets readers
        // would go through the armed fault plan.
        let raw = std::fs::read(&serving).expect("chaos: raw read of the serving file");
        let rows = String::from_utf8_lossy(&raw)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .inspect(|l| {
                goalrec_datasets::io::parse_implementation_line(l)
                    .expect("chaos: the serving file must never be torn");
            })
            .count();
        assert!(
            rows == base_impls || rows == base_impls + 2,
            "serving file holds {rows} implementations, expected {base_impls} or {}",
            base_impls + 2
        );
        eprintln!(
            "chaos: compaction under {what} rolled back — generation 1 serving, delta intact"
        );
    }
    disarm();

    // Faults lifted: the backoff-gated retry must compact cleanly.
    wait_until("the clean compaction retry", || generation(addr) == 2);
    wait_until("the delta to empty", || {
        healthz_u64(addr, "delta_size") == 0
    });
    assert!(
        metric_counter(addr, "goalrec_library_compactions") > compactions0,
        "the clean retry must count as a compaction"
    );
    let on_disk = goalrec_datasets::io::read_library_auto(&serving).expect("chaos: reread");
    assert_eq!(
        on_disk.len(),
        base_impls + 2,
        "the merged library must be persisted after the clean compaction"
    );
    let wal = dir.join("chaos-live.jsonl.wal");
    assert_eq!(
        std::fs::read(&wal).map(|b| b.len()).unwrap_or(0),
        0,
        "the WAL must be cleared by the clean compaction"
    );
    eprintln!("chaos: clean retry compacted to generation 2, delta 0, WAL cleared");

    // ordering: Relaxed — quiesce signal only; the join below is the
    // synchronization point for the tallies.
    stop.store(true, Ordering::Relaxed);
    let mut merged = ClientTally::default();
    for c in clients {
        let tally = c.join().expect("chaos: client thread");
        merged.ok += tally.ok;
        merged.rejected += tally.rejected;
        merged.other += tally.other;
        merged.errors += tally.errors;
    }
    handle.shutdown();

    assert!(
        merged.ok > 0,
        "compaction chaos traffic produced no successful requests"
    );
    assert_eq!(
        (merged.other, merged.errors, merged.rejected),
        (0, 0, 0),
        "faulted compactions must not fail, drop, or shed recommend traffic \
         (ok {}, non-200 {}, transport errors {}, 503s {})",
        merged.ok,
        merged.other,
        merged.errors,
        merged.rejected
    );
    eprintln!(
        "chaos: {} recommend requests answered 200 across three faulted compactions, \
         zero dropped, zero 5xx, zero 503",
        merged.ok
    );
}

/// Keep-alive throughput committed with the CSR + scratch-arena PR; the
/// `--perf` guardrail fails when a run lands more than 30% below this.
/// Refresh it (and BENCH_perf.json) when the hot path changes on purpose.
const PERF_BASELINE_KEEPALIVE_RPS: f64 = 30_000.0;

/// The pre-CSR baseline (PR 3's BENCH_serve.json), kept in the report so
/// the before/after story travels with the numbers.
const PR3_BASELINE_KEEPALIVE_RPS: f64 = 26_700.0;

/// Single-shard scatter-gather may cost at most this factor over the
/// unsharded BestMatch p95 — the k-way merge replay must stay ~free when
/// there is nothing to merge across.
const SHARD_OVERHEAD_LIMIT: f64 = 1.1;

/// Opening a compiled GRLB v2 model (validate checksums + mmap) must beat
/// parsing the JSONL source and building the model by at least this
/// factor at the 200k-implementation scale.
const COLD_START_V2_SPEEDUP_FLOOR: f64 = 10.0;

/// Best-of-3 model build, seconds (one untimed warm-up first).
fn best_build_seconds(lib: &goalrec_core::GoalLibrary) -> f64 {
    use goalrec_core::GoalModel;
    GoalModel::build(lib).expect("perf: warm-up build");
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let m = GoalModel::build(lib).expect("perf: timed build");
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(m.num_impls());
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

/// One append-under-load window: keep-alive recommend traffic against a
/// live-mutation server while a background thread posts single-row
/// appends at `append_per_s` (0 = empty delta for the whole window).
/// Auto-compaction is disabled so the window measures the overlay itself.
fn run_live_phase(
    dir: &std::path::Path,
    append_per_s: u64,
    clients: usize,
    seconds: f64,
) -> serde_json::Value {
    let serving = dir.join(format!("perf-live-{append_per_s}.jsonl"));
    goalrec_datasets::io::write_library_jsonl(&synthetic_library(), &serving)
        .expect("perf: seed live library");
    let _ = std::fs::remove_file(dir.join(format!("perf-live-{append_per_s}.jsonl.wal")));

    let mut cfg = config(
        ServerConfig::default().workers,
        ServerConfig::default().queue_depth,
    );
    cfg.library_path = Some(serving);
    cfg.compact_threshold = 0;
    cfg.compact_max_age = Duration::ZERO;
    let handle = start(synthetic_library(), cfg).expect("perf: start live server");
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || keep_alive_client(addr, stop))
        })
        .collect();
    let appender = (append_per_s > 0).then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let gap = Duration::from_nanos(1_000_000_000 / append_per_s);
            let mut landed = 0u64;
            // ordering: Relaxed — quiesce signal only; joined below.
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = admin_append(addr, r#"{"goal": 0, "actions": [1, 2, 3]}"#);
                assert_eq!(status, 200, "append under load must stage: {body}");
                landed += 1;
                std::thread::sleep(gap);
            }
            landed
        })
    });

    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(seconds));
    // ordering: Relaxed — quiesce signal only; joins below synchronize.
    stop.store(true, Ordering::Relaxed);
    let appends_landed = appender
        .map(|t| t.join().expect("perf: appender"))
        .unwrap_or(0);
    let mut merged = ClientTally::default();
    for t in threads {
        let tally = t.join().expect("perf: live client");
        merged.latencies_ns.extend(tally.latencies_ns);
        merged.ok += tally.ok;
        merged.rejected += tally.rejected;
        merged.other += tally.other;
        merged.errors += tally.errors;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    // Compaction is disabled in this phase, so the staged delta is stable
    // once the appender has joined — read it on the now-quiet server
    // instead of racing the saturating keep-alive clients for a worker.
    let delta_size = healthz_u64(addr, "delta_size");
    handle.shutdown();

    merged.latencies_ns.sort_unstable();
    let req_per_s = if elapsed > 0.0 {
        merged.ok as f64 / elapsed
    } else {
        0.0
    };
    // Transport must stay clean; occasional deadline 408s under scheduler
    // jitter are tolerated (and recorded) exactly as in `run_phase` —
    // they already depress `req_per_s`, which the guardrail gates.
    assert_eq!(
        merged.errors, 0,
        "append-under-load traffic hit {} transport errors",
        merged.errors
    );
    eprintln!(
        "  {append_per_s:>4} appends/s: {req_per_s:.0} req/s ok, delta {delta_size} rows, \
         p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs",
        percentile_us(&merged.latencies_ns, 50.0),
        percentile_us(&merged.latencies_ns, 95.0),
        percentile_us(&merged.latencies_ns, 99.0),
    );
    serde_json::json!({
        "append_per_s": append_per_s,
        "appends_landed": appends_landed,
        "delta_rows_end": delta_size,
        "clients": clients,
        "seconds": (elapsed * 100.0).round() / 100.0,
        "ok": merged.ok,
        "rejected_503": merged.rejected,
        "other_status": merged.other,
        "req_per_s": req_per_s,
        "p50_us": percentile_us(&merged.latencies_ns, 50.0),
        "p95_us": percentile_us(&merged.latencies_ns, 95.0),
        "p99_us": percentile_us(&merged.latencies_ns, 99.0),
    })
}

/// Best-of-3 cold start, milliseconds (one untimed warm-up first so the
/// page cache holds the file either way — the comparison is about work
/// per byte, not disk speed).
fn best_cold_start_ms(mut boot: impl FnMut() -> usize) -> f64 {
    std::hint::black_box(boot());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(boot());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Hot-path regression bench: build timing, per-strategy latency, serving
/// throughput. Writes the report to `out`; exits non-zero when a
/// guardrail trips.
fn perf(clients: usize, seconds: f64, out: &std::path::Path) {
    use goalrec_core::strategies::default_strategies;
    use goalrec_core::{GoalModel, Scratch};
    use goalrec_datasets::foodmart::{FoodMart, FoodMartConfig};
    use goalrec_shard::{ShardScratch, ShardStrategy, ShardedModel};

    // Phase 1: serial vs parallel counting-sort fill on a library at the
    // scalability example's top size (40k impls × 8 actions, 3k vocab).
    eprintln!("phase 1/6: model build — serial vs parallel counting sort (40k impls)");
    let big = synthetic_library_sized(40_000, 3_000, 8);
    std::env::set_var("GOALREC_BUILD_SERIAL", "1");
    let serial_s = best_build_seconds(&big);
    std::env::remove_var("GOALREC_BUILD_SERIAL");
    let parallel_s = best_build_seconds(&big);
    let speedup = serial_s / parallel_s;
    eprintln!(
        "  serial {:.1} ms, parallel {:.1} ms ({speedup:.2}x)",
        serial_s * 1e3,
        parallel_s * 1e3
    );

    // Phase 2: cold start — time from an on-disk artifact to a servable
    // GoalModel, across the three formats a deployment can ship: the
    // JSONL source (parse + build), the GRLB v1 library stream (decode +
    // build), and the GRLB v2 model file (validate + mmap in place).
    // The v2 path skips model construction entirely, which is the whole
    // point of `goalrec compile`; the guardrail pins that win at ≥10x
    // over JSONL at the larger scale.
    eprintln!("phase 2/6: cold start — JSONL build vs GRLB v1 stream vs GRLB v2 mmap");
    let cold_dir = std::env::temp_dir().join("goalrec-perf-cold");
    std::fs::create_dir_all(&cold_dir).expect("perf: cold-start temp dir");
    let mut cold_rows = Vec::new();
    let mut cold_v2_speedup = 0.0f64;
    let mut cold_v2_ms_large = 0.0f64;
    for (impls, vocab) in [(40_000u64, 3_000u64), (200_000, 8_000)] {
        let lib = if impls == 40_000 {
            big.clone()
        } else {
            synthetic_library_sized(impls, vocab, 8)
        };
        let jsonl = cold_dir.join(format!("cold-{impls}.jsonl"));
        let v1 = cold_dir.join(format!("cold-{impls}.grlb"));
        let v2 = cold_dir.join(format!("cold-{impls}.grlb2"));
        goalrec_datasets::io::write_library_jsonl(&lib, &jsonl).expect("perf: write jsonl");
        goalrec_datasets::binary::write_library_binary(&lib, &v1).expect("perf: write grlb v1");
        let built = GoalModel::build(&lib).expect("perf: cold-start model");
        goalrec_datasets::grlb2::write_model_v2(&built, &v2).expect("perf: write grlb v2");

        let jsonl_ms = best_cold_start_ms(|| {
            let l = goalrec_datasets::io::read_library_auto(&jsonl).expect("perf: read jsonl");
            GoalModel::build(&l).expect("perf: jsonl build").num_impls()
        });
        let v1_ms = best_cold_start_ms(|| {
            goalrec_datasets::binary::read_model_binary(&v1)
                .expect("perf: read grlb v1")
                .num_impls()
        });
        let v2_ms = best_cold_start_ms(|| {
            goalrec_datasets::grlb2::read_model_v2(&v2)
                .expect("perf: read grlb v2")
                .num_impls()
        });
        let speedup = jsonl_ms / v2_ms.max(f64::EPSILON);
        eprintln!(
            "  {impls} impls: jsonl {jsonl_ms:.1} ms, v1 stream {v1_ms:.1} ms, \
             v2 mmap {v2_ms:.2} ms ({speedup:.0}x vs jsonl)"
        );
        if impls == 200_000 {
            cold_v2_speedup = speedup;
            cold_v2_ms_large = v2_ms;
        }
        cold_rows.push(serde_json::json!({
            "implementations": impls,
            "action_vocabulary": vocab,
            "impl_len": 8,
            "jsonl_build_ms": jsonl_ms,
            "grlb_v1_stream_ms": v1_ms,
            "grlb_v2_mmap_ms": v2_ms,
            "v2_vs_jsonl_speedup": speedup,
        }));
        for p in [&jsonl, &v1, &v2] {
            std::fs::remove_file(p).ok();
        }
    }

    // Phase 3: steady-state rank_into latency per strategy over the
    // FoodMart test-scale carts — the workload `repro table6 --scale
    // test` ranks. Two untimed passes settle the arena, caches, and
    // branch predictors, and the timed window covers the cart set three
    // times over: with a single pass the first Focus ranking after a
    // strategy switch always paid a cold-cache toll, showing up as a
    // spurious Focus_cl p99 outlier.
    eprintln!("phase 3/6: per-strategy rank_into latency (FoodMart test-scale carts)");
    let fm = FoodMart::generate(&FoodMartConfig::test_scale());
    let model = GoalModel::build(&fm.library).expect("perf: foodmart model");
    let mut scratch = Scratch::new();
    let mut strategy_reports = Vec::new();
    let mut best_match_p95_us = 0.0f64;
    for strategy in default_strategies() {
        for _ in 0..2 {
            for cart in &fm.carts {
                std::hint::black_box(strategy.rank_into(&model, cart, 10, &mut scratch));
            }
        }
        let mut lat_ns: Vec<u64> = Vec::with_capacity(fm.carts.len() * 3);
        for _ in 0..3 {
            lat_ns.extend(fm.carts.iter().map(|cart| {
                let t0 = Instant::now();
                std::hint::black_box(strategy.rank_into(&model, cart, 10, &mut scratch));
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }));
        }
        lat_ns.sort_unstable();
        let (p50, p95, p99) = (
            percentile_us(&lat_ns, 50.0),
            percentile_us(&lat_ns, 95.0),
            percentile_us(&lat_ns, 99.0),
        );
        eprintln!(
            "  {:<10} p50 {p50:.0} µs, p95 {p95:.0} µs, p99 {p99:.0} µs over {} rankings",
            strategy.name(),
            lat_ns.len()
        );
        if strategy.name() == "BestMatch" {
            best_match_p95_us = p95;
        }
        strategy_reports.push(serde_json::json!({
            "strategy": strategy.name(),
            "requests": lat_ns.len(),
            "p50_us": p50,
            "p95_us": p95,
            "p99_us": p99,
        }));
    }

    // Phase 3: the sharded scatter-gather path over the same carts and
    // the same model data, across shard counts. The shard crate's
    // property tests prove the merge bit-exact; this phase prices it.
    // At one shard the scatter is the unsharded ranking plus the merge
    // replay, so the N=1 BestMatch p95 against phase 2 is the pure
    // scatter-gather overhead — guard-railed at 10%.
    eprintln!("phase 4/6: sharded scatter-gather latency — shards {{1, 2, 4, 8}}, same carts");
    let mut shard_reports = Vec::new();
    let mut sharded_best_match_p95_n1_us = 0.0f64;
    for num_shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let sharded = ShardedModel::build(
            &fm.library,
            num_shards,
            goalrec_shard::PartitionMode::HashGoal,
        )
        .expect("perf: sharded model");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let shards = sharded.shards();
        let mut shard_scratch = ShardScratch::new();
        let mut per_strategy = Vec::new();
        for (api, internal) in TRACE_STRATEGIES {
            let strategy = ShardStrategy::for_api_name(api).expect("perf: shard strategy");
            for cart in &fm.carts {
                std::hint::black_box(strategy.rank_into(shards, cart, 10, &mut shard_scratch));
            }
            let mut lat_ns: Vec<u64> = fm
                .carts
                .iter()
                .map(|cart| {
                    let t0 = Instant::now();
                    std::hint::black_box(strategy.rank_into(shards, cart, 10, &mut shard_scratch));
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
                })
                .collect();
            lat_ns.sort_unstable();
            let (p50, p95, p99) = (
                percentile_us(&lat_ns, 50.0),
                percentile_us(&lat_ns, 95.0),
                percentile_us(&lat_ns, 99.0),
            );
            if num_shards == 1 && *internal == "BestMatch" {
                sharded_best_match_p95_n1_us = p95;
            }
            eprintln!(
                "  {num_shards} shard(s) {internal:<10} p50 {p50:.0} µs, p95 {p95:.0} µs, \
                 p99 {p99:.0} µs"
            );
            per_strategy.push(serde_json::json!({
                "strategy": *internal,
                "requests": fm.carts.len(),
                "p50_us": p50,
                "p95_us": p95,
                "p99_us": p99,
            }));
        }
        // End-to-end serving throughput at this shard count: a short
        // keep-alive window against a live server routing through the
        // scatter-gather path (0 shards = unsharded baseline elsewhere).
        let tp = run_phase(
            ServerConfig::default().workers,
            ServerConfig::default().queue_depth,
            num_shards,
            clients,
            seconds.min(2.0),
            keep_alive_client,
        );
        eprintln!("  {num_shards} shard(s) serving: {}", tp.summary);
        shard_reports.push(serde_json::json!({
            "shards": num_shards,
            "partition_mode": "hash",
            "build_ms": build_ms,
            "strategy_latency": per_strategy,
            "throughput": tp.value,
        }));
    }

    // Phase 4: the keep-alive serving phase, workers allocation-free
    // after warm-up.
    // Best of three windows: a closed-loop load test only loses
    // throughput to scheduler noise (this gate must not flap on shared
    // CI runners), so the best window is the machine's capability.
    eprintln!("phase 5/6: keep-alive serving throughput — {clients} clients, best of 3 windows");
    let mut phase = None::<PhaseOutcome>;
    for window in 1..=3 {
        let run = run_phase(
            ServerConfig::default().workers,
            ServerConfig::default().queue_depth,
            0,
            clients,
            seconds,
            keep_alive_client,
        );
        eprintln!("  window {window}: {}", run.summary);
        if phase
            .as_ref()
            .is_none_or(|best| run.req_per_s > best.req_per_s)
        {
            phase = Some(run);
        }
    }
    let phase = phase.expect("perf: at least one throughput window");
    let req_per_s = phase.req_per_s;

    // Phase 5: the append-under-load sweep. The 0-appends/s row is the
    // empty-delta case — the live mutation plane enabled but idle — and
    // is guard-railed to within 5% of the phase-4 throughput from this
    // same run (same machine, same windows), proving the overlay costs
    // nothing until rows are actually staged. Best of three windows for
    // the gated row, single windows for the loaded rows.
    eprintln!("phase 6/6: append-under-load sweep — appends/s {{0, 50, 200}}, live delta overlay");
    let live_dir = std::env::temp_dir().join("goalrec-perf-live");
    std::fs::create_dir_all(&live_dir).expect("perf: live temp dir");
    let mut live_rows = Vec::new();
    let mut empty_delta_rps = 0.0f64;
    for _ in 0..3 {
        let row = run_live_phase(&live_dir, 0, clients, seconds.min(2.0));
        let rps = row
            .get("req_per_s")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0);
        if rps > empty_delta_rps {
            empty_delta_rps = rps;
            if let Some(first) = live_rows.first_mut() {
                *first = row;
            } else {
                live_rows.push(row);
            }
        } else if live_rows.is_empty() {
            live_rows.push(row);
        }
    }
    for rate in [50u64, 200] {
        live_rows.push(run_live_phase(&live_dir, rate, clients, seconds.min(2.0)));
    }
    let empty_delta_ratio = if req_per_s > 0.0 {
        empty_delta_rps / req_per_s
    } else {
        0.0
    };

    let floor = PERF_BASELINE_KEEPALIVE_RPS * 0.7;
    let build_report = serde_json::json!({
        "implementations": 40_000,
        "action_vocabulary": 3_000,
        "impl_len": 8,
        "serial_ms": serial_s * 1e3,
        "parallel_ms": parallel_s * 1e3,
        "speedup": speedup,
        // Interpretation key: on a single-core host the fill phases run
        // one partition either way, so speedup ≈ 1.0 by construction.
        "available_parallelism": std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    });
    let guardrails = serde_json::json!({
        "best_match_p95_us": best_match_p95_us,
        "best_match_p95_limit_us": 1_000.0,
        "sharded_best_match_p95_n1_us": sharded_best_match_p95_n1_us,
        "sharded_overhead_limit": SHARD_OVERHEAD_LIMIT,
        "req_per_s": req_per_s,
        "req_per_s_floor": floor,
        "baseline_req_per_s": PERF_BASELINE_KEEPALIVE_RPS,
        "pr3_baseline_req_per_s": PR3_BASELINE_KEEPALIVE_RPS,
        "empty_delta_req_per_s": empty_delta_rps,
        "empty_delta_ratio": empty_delta_ratio,
        "empty_delta_ratio_floor": 0.95,
        "cold_start_v2_vs_jsonl_speedup": cold_v2_speedup,
        "cold_start_v2_vs_jsonl_speedup_floor": COLD_START_V2_SPEEDUP_FLOOR,
        "cold_start_v2_mmap_ms_200k": cold_v2_ms_large,
    });
    let report = serde_json::json!({
        "bench": "goalrec perf — GRLB v2 mmap cold start and the sharded hot path",
        "build": build_report,
        "cold_start": cold_rows,
        "strategy_latency": strategy_reports,
        "sharded_latency": shard_reports,
        "throughput": phase.value,
        "append_under_load": live_rows,
        "guardrails": guardrails,
    });
    let text = serde_json::to_string_pretty(&report).expect("serialise perf report");
    std::fs::write(out, &text).expect("write perf report");
    println!("{text}");
    eprintln!("report → {}", out.display());

    let mut failed = false;
    if best_match_p95_us >= 1_000.0 {
        eprintln!(
            "PERF REGRESSION: BestMatch p95 {best_match_p95_us:.0} µs breaches the 1 ms budget"
        );
        failed = true;
    }
    if sharded_best_match_p95_n1_us > best_match_p95_us * SHARD_OVERHEAD_LIMIT {
        eprintln!(
            "PERF REGRESSION: single-shard BestMatch p95 {sharded_best_match_p95_n1_us:.0} µs \
             costs more than {SHARD_OVERHEAD_LIMIT}x the unsharded path \
             ({best_match_p95_us:.0} µs) — the scatter-gather overhead budget is 10%"
        );
        failed = true;
    }
    if req_per_s < floor {
        eprintln!(
            "PERF REGRESSION: {req_per_s:.0} req/s is >30% below the committed \
             baseline of {PERF_BASELINE_KEEPALIVE_RPS:.0} req/s (floor {floor:.0})"
        );
        failed = true;
    }
    if empty_delta_ratio < 0.95 {
        eprintln!(
            "PERF REGRESSION: empty-delta throughput {empty_delta_rps:.0} req/s is \
             {:.1}% of the plain-server phase ({req_per_s:.0} req/s) — the idle live \
             mutation plane must cost under 5%",
            empty_delta_ratio * 100.0
        );
        failed = true;
    }
    if cold_v2_speedup < COLD_START_V2_SPEEDUP_FLOOR {
        eprintln!(
            "PERF REGRESSION: GRLB v2 cold start is only {cold_v2_speedup:.1}x faster than \
             the JSONL build at 200k impls (floor {COLD_START_V2_SPEEDUP_FLOOR}x) — the \
             mmap fast path has stopped paying for itself"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clients = 8usize;
    let mut seconds = 3.0f64;
    let mut out: Option<std::path::PathBuf> = None;
    let mut is_smoke = false;
    let mut is_chaos = false;
    let mut is_perf = false;
    let mut shards = 0usize;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("missing value for {name}")))
        };
        match arg.as_str() {
            "--clients" => {
                clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|_| usage("--clients expects a number"))
            }
            "--seconds" => {
                seconds = value("--seconds")
                    .parse()
                    .unwrap_or_else(|_| usage("--seconds expects a number"))
            }
            "--out" => out = Some(value("--out").into()),
            "--shards" => {
                shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| usage("--shards expects a number"))
            }
            "--smoke" => is_smoke = true,
            "--chaos-smoke" => is_chaos = true,
            "--perf" => is_perf = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    if is_perf {
        let out = out.unwrap_or_else(|| std::path::PathBuf::from("BENCH_perf.json"));
        perf(clients, seconds, &out);
        return;
    }
    let out = out.unwrap_or_else(|| std::path::PathBuf::from("BENCH_serve.json"));

    if is_chaos {
        chaos_smoke();
        sharded_chaos();
        compaction_chaos();
        println!(
            "loadgen --chaos-smoke: faulted reloads and compactions rolled back (whole-model, \
             per-shard, and live-delta), traffic unharmed, clean retries bumped the generations"
        );
        return;
    }

    if is_smoke {
        smoke(shards);
        if shards > 0 {
            println!("loadgen --smoke ({shards} shards): all probes ok, graceful drain ok");
        } else {
            println!("loadgen --smoke: all probes ok, graceful drain ok");
        }
        return;
    }

    eprintln!("phase 1/2: throughput — {clients} keep-alive clients, default queue depth");
    let throughput_phase = run_phase(
        ServerConfig::default().workers,
        ServerConfig::default().queue_depth,
        0,
        clients,
        seconds,
        keep_alive_client,
    );
    eprintln!("  {}", throughput_phase.summary);
    let throughput = throughput_phase.value;

    let mut sweep = Vec::new();
    for depth in [1usize, 16, 256] {
        eprintln!(
            "phase 2/2: overload sweep — queue depth {depth}, 2 workers, 16 reconnecting clients"
        );
        let phase = run_phase(2, depth, 0, 16, seconds.min(2.0), reconnect_client);
        eprintln!("  {}", phase.summary);
        sweep.push(phase.value);
    }

    let report = serde_json::json!({
        "bench": "goalrec-serve loadgen",
        "throughput": throughput,
        "queue_depth_sweep": sweep,
    });
    let text = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    eprintln!("report → {}", out.display());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: loadgen [--clients N] [--seconds S] [--out FILE] [--smoke [--shards N]] \
         [--chaos-smoke] [--perf]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
