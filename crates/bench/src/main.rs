//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENTS] [--scale test|medium|large|paper] [--json DIR]
//!
//! EXPERIMENTS  any of: stats table2 table3 table4 table5 table6
//!              figure4 figure5 figure6 figure7 ablation
//!              (default: all)
//! --scale      dataset scale (default: medium)
//! --json DIR   also write each result as JSON into DIR
//! ```

use goalrec_eval::experiments::figure7::Figure7Config;
use goalrec_eval::experiments::{
    ablation, extended, figure4, figure7, figures56, rerank, sessions, stability, table2, table3,
    table4, table5, table6,
};
use goalrec_eval::{EvalConfig, EvalContext};
use goalrec_obs as obs;
use std::io::Write as _;
use std::time::Instant;

const ALL: &[&str] = &[
    "stats",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "ablation",
    "extended",
    "stability",
    "rerank",
    "sessions",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "medium".to_owned();
    let mut json_dir: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .unwrap_or_else(|| usage("missing value for --scale"))
            }
            "--json" => {
                json_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("missing value for --json"))
                        .into(),
                )
            }
            "--help" | "-h" => usage(""),
            other if ALL.contains(&other) => wanted.push(other.to_owned()),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if wanted.is_empty() {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create --json directory");
    }

    let stability_cfg = match scale.as_str() {
        // The stability sweep rebuilds the context per seed, so it always
        // runs at test scale unless the user asked for the full thing.
        "paper" | "large" => EvalConfig::medium_scale(),
        _ => EvalConfig::test_scale(),
    };
    let (cfg, fig7cfg) = match scale.as_str() {
        "test" => (EvalConfig::test_scale(), Figure7Config::test_scale()),
        "medium" => (EvalConfig::medium_scale(), Figure7Config::medium_scale()),
        "large" => (EvalConfig::large_scale(), Figure7Config::medium_scale()),
        "paper" => (EvalConfig::paper_scale(), Figure7Config::paper_scale()),
        other => usage(&format!("unknown scale: {other}")),
    };

    // figure7 is self-contained; only build the full context when needed.
    let needs_ctx = wanted.iter().any(|w| w != "figure7" && w != "stability");
    let ctx = needs_ctx.then(|| {
        eprintln!("building evaluation context at {scale} scale…");
        let t0 = Instant::now();
        let ctx = EvalContext::build(cfg);
        eprintln!("context ready in {:.1}s", t0.elapsed().as_secs_f64());
        ctx
    });

    let mut stdout = std::io::stdout().lock();
    for exp in &wanted {
        let t0 = Instant::now();
        let span = obs::Timer::scoped(&obs::names::eval_experiment_wall(exp));
        let (text, json) = match exp.as_str() {
            "stats" => stats(ctx.as_ref().expect("ctx")),
            "table2" => show(table2::run(ctx.as_ref().expect("ctx"))),
            "table3" => show(table3::run(ctx.as_ref().expect("ctx"))),
            "table4" => show(table4::run(ctx.as_ref().expect("ctx"))),
            "table5" => show(table5::run(ctx.as_ref().expect("ctx"))),
            "table6" => show(table6::run(ctx.as_ref().expect("ctx"))),
            "figure4" => show(figure4::run(ctx.as_ref().expect("ctx"))),
            "figure5" | "figure6" => show(figures56::run(ctx.as_ref().expect("ctx"))),
            "figure7" => show(figure7::run(&fig7cfg)),
            "ablation" => show(ablation::run(ctx.as_ref().expect("ctx"))),
            "extended" => show(extended::run(ctx.as_ref().expect("ctx"))),
            "stability" => show(stability::run(&stability_cfg, &[1, 2, 3, 4, 5])),
            "rerank" => show(rerank::run(ctx.as_ref().expect("ctx"))),
            "sessions" => show(sessions::run(
                ctx.as_ref().expect("ctx"),
                &sessions::SessionConfig::default(),
            )),
            _ => unreachable!("validated above"),
        };
        drop(span);
        writeln!(stdout, "{text}").expect("stdout");
        eprintln!("[{exp} done in {:.1}s]", t0.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            std::fs::write(dir.join(format!("{exp}.json")), json).expect("write JSON result");
        }
    }
    drop(stdout);

    // Everything above recorded into the global registry: model builds,
    // per-strategy serving, batch wall clocks, and the per-experiment
    // spans. Print the snapshot and persist it next to the JSON results
    // (cwd when --json was not given) as BENCH_obs.json.
    let report = obs::snapshot();
    if !report.is_empty() {
        println!("{report}");
        let obs_path = json_dir
            .as_deref()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("BENCH_obs.json");
        std::fs::write(&obs_path, report.to_json()).expect("write BENCH_obs.json");
        eprintln!("metrics snapshot → {}", obs_path.display());
    }
}

fn show<T: std::fmt::Display + serde::Serialize>(result: T) -> (String, String) {
    let json = serde_json::to_string_pretty(&result).expect("serialise result");
    (result.to_string(), json)
}

fn stats(ctx: &EvalContext) -> (String, String) {
    let fm = ctx.foodmart.data.library.stats();
    let ft = ctx.fortythree.data.library.stats();
    let text = format!(
        "Dataset statistics\n\
         ------------------\n\
         FoodMart : {} implementations, {} actions, {} goals, connectivity {:.1}, avg impl len {:.1}, {} carts, {} users\n\
         43Things : {} implementations, {} actions, {} goals, connectivity {:.2} (distinct-goal {:.2}), avg impl len {:.1}, {} users\n",
        fm.num_implementations,
        fm.num_actions,
        fm.num_goals,
        fm.connectivity,
        fm.avg_impl_len,
        ctx.foodmart.data.carts.len(),
        ctx.foodmart.data.num_users,
        ft.num_implementations,
        ft.num_actions,
        ft.num_goals,
        ft.connectivity,
        ctx.fortythree.data.goal_connectivity(),
        ft.avg_impl_len,
        ctx.fortythree.data.full_activities.len(),
    );
    let json = serde_json::json!({ "foodmart": fm, "fortythree": ft }).to_string();
    (text, json)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENTS] [--scale test|medium|large|paper] [--json DIR]\n\
         experiments: {}",
        ALL.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
