//! Minimal flag parser for the CLI (no external dependency).

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--flag value` /
/// `--flag` pairs.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses argv. `--name value` stores a value; a `--name` followed by
    /// another flag (or nothing) stores an empty string; `-k` is accepted
    /// as a short alias with a value.
    pub fn parse(argv: &[String]) -> Self {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                let has_value = i + 1 < argv.len() && !argv[i + 1].starts_with('-');
                if has_value {
                    out.flags.insert(name.to_owned(), argv[i + 1].clone());
                    i += 2;
                } else {
                    out.flags.insert(name.to_owned(), String::new());
                    i += 1;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        out
    }

    /// Positional argument by index.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Flag value (empty string for bare flags).
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a bare or valued flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Required flag, with a readable error.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flag(name)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| format!("missing required --{name} <value>"))
    }

    /// Parsed numeric flag with a default.
    pub fn num(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&[
            "recommend",
            "--library",
            "lib.jsonl",
            "-k",
            "5",
            "--explain",
        ]);
        assert_eq!(a.positional(0), Some("recommend"));
        assert_eq!(a.flag("library"), Some("lib.jsonl"));
        assert_eq!(a.num("k", 10).unwrap(), 5);
        assert!(a.has("explain"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn required_and_errors() {
        let a = parse(&["x", "--out", "file"]);
        assert_eq!(a.required("out").unwrap(), "file");
        assert!(a.required("library").is_err());
        let bad = parse(&["--k", "abc"]);
        assert!(bad.num("k", 1).is_err());
    }

    #[test]
    fn bare_flag_followed_by_flag() {
        let a = parse(&["--explain", "--k", "3"]);
        assert!(a.has("explain"));
        assert_eq!(a.num("k", 10).unwrap(), 3);
    }
}
