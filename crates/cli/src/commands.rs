//! CLI subcommands.

use crate::args::Args;
use goalrec_core::{
    explain, Activity, GoalModel, GoalRecommender, LibraryBuilder, Recommender, StatsReport,
    Strategy,
};
use goalrec_datasets::{io as dsio, FoodMart, FoodMartConfig, FortyThings, FortyThingsConfig};
use goalrec_textmine::{build_library, ActionExtractor, Story};
use serde::Deserialize;
use std::path::Path;

type CmdResult = Result<(), String>;

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let args = Args::parse(argv);
    match args.positional(0) {
        Some("generate") => generate(&args),
        Some("extract") => extract(&args),
        Some("synth") => synth(&args),
        Some("convert") => convert(&args),
        Some("compile") => compile(&args),
        Some("stats") => stats(&args),
        Some("recommend") => recommend(&args),
        Some("serve") => serve(&args),
        Some("demo") => demo(),
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
        None => Err(USAGE.to_owned()),
    }
}

const USAGE: &str = "usage:\n  \
    goalrec generate  foodmart|fortythree [--scale test|paper] --out FILE\n  \
    goalrec synth     --out FILE.json [--stories N] [--seed N]\n  \
    goalrec extract   --stories FILE.json --out FILE.jsonl\n  \
    goalrec convert   --library FILE.jsonl --out FILE.grlb (and back)\n  \
    goalrec compile   --library FILE --out MODEL.grlb2 [--shards N] [--shard-mode hash|balanced]\n  \
    goalrec stats     --library FILE.jsonl [--json] [--metrics] [--actions N] [--goals N]\n  \
    goalrec recommend --library FILE.jsonl --activity a1,a2,... \
[--strategy breadth|best-match|focus-cmp|focus-cl] [--k N] [--explain]\n  \
    goalrec serve     --library FILE.jsonl [--addr HOST] [--port N] [--workers N] \
[--queue-depth N] [--deadline-ms N] [--idle-ms N] [--no-trace] \
[--trace-sample-every N] [--access-log] [--access-log-every N] \
[--shards N] [--shard-mode hash|balanced] [--admin-deadline-ms N] \
[--append-max-entries N] [--watch] [--compact-threshold N] [--compact-max-age-ms N]\n  \
    goalrec demo";

fn generate(args: &Args) -> CmdResult {
    let which = args
        .positional(1)
        .ok_or("generate needs a dataset: foodmart | fortythree")?;
    let out = args.required("out")?;
    let scale = args.flag("scale").unwrap_or("test");
    match which {
        "foodmart" => {
            let cfg = match scale {
                "paper" => FoodMartConfig::paper_scale(),
                "test" => FoodMartConfig::test_scale(),
                other => return Err(format!("unknown scale '{other}'")),
            };
            let fm = FoodMart::generate(&cfg);
            dsio::write_json(&fm, Path::new(out)).map_err(|e| e.to_string())?;
            let s = fm.library.stats();
            println!(
                "wrote {out}: {} recipes, {} products, {} carts (connectivity {:.1})",
                s.num_implementations,
                s.num_actions,
                fm.carts.len(),
                s.connectivity
            );
        }
        "fortythree" => {
            let cfg = match scale {
                "paper" => FortyThingsConfig::paper_scale(),
                "test" => FortyThingsConfig::test_scale(),
                other => return Err(format!("unknown scale '{other}'")),
            };
            let ft = FortyThings::generate(&cfg);
            dsio::write_json(&ft, Path::new(out)).map_err(|e| e.to_string())?;
            let s = ft.library.stats();
            println!(
                "wrote {out}: {} implementations, {} goals, {} actions, {} users",
                s.num_implementations,
                s.num_goals,
                s.num_actions,
                ft.full_activities.len()
            );
        }
        other => return Err(format!("unknown dataset '{other}'")),
    }
    Ok(())
}

#[derive(Deserialize)]
struct StoryIn {
    goal: String,
    text: String,
}

fn synth(args: &Args) -> CmdResult {
    use goalrec_textmine::{generate_stories, SynthConfig};
    let out = args.required("out")?;
    let cfg = SynthConfig {
        num_stories: args.num("stories", 50)?,
        seed: args.num("seed", 0x5709)? as u64,
        ..SynthConfig::default()
    };
    let corpus = generate_stories(&cfg);
    let json: Vec<serde_json::Value> = corpus
        .stories
        .iter()
        .map(|s| serde_json::json!({"goal": s.goal, "text": s.text}))
        .collect();
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    println!("wrote {} synthetic stories → {out}", corpus.stories.len());
    Ok(())
}

fn extract(args: &Args) -> CmdResult {
    let stories_path = args.required("stories")?;
    let out = args.required("out")?;
    let raw = std::fs::read_to_string(stories_path).map_err(|e| e.to_string())?;
    let stories_in: Vec<StoryIn> = serde_json::from_str(&raw).map_err(|e| e.to_string())?;
    let stories: Vec<Story> = stories_in
        .into_iter()
        .map(|s| Story::new(s.goal, s.text))
        .collect();
    let build = build_library(&stories, &ActionExtractor::default()).map_err(|e| e.to_string())?;
    dsio::write_library_jsonl(&build.library, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "extracted {} implementations / {} goals / {} actions from {} stories ({} skipped) → {out}",
        build.library.len(),
        build.library.num_goals(),
        build.library.num_actions(),
        stories.len(),
        build.skipped.len()
    );
    // Sidecar with the name dictionaries so `recommend` can map names.
    let names = serde_json::json!({
        "actions": build.library.action_names().iter().map(|(_, n)| n).collect::<Vec<_>>(),
        "goals": build.library.goal_names().iter().map(|(_, n)| n).collect::<Vec<_>>(),
    });
    let sidecar = format!("{out}.names.json");
    std::fs::write(&sidecar, names.to_string()).map_err(|e| e.to_string())?;
    println!("name dictionaries → {sidecar}");
    Ok(())
}

/// Loads a library: `GRLB` binary (v1 stream or v2 model file, the
/// reader dispatches on the version stamp) when the file has a `.grlb` /
/// `.grlb2` extension, JSON-lines otherwise (with id spaces inferred
/// when the `--actions`/`--goals` flags are absent).
fn load_library(args: &Args) -> Result<goalrec_core::GoalLibrary, String> {
    let path = args.required("library")?;
    if dsio::is_binary_library(Path::new(path)) {
        return dsio::read_library_auto(Path::new(path)).map_err(|e| e.to_string());
    }
    // First pass to infer bounds if flags are absent.
    let (mut max_a, mut max_g) = (0u32, 0u32);
    let raw = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    for line in raw.lines().filter(|l| !l.trim().is_empty()) {
        let imp: goalrec_core::Implementation =
            serde_json::from_str(line).map_err(|e| e.to_string())?;
        max_g = max_g.max(imp.goal.raw());
        for a in &imp.actions {
            max_a = max_a.max(a.raw());
        }
    }
    let actions = args.num("actions", (max_a + 1) as usize)? as u32;
    let goals = args.num("goals", (max_g + 1) as usize)? as u32;
    dsio::read_library_jsonl(Path::new(path), actions, goals).map_err(|e| e.to_string())
}

fn convert(args: &Args) -> CmdResult {
    let lib = load_library(args)?;
    let out = args.required("out")?;
    if out.ends_with(".grlb2") {
        return Err(
            "convert writes library formats; use `goalrec compile` for GRLB v2 model files"
                .to_owned(),
        );
    }
    if out.ends_with(".grlb") {
        goalrec_datasets::binary::write_library_binary(&lib, Path::new(out))
            .map_err(|e| e.to_string())?;
    } else {
        dsio::write_library_jsonl(&lib, Path::new(out)).map_err(|e| e.to_string())?;
    }
    println!("converted {} implementations → {out}", lib.len());
    Ok(())
}

/// Compiles a library into the GRLB v2 model format: the aligned,
/// sectioned, checksummed file `goalrec serve` maps into place (no JSON
/// parse, no CSR rebuild at startup). With `--shards N` the matching
/// per-shard snapshot family (`MODEL.shard<i>.grlb2`) is written next to
/// it, so `goalrec serve --shards N` boots every shard mapped as well.
fn compile(args: &Args) -> CmdResult {
    let lib = load_library(args)?;
    let out = args.required("out")?;
    if !out.ends_with(".grlb2") {
        return Err("compile writes GRLB v2 model files; --out must end in .grlb2".to_owned());
    }
    let model = GoalModel::build(&lib).map_err(|e| e.to_string())?;
    goalrec_datasets::grlb2::write_model_v2(&model, Path::new(out)).map_err(|e| e.to_string())?;
    // Read-back verify through the full validate-before-trust pipeline:
    // a model file that cannot be served must not leave this command.
    let reread = goalrec_datasets::grlb2::read_model_v2(Path::new(out))
        .map_err(|e| format!("read-back verify of {out} failed: {e}"))?;
    if reread.num_impls() != model.num_impls() {
        return Err(format!(
            "read-back verify of {out} found {} implementations, expected {}",
            reread.num_impls(),
            model.num_impls()
        ));
    }
    println!(
        "compiled {} implementations / {} goals / {} actions → {out} ({} bytes, mmap-servable)",
        lib.len(),
        lib.num_goals(),
        lib.num_actions(),
        std::fs::metadata(out).map(|m| m.len()).unwrap_or(0)
    );
    let shards = args.num("shards", 0)?;
    if shards > 0 {
        let mode = match args.flag("shard-mode") {
            Some(m) => goalrec_server::PartitionMode::parse(m)
                .ok_or_else(|| format!("--shard-mode expects 'hash' or 'balanced', got '{m}'"))?,
            None => goalrec_server::PartitionMode::HashGoal,
        };
        let family = goalrec_server::shards::persist_shard_family(&lib, shards, mode, Path::new(out))
            .map_err(|e| e.to_string())?;
        for path in &family {
            println!("  shard snapshot → {}", path.display());
        }
        println!(
            "serve with: goalrec serve --library {out} --shards {} --shard-mode {}",
            family.len(),
            match mode {
                goalrec_server::PartitionMode::HashGoal => "hash",
                goalrec_server::PartitionMode::BalancedMass => "balanced",
            }
        );
    }
    Ok(())
}

/// Prints library statistics. `--json` emits a machine-readable object;
/// `--metrics` additionally compiles the model so the `model.build.*`
/// spans populate, then appends the metrics snapshot.
fn stats(args: &Args) -> CmdResult {
    let lib = load_library(args)?;
    let s = lib.stats();
    let metrics = if args.has("metrics") {
        // Building the model is what produces the build-span timings.
        let _ = GoalModel::build(&lib).map_err(|e| e.to_string())?;
        Some(goalrec_obs::snapshot())
    } else {
        None
    };
    if args.has("json") {
        // Shared shape with the server's GET /v1/stats — see StatsReport.
        println!("{}", StatsReport::new(s, metrics).to_json_pretty());
        return Ok(());
    }
    println!("implementations : {}", s.num_implementations);
    println!("actions         : {}", s.num_actions);
    println!("goals           : {}", s.num_goals);
    println!(
        "connectivity    : {:.2} (max {})",
        s.connectivity, s.max_connectivity
    );
    println!(
        "avg impl length : {:.2} (max {})",
        s.avg_impl_len, s.max_impl_len
    );
    println!("impls per goal  : {:.2}", s.avg_impls_per_goal);
    if let Some(report) = metrics {
        println!();
        println!("{report}");
    }
    Ok(())
}

fn parse_strategy(name: &str) -> Result<Box<dyn Strategy>, String> {
    use goalrec_core::{BestMatch, Breadth, Focus, FocusVariant};
    Ok(match name {
        "breadth" => Box::new(Breadth),
        "best-match" => Box::new(BestMatch::default()),
        "focus-cmp" => Box::new(Focus::new(FocusVariant::Completeness)),
        "focus-cl" => Box::new(Focus::new(FocusVariant::Closeness)),
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn recommend(args: &Args) -> CmdResult {
    let lib = load_library(args)?;
    let activity_spec = args.required("activity")?;
    let ids: Result<Vec<u32>, _> = activity_spec
        .split(',')
        .map(|t| t.trim().trim_start_matches('a').parse::<u32>())
        .collect();
    let ids = ids.map_err(|e| format!("--activity expects ids like 3,17,42: {e}"))?;
    let activity = Activity::from_raw(ids);
    let k = args.num("k", 10)?;
    let strategy = parse_strategy(args.flag("strategy").unwrap_or("breadth"))?;
    let strategy_name = strategy.name();

    let model = GoalModel::build(&lib).map_err(|e| e.to_string())?;
    let rec = GoalRecommender::from_library(&lib, strategy).map_err(|e| e.to_string())?;
    let top = rec.recommend(&activity, k);
    println!("{strategy_name} top-{k} for activity [{activity_spec}]:");
    for (rank, s) in top.iter().enumerate() {
        println!(
            "  {:>2}. {} (score {:.4})",
            rank + 1,
            lib.action_name(s.action),
            s.score
        );
        if args.has("explain") {
            let ex = explain(&model, &activity, s.action, 3);
            for j in &ex.justifications {
                let missing: Vec<String> = j
                    .still_missing
                    .iter()
                    .map(|a| lib.action_name(*a))
                    .collect();
                println!(
                    "        → {} via {}: {:.0}% → {:.0}%{}",
                    lib.goal_name(j.goal),
                    j.implementation,
                    j.completeness_before * 100.0,
                    j.completeness_after * 100.0,
                    if missing.is_empty() {
                        " (completes the goal)".to_owned()
                    } else {
                        format!(", still missing [{}]", missing.join(", "))
                    }
                );
            }
        }
    }
    Ok(())
}

/// Runs the HTTP server over a library file: a thin wrapper around
/// `goalrec_server::run_blocking` so `goalrec serve` and the standalone
/// `goalrec-serve` binary behave identically.
fn serve(args: &Args) -> CmdResult {
    use std::time::Duration;
    let lib = load_library(args)?;
    let mut cfg = goalrec_server::ServerConfig::default();
    if let Some(addr) = args.flag("addr") {
        cfg.addr = addr.to_owned();
    }
    cfg.port = u16::try_from(args.num("port", usize::from(cfg.port))?)
        .map_err(|_| "--port must fit in 16 bits".to_owned())?;
    cfg.workers = args.num("workers", cfg.workers)?;
    cfg.queue_depth = args.num("queue-depth", cfg.queue_depth)?;
    cfg.deadline =
        Duration::from_millis(u64::try_from(args.num("deadline-ms", 1000)?).unwrap_or(u64::MAX));
    cfg.idle_timeout =
        Duration::from_millis(u64::try_from(args.num("idle-ms", 5000)?).unwrap_or(u64::MAX));
    cfg.trace_enabled = !args.has("no-trace");
    cfg.trace_sample_every = u64::try_from(args.num("trace-sample-every", 64)?).unwrap_or(u64::MAX);
    if args.has("access-log") {
        cfg.access_log_every = 1;
    }
    cfg.access_log_every = u64::try_from(args.num(
        "access-log-every",
        usize::try_from(cfg.access_log_every).unwrap_or(0),
    )?)
    .unwrap_or(u64::MAX);
    cfg.shards = args.num("shards", cfg.shards)?;
    if let Some(mode) = args.flag("shard-mode") {
        cfg.shard_mode = goalrec_server::PartitionMode::parse(mode)
            .ok_or_else(|| format!("--shard-mode expects 'hash' or 'balanced', got '{mode}'"))?;
    }
    cfg.admin_deadline = Duration::from_millis(
        u64::try_from(args.num("admin-deadline-ms", 10_000)?).unwrap_or(u64::MAX),
    );
    cfg.append_max_entries = args.num("append-max-entries", cfg.append_max_entries)?;
    cfg.watch = args.has("watch");
    cfg.compact_threshold = args.num("compact-threshold", cfg.compact_threshold)?;
    cfg.compact_max_age = Duration::from_millis(
        u64::try_from(args.num("compact-max-age-ms", 60_000)?).unwrap_or(u64::MAX),
    );
    // SIGHUP and path-less admin reloads re-read the same file.
    cfg.library_path = args.required("library").ok().map(std::path::PathBuf::from);
    goalrec_server::run_blocking(lib, cfg).map_err(|e| e.to_string())
}

fn demo() -> CmdResult {
    let mut b = LibraryBuilder::new();
    b.add_impl("olivier salad", ["potatoes", "carrots", "pickles"])
        .map_err(|e| e.to_string())?;
    b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
        .map_err(|e| e.to_string())?;
    b.add_impl("pan-fried carrots", ["carrots", "nutmeg"])
        .map_err(|e| e.to_string())?;
    let lib = b.build().map_err(|e| e.to_string())?;
    let cart = Activity::from_actions([
        lib.action_id("potatoes").expect("known"),
        lib.action_id("carrots").expect("known"),
    ]);
    let model = GoalModel::build(&lib).map_err(|e| e.to_string())?;
    let rec = GoalRecommender::from_library(&lib, Box::new(goalrec_core::Breadth))
        .map_err(|e| e.to_string())?;
    println!("cart: potatoes, carrots\n");
    for s in rec.recommend(&cart, 3) {
        println!(
            "recommend {} (score {})",
            lib.action_name(s.action),
            s.score
        );
        let ex = explain(&model, &cart, s.action, 2);
        for j in &ex.justifications {
            println!(
                "  advances '{}' {:.0}% → {:.0}%",
                lib.goal_name(j.goal),
                j.completeness_before * 100.0,
                j.completeness_after * 100.0
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(parts: &[&str]) -> CmdResult {
        dispatch(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("goalrec-cli-tests");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn demo_runs() {
        run(&["demo"]).unwrap();
    }

    #[test]
    fn unknown_command_and_usage() {
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn generate_then_stats_roundtrip() {
        let lib_path = tmpdir().join("ft.jsonl");
        // Generate a library jsonl via the datasets crate directly, then
        // run stats on it through the CLI path.
        let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
        dsio::write_library_jsonl(&ft.library, &lib_path).unwrap();
        run(&["stats", "--library", lib_path.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn stats_json_and_metrics_modes() {
        let lib_path = tmpdir().join("ft-stats.jsonl");
        let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
        dsio::write_library_jsonl(&ft.library, &lib_path).unwrap();
        let p = lib_path.to_str().unwrap();
        run(&["stats", "--library", p, "--json"]).unwrap();
        run(&["stats", "--library", p, "--metrics"]).unwrap();
        run(&["stats", "--library", p, "--json", "--metrics"]).unwrap();
        // --metrics compiles the model, so the build spans must be live.
        let report = goalrec_obs::snapshot();
        for span in [
            goalrec_obs::names::MODEL_BUILD_A_IDX,
            goalrec_obs::names::MODEL_BUILD_G_IDX,
            goalrec_obs::names::MODEL_BUILD_GI_A_IDX,
            goalrec_obs::names::MODEL_BUILD_GI_G_IDX,
            goalrec_obs::names::MODEL_BUILD_A_GI_IDX,
        ] {
            assert!(
                report.histogram(span).is_some_and(|h| h.count >= 1),
                "span {span} not recorded by stats --metrics"
            );
        }
    }

    #[test]
    fn generate_dataset_json() {
        let out = tmpdir().join("fm.json");
        run(&[
            "generate",
            "foodmart",
            "--scale",
            "test",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.exists());
        assert!(run(&["generate", "nonsense", "--out", "x"]).is_err());
        assert!(run(&["generate", "foodmart"]).is_err()); // missing --out
    }

    #[test]
    fn convert_roundtrips_between_formats() {
        let dir = tmpdir();
        let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
        let jsonl = dir.join("conv.jsonl");
        dsio::write_library_jsonl(&ft.library, &jsonl).unwrap();
        let grlb = dir.join("conv.grlb");
        run(&[
            "convert",
            "--library",
            jsonl.to_str().unwrap(),
            "--out",
            grlb.to_str().unwrap(),
        ])
        .unwrap();
        // Stats and recommend work on the binary file directly.
        run(&["stats", "--library", grlb.to_str().unwrap()]).unwrap();
        run(&[
            "recommend",
            "--library",
            grlb.to_str().unwrap(),
            "--activity",
            "0",
        ])
        .unwrap();
    }

    #[test]
    fn compile_writes_a_servable_v2_model_and_shard_family() {
        let dir = tmpdir();
        let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
        let jsonl = dir.join("compile-src.jsonl");
        dsio::write_library_jsonl(&ft.library, &jsonl).unwrap();
        let model = dir.join("compiled.grlb2");
        run(&[
            "compile",
            "--library",
            jsonl.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--shards",
            "2",
        ])
        .unwrap();
        assert!(model.exists());
        assert!(dir.join("compiled.shard0.grlb2").exists());
        assert!(dir.join("compiled.shard1.grlb2").exists());
        // The model file round-trips through every read-side command.
        run(&["stats", "--library", model.to_str().unwrap()]).unwrap();
        run(&[
            "recommend",
            "--library",
            model.to_str().unwrap(),
            "--activity",
            "0",
        ])
        .unwrap();
        // Guard rails: compile insists on .grlb2, convert refuses it.
        assert!(run(&[
            "compile",
            "--library",
            jsonl.to_str().unwrap(),
            "--out",
            dir.join("nope.grlb").to_str().unwrap(),
        ])
        .is_err());
        assert!(run(&[
            "convert",
            "--library",
            jsonl.to_str().unwrap(),
            "--out",
            dir.join("nope.grlb2").to_str().unwrap(),
        ])
        .is_err());
    }

    #[test]
    fn synth_extract_recommend_full_pipeline() {
        let dir = tmpdir();
        let stories = dir.join("synth-stories.json");
        run(&[
            "synth",
            "--out",
            stories.to_str().unwrap(),
            "--stories",
            "30",
        ])
        .unwrap();
        let lib = dir.join("synth-lib.jsonl");
        run(&[
            "extract",
            "--stories",
            stories.to_str().unwrap(),
            "--out",
            lib.to_str().unwrap(),
        ])
        .unwrap();
        run(&[
            "recommend",
            "--library",
            lib.to_str().unwrap(),
            "--activity",
            "0",
            "--strategy",
            "focus-cmp",
            "--explain",
        ])
        .unwrap();
    }

    #[test]
    fn extract_then_recommend_with_explanations() {
        let dir = tmpdir();
        let stories = dir.join("stories.json");
        std::fs::write(
            &stories,
            serde_json::json!([
                {"goal": "lose weight", "text": "1. join a gym\n2. drink more water"},
                {"goal": "get fit", "text": "I joined a gym. I lifted weights."}
            ])
            .to_string(),
        )
        .unwrap();
        let lib = dir.join("extracted.jsonl");
        run(&[
            "extract",
            "--stories",
            stories.to_str().unwrap(),
            "--out",
            lib.to_str().unwrap(),
        ])
        .unwrap();
        // Action a0 = "join gym" (first interned).
        run(&[
            "recommend",
            "--library",
            lib.to_str().unwrap(),
            "--activity",
            "0",
            "--k",
            "5",
            "--explain",
        ])
        .unwrap();
        // Unknown strategy is rejected.
        assert!(run(&[
            "recommend",
            "--library",
            lib.to_str().unwrap(),
            "--activity",
            "0",
            "--strategy",
            "voodoo",
        ])
        .is_err());
    }
}
