//! `goalrec` — command-line front end for the goal-based recommender.
//!
//! ```text
//! goalrec generate  foodmart|fortythree [--scale test|paper] --out FILE
//! goalrec extract   --stories FILE.json --out FILE.jsonl
//! goalrec stats     --library FILE.jsonl [--actions N] [--goals N]
//! goalrec recommend --library FILE.jsonl --activity a1,a2,…
//!                   [--strategy breadth|best-match|focus-cmp|focus-cl]
//!                   [-k N] [--explain]
//! goalrec demo
//! ```
//!
//! Libraries are exchanged as JSON-lines (`io::write_library_jsonl`);
//! stories as a JSON array of `{"goal": …, "text": …}` objects.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match commands::dispatch(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}
