//! User activity `H` — the set of actions the user has already performed.

use crate::ids::ActionId;
use crate::setops;
use serde::{Deserialize, Serialize};

/// A user activity: a strictly increasing, duplicate-free set of action ids.
///
/// The recommendation setting (§3) treats the activity as a *set*: repeated
/// performances of the same action carry no extra weight in any of the
/// paper's strategies, so duplicates are collapsed at construction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity(Vec<u32>);

impl Activity {
    /// Creates an empty activity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an activity from any iterator of actions; sorts and dedups.
    pub fn from_actions<I: IntoIterator<Item = ActionId>>(actions: I) -> Self {
        let mut v: Vec<u32> = actions.into_iter().map(ActionId::raw).collect();
        setops::normalize(&mut v);
        Self(v)
    }

    /// Builds an activity from raw ids; sorts and dedups.
    pub fn from_raw<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        // goalrec-lint:allow(hot-path-alloc): request decode owns its activity buffer — one Vec per request
        let mut v: Vec<u32> = ids.into_iter().collect();
        setops::normalize(&mut v);
        Self(v)
    }

    /// The sorted raw id slice — the representation all strategies consume.
    #[inline]
    pub fn raw(&self) -> &[u32] {
        &self.0
    }

    /// Iterates the actions in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ActionId> + '_ {
        self.0.iter().copied().map(ActionId::new)
    }

    /// Number of distinct actions performed.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the user has performed no action.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, a: ActionId) -> bool {
        setops::contains(&self.0, a.raw())
    }

    /// Adds an action, keeping the set representation.
    pub fn insert(&mut self, a: ActionId) -> bool {
        match self.0.binary_search(&a.raw()) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, a.raw());
                true
            }
        }
    }

    /// Returns a new activity extended with `extra` actions — models the
    /// user *following* a recommendation list, which is how the usefulness
    /// experiment (§6.1.1 C.1.3) measures post-recommendation completeness.
    pub fn extended<I: IntoIterator<Item = ActionId>>(&self, extra: I) -> Self {
        let extra_ids: Vec<u32> = extra.into_iter().map(ActionId::raw).collect();
        let mut sorted = extra_ids;
        setops::normalize(&mut sorted);
        Self(setops::union(&self.0, &sorted))
    }
}

impl FromIterator<ActionId> for Activity {
    fn from_iter<I: IntoIterator<Item = ActionId>>(iter: I) -> Self {
        Self::from_actions(iter)
    }
}

impl From<Vec<u32>> for Activity {
    fn from(v: Vec<u32>) -> Self {
        Self::from_raw(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_normalises() {
        let h = Activity::from_raw([3, 1, 3, 2]);
        assert_eq!(h.raw(), &[1, 2, 3]);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_activity() {
        let h = Activity::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert!(!h.contains(ActionId::new(0)));
    }

    #[test]
    fn contains_and_insert() {
        let mut h = Activity::from_raw([1, 5]);
        assert!(h.contains(ActionId::new(5)));
        assert!(!h.contains(ActionId::new(3)));
        assert!(h.insert(ActionId::new(3)));
        assert!(!h.insert(ActionId::new(3)));
        assert_eq!(h.raw(), &[1, 3, 5]);
    }

    #[test]
    fn extended_unions_without_mutation() {
        let h = Activity::from_raw([1, 2]);
        let h2 = h.extended([ActionId::new(2), ActionId::new(9), ActionId::new(0)]);
        assert_eq!(h.raw(), &[1, 2]);
        assert_eq!(h2.raw(), &[0, 1, 2, 9]);
    }

    #[test]
    fn iter_yields_action_ids_in_order() {
        let h = Activity::from_raw([4, 2]);
        let v: Vec<ActionId> = h.iter().collect();
        assert_eq!(v, vec![ActionId::new(2), ActionId::new(4)]);
    }

    #[test]
    fn from_iterator_and_from_vec() {
        let h: Activity = vec![ActionId::new(2), ActionId::new(1)]
            .into_iter()
            .collect();
        assert_eq!(h.raw(), &[1, 2]);
        let h2: Activity = vec![7u32, 7, 0].into();
        assert_eq!(h2.raw(), &[0, 7]);
    }

    proptest! {
        #[test]
        fn prop_always_strictly_sorted(v in proptest::collection::vec(0u32..1000, 0..100)) {
            let h = Activity::from_raw(v);
            prop_assert!(crate::setops::is_strictly_sorted(h.raw()));
        }

        #[test]
        fn prop_insert_then_contains(v in proptest::collection::vec(0u32..1000, 0..50), x in 0u32..1000) {
            let mut h = Activity::from_raw(v);
            h.insert(ActionId::new(x));
            prop_assert!(h.contains(ActionId::new(x)));
            prop_assert!(crate::setops::is_strictly_sorted(h.raw()));
        }
    }
}
