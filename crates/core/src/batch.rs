//! Data-parallel batch recommendation.
//!
//! The paper's evaluation issues one recommendation request per input
//! activity — 20.5k carts for FoodMart and 8k user activities for 43Things,
//! for each of seven methods. [`recommend_batch`] fans those requests out
//! with rayon; the per-request algorithms stay single-threaded, matching
//! the per-request timings of Fig. 7.
//!
//! Each rayon worker thread reuses its own [`crate::Scratch`] arena via
//! the thread-local in [`crate::scratch::with_thread_scratch`] — the goal
//! recommenders route `recommend` through it — so a batch run performs no
//! per-request scoreboard/buffer allocations after each worker's first
//! request.

use crate::activity::Activity;
use crate::recommend::Recommender;
use crate::topk::Scored;
use goalrec_obs::{self as obs, names};
use rayon::prelude::*;
use std::sync::Arc;

/// Observes one batch run: request count, per-request latency recorded
/// from inside the rayon workers, the method's batch wall clock
/// (`batch.<method>.wall` — the per-method wall time the evaluation
/// drivers report), and the resulting throughput gauge.
fn observed_batch<T, F: Fn(&Activity) -> T + Sync>(
    method: &str,
    activities: &[Activity],
    per_request: F,
) -> Vec<T>
where
    T: Send,
{
    obs::counter(names::BATCH_REQUESTS).inc_by(activities.len() as u64);
    let latency = obs::histogram_ns(names::BATCH_LATENCY);
    let wall =
        obs::Timer::into_histogram(obs::global().histogram_ns(&names::batch_method_wall(method)));
    let out: Vec<T> = activities
        .par_iter()
        .map(|h| {
            let span = obs::Timer::into_histogram(Arc::clone(&latency));
            let result = per_request(h);
            drop(span);
            result
        })
        .collect();
    let elapsed = wall.stop().as_secs_f64();
    if elapsed > 0.0 {
        obs::gauge(names::BATCH_THROUGHPUT_RPS).set(activities.len() as f64 / elapsed);
    }
    out
}

/// Runs `recommender` over every activity, preserving input order.
pub fn recommend_batch<R: Recommender + ?Sized>(
    recommender: &R,
    activities: &[Activity],
    k: usize,
) -> Vec<Vec<Scored>> {
    observed_batch(&recommender.name(), activities, |h| {
        recommender.recommend(h, k)
    })
}

/// Like [`recommend_batch`] but keeps only the action ids — the shape most
/// experiments consume.
pub fn recommend_batch_actions<R: Recommender + ?Sized>(
    recommender: &R,
    activities: &[Activity],
    k: usize,
) -> Vec<Vec<crate::ids::ActionId>> {
    observed_batch(&recommender.name(), activities, |h| {
        recommender.recommend_actions(h, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;
    use crate::recommend::GoalRecommender;
    use crate::strategies::Breadth;

    fn recommender() -> GoalRecommender {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g2", ["a2", "a3"]).unwrap();
        b.add_impl("g3", ["a1", "a3", "a4"]).unwrap();
        GoalRecommender::from_library(&b.build().unwrap(), Box::new(Breadth)).unwrap()
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let rec = recommender();
        let activities: Vec<Activity> = (0..40).map(|i| Activity::from_raw([i % 4])).collect();
        let batched = recommend_batch(&rec, &activities, 3);
        assert_eq!(batched.len(), activities.len());
        for (h, got) in activities.iter().zip(&batched) {
            assert_eq!(got, &rec.recommend(h, 3));
        }
    }

    #[test]
    fn batch_actions_strips_scores() {
        let rec = recommender();
        let activities = vec![Activity::from_raw([0]), Activity::from_raw([1])];
        let ids = recommend_batch_actions(&rec, &activities, 2);
        let full = recommend_batch(&rec, &activities, 2);
        for (a, b) in ids.iter().zip(&full) {
            assert_eq!(a, &b.iter().map(|s| s.action).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_batch() {
        let rec = recommender();
        assert!(recommend_batch(&rec, &[], 3).is_empty());
    }
}
