//! Compressed-sparse-row (CSR) posting-list storage and its parallel
//! counting-sort builders.
//!
//! The compiled model (§4) is a set of posting-list indexes. Storing every
//! posting list as its own boxed slice costs one heap allocation per
//! implementation/goal/action and scatters the lists across the heap; a CSR
//! layout packs each index into exactly two flat arrays — `offsets`
//! (`rows + 1` entries) and `data` (all postings concatenated) — so walking
//! `IS(H)` streams contiguous memory and the whole model is six allocations.
//!
//! Row `i` is `data[offsets[i] .. offsets[i + 1]]`, always a strictly
//! increasing `u32` sequence, so the set algebra of [`crate::setops`]
//! applies to rows directly.
//!
//! The inverted indexes (`goal → impls`, `action → impls`) are built with a
//! two-phase parallel counting sort: the item range is split into contiguous
//! partitions, each partition counts its per-row postings independently
//! ([`invert_count`]), a serial prefix sum turns the per-partition counts
//! into disjoint write cursors, and each partition then fills its slots
//! without synchronisation ([`invert_fill`]). Because partitions cover
//! increasing item ranges and each partition visits items in order, the
//! output is identical to the sequential counting sort: every row lists its
//! items in strictly increasing order.

use rayon::prelude::*;
use std::any::Any;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, PoisonError};

/// `Cow`-like backing for one flat `u32` model array: either an owned heap
/// allocation or a borrowed view into an externally retained buffer
/// (typically an `mmap`'d GRLB v2 model file).
///
/// The mapped variant pairs the slice with an opaque *keepalive* handle;
/// the slice stays valid exactly as long as at least one clone of that
/// handle is alive, and the last clone to drop releases the buffer (for a
/// mapping, that is the `munmap` — the unmap-after-last-snapshot rule).
/// Core never learns what the handle is, so the mapping machinery lives
/// entirely in the IO crate.
///
/// Both variants deref to `&[u32]`, so every index accessor works
/// identically over owned and mapped models. Mutable access copies a
/// mapped backing to the heap first (`DerefMut` is the write fence), which
/// keeps in-place corruption tests and repair tooling working without ever
/// writing through a shared mapping.
pub enum CsrBacking {
    /// A heap-owned array — what builders and readers-into-heap produce.
    Owned(Box<[u32]>),
    /// A borrowed view into a retained buffer (e.g. a file mapping).
    Mapped {
        /// The array, viewed in place. The `'static` lifetime is nominal:
        /// validity is tied to `keepalive`, which every clone shares.
        slice: &'static [u32],
        /// Opaque handle whose last drop releases the underlying buffer.
        keepalive: Arc<dyn Any + Send + Sync>,
    },
}

impl CsrBacking {
    /// Borrows `slice` as a backing, tying its validity to `keepalive`.
    ///
    /// # Safety
    ///
    /// `slice` must remain valid (readable, unchanging) for as long as any
    /// clone of `keepalive` is alive. The caller upholds this by deriving
    /// the slice from the buffer that `keepalive` owns.
    pub unsafe fn mapped(slice: &'static [u32], keepalive: Arc<dyn Any + Send + Sync>) -> Self {
        CsrBacking::Mapped { slice, keepalive }
    }

    /// Whether this backing borrows a retained buffer (vs owning heap).
    pub fn is_mapped(&self) -> bool {
        matches!(self, CsrBacking::Mapped { .. })
    }
}

impl Deref for CsrBacking {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        match self {
            CsrBacking::Owned(b) => b,
            CsrBacking::Mapped { slice, .. } => slice,
        }
    }
}

impl DerefMut for CsrBacking {
    /// Copy-on-write: mutable access to a mapped backing first copies the
    /// array to the heap, dropping this handle's share of the keepalive.
    fn deref_mut(&mut self) -> &mut [u32] {
        if let CsrBacking::Mapped { slice, .. } = *self {
            *self = CsrBacking::Owned(slice.into());
        }
        match self {
            CsrBacking::Owned(b) => b,
            // goalrec-lint:allow(no-panic-paths): the arm above just replaced Mapped with Owned; this arm is statically unreachable
            CsrBacking::Mapped { .. } => unreachable!("mapped backing survived copy-on-write"),
        }
    }
}

impl Clone for CsrBacking {
    /// Owned backings deep-copy; mapped backings stay shared views (the
    /// keepalive `Arc` clone is what extends the buffer's lifetime).
    // goalrec-lint:allow(hot-path-alloc): serving shares one Arc<GoalModel>; backings are only cloned by reload/compaction, never per request
    fn clone(&self) -> Self {
        match self {
            CsrBacking::Owned(b) => CsrBacking::Owned(b.clone()),
            CsrBacking::Mapped { slice, keepalive } => CsrBacking::Mapped {
                slice,
                keepalive: Arc::clone(keepalive),
            },
        }
    }
}

impl std::fmt::Debug for CsrBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = if self.is_mapped() { "Mapped" } else { "Owned" };
        write!(f, "CsrBacking::{tag}(len {})", self.len())
    }
}

impl PartialEq for CsrBacking {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for CsrBacking {}

impl From<Vec<u32>> for CsrBacking {
    fn from(v: Vec<u32>) -> Self {
        CsrBacking::Owned(v.into_boxed_slice())
    }
}

impl From<Box<[u32]>> for CsrBacking {
    fn from(b: Box<[u32]>) -> Self {
        CsrBacking::Owned(b)
    }
}

/// A CSR matrix of `u32` postings. Fields are `pub(crate)` so the model's
/// corruption tests can damage the arrays directly (copy-on-write for
/// mapped backings, see [`CsrBacking`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Csr {
    /// `rows + 1` monotone offsets into `data`; first is 0, last is
    /// `data.len()`.
    pub(crate) offsets: CsrBacking,
    /// All postings, row by row.
    pub(crate) data: CsrBacking,
}

impl Csr {
    /// Wraps pre-built arrays without checking invariants; callers are
    /// responsible for shape validation (see [`Csr::check_shape`]).
    pub(crate) fn from_parts(offsets: Vec<u32>, data: Vec<u32>) -> Self {
        Self {
            offsets: offsets.into(),
            data: data.into(),
        }
    }

    /// Wraps two pre-built backings (owned or mapped) without checking
    /// invariants; callers run [`Csr::check_shape`] plus content checks.
    pub(crate) fn from_backings(offsets: CsrBacking, data: CsrBacking) -> Self {
        Self { offsets, data }
    }

    /// Whether either flat array borrows a retained buffer.
    pub(crate) fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() || self.data.is_mapped()
    }

    /// Number of rows.
    #[inline]
    pub(crate) fn rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Row `i` as a slice.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.data[lo..hi]
    }

    /// Length of row `i` without touching `data`.
    #[inline]
    pub(crate) fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Heap footprint of the two flat arrays in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.data.len()) * std::mem::size_of::<u32>()
    }

    /// Checks the CSR structural invariants: `rows + 1` offsets, first 0,
    /// monotone non-decreasing, last equal to `data.len()`. Row *contents*
    /// (sortedness, ranges) are the caller's domain.
    pub(crate) fn check_shape(&self, rows: usize, name: &str) -> Result<(), String> {
        if self.offsets.len() != rows + 1 {
            return Err(format!(
                "{name}: {} offsets for {rows} rows (want rows + 1)",
                self.offsets.len()
            ));
        }
        if self.offsets.first() != Some(&0) {
            return Err(format!("{name}: first offset is not 0"));
        }
        if let Some(w) = self.offsets.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!(
                "{name}: offsets not monotone ({} > {})",
                w[0], w[1]
            ));
        }
        if self.offsets.last().copied() != Some(self.data.len() as u32) {
            return Err(format!(
                "{name}: last offset {:?} != data length {}",
                self.offsets.last(),
                self.data.len()
            ));
        }
        Ok(())
    }
}

/// Number of contiguous item partitions the counting-sort phases use.
///
/// One partition per available core, but never so many that a partition
/// drops below a few thousand items — below that the per-partition count
/// arrays cost more than the parallelism wins. `GOALREC_BUILD_SERIAL=1`
/// forces a single partition (the sequential baseline the perf bench
/// reports as "before"); `GOALREC_BUILD_PARTITIONS=N` pins an exact
/// count, so tests exercise the multi-partition merge even on one core.
fn partitions(num_items: usize) -> usize {
    const MIN_ITEMS_PER_PART: usize = 4096;
    if let Some(forced) = std::env::var_os("GOALREC_BUILD_PARTITIONS") {
        if let Some(n) = forced.to_str().and_then(|s| s.parse::<usize>().ok()) {
            return n.clamp(1, num_items.max(1));
        }
    }
    if std::env::var_os("GOALREC_BUILD_SERIAL").is_some() {
        return 1;
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    threads.min(num_items / MIN_ITEMS_PER_PART).max(1)
}

/// The counting phase of the parallel counting sort: per-partition,
/// per-row posting counts, ready for [`invert_fill`].
///
/// `keys_of(item, emit)` must call `emit(row)` once per posting of `item`,
/// with `row < num_rows`, and must be deterministic — the fill phase
/// replays it.
pub(crate) struct InvertPlan {
    num_rows: usize,
    /// Contiguous `[start, end)` item ranges, one per partition.
    bounds: Vec<(usize, usize)>,
    /// `part_counts[p][row]`: postings partition `p` contributes to `row`.
    part_counts: Vec<Vec<u32>>,
}

/// Runs the counting phase over `num_items` items split into partitions.
pub(crate) fn invert_count<F>(num_rows: usize, num_items: usize, keys_of: F) -> InvertPlan
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let parts = partitions(num_items);
    let bounds: Vec<(usize, usize)> = (0..parts)
        .map(|p| (p * num_items / parts, (p + 1) * num_items / parts))
        .collect();
    let part_counts: Vec<Vec<u32>> = bounds
        .par_iter()
        .map(|&(lo, hi)| {
            let mut counts = vec![0u32; num_rows];
            for item in lo..hi {
                keys_of(item, &mut |row| counts[row as usize] += 1);
            }
            counts
        })
        .collect();
    InvertPlan {
        num_rows,
        bounds,
        part_counts,
    }
}

/// Shared write target for the disjoint partition fills.
struct SyncPtr(*mut u32);
// SAFETY: every partition writes through cursors that start at disjoint
// exclusive prefix-sum positions and advance by exactly the partition's own
// counted postings, so no two threads ever touch the same index.
unsafe impl Sync for SyncPtr {}

/// The fill phase: materialises the inverted CSR index from a counting
/// plan. Each row lists the item ids that emitted it, in increasing order
/// (partitions cover increasing item ranges and write behind disjoint
/// cursors).
pub(crate) fn invert_fill<F>(plan: &InvertPlan, keys_of: F) -> Csr
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let num_rows = plan.num_rows;
    // Serial prefix sums: total per-row counts -> global offsets, and
    // per-partition starting cursors (each partition starts where the
    // previous partitions' contributions to that row end).
    let mut running = vec![0u32; num_rows];
    let mut cursors: Vec<Vec<u32>> = Vec::with_capacity(plan.part_counts.len());
    for pc in &plan.part_counts {
        cursors.push(running.clone());
        for (r, c) in running.iter_mut().zip(pc) {
            *r += c;
        }
    }
    let mut offsets = vec![0u32; num_rows + 1];
    let mut acc = 0u32;
    for (o, &c) in offsets.iter_mut().zip(&running) {
        *o = acc;
        acc += c;
    }
    offsets[num_rows] = acc;
    for cur in &mut cursors {
        for (c, &o) in cur.iter_mut().zip(&offsets[..num_rows]) {
            *c += o;
        }
    }

    let mut data = vec![0u32; acc as usize];
    let ptr = SyncPtr(data.as_mut_ptr());
    let ptr = &ptr;
    // The cursor arrays are per-partition mutable state; the Mutex is
    // locked exactly once per partition, so it costs nothing on the fill
    // itself.
    let cursor_cells: Vec<Mutex<Vec<u32>>> = cursors.into_iter().map(Mutex::new).collect();
    (0..plan.bounds.len()).into_par_iter().for_each(|pi| {
        let (lo, hi) = plan.bounds[pi];
        let mut cur = cursor_cells[pi]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for item in lo..hi {
            keys_of(item, &mut |row| {
                let slot = cur[row as usize];
                // SAFETY: `slot` lies in this partition's exclusive
                // [cursor start, start + own count) range for `row`; see
                // the SyncPtr invariant above.
                unsafe {
                    *ptr.0.add(slot as usize) = item as u32;
                }
                cur[row as usize] = slot + 1;
            });
        }
    });
    Csr::from_parts(offsets, data)
}

/// Builds the *forward* CSR (row `i` = the postings of item `i`) by
/// concatenating per-item slices — offsets by a serial prefix sum over the
/// lengths, data filled by a parallel partitioned copy.
pub(crate) fn concat<'a, F>(num_items: usize, row_of: F) -> Csr
where
    F: Fn(usize) -> &'a [u32] + Sync,
{
    let mut offsets = vec![0u32; num_items + 1];
    let mut acc = 0u32;
    for (i, off) in offsets.iter_mut().enumerate().take(num_items) {
        *off = acc;
        acc += row_of(i).len() as u32;
    }
    offsets[num_items] = acc;

    let mut data = vec![0u32; acc as usize];
    let ptr = SyncPtr(data.as_mut_ptr());
    let ptr = &ptr;
    let offsets_ref = &offsets;
    let parts = partitions(num_items);
    let bounds: Vec<(usize, usize)> = (0..parts)
        .map(|p| (p * num_items / parts, (p + 1) * num_items / parts))
        .collect();
    bounds.par_iter().for_each(|&(lo, hi)| {
        for (i, &off) in offsets_ref.iter().enumerate().take(hi).skip(lo) {
            let src = row_of(i);
            // SAFETY: item `i`'s destination [offsets[i], offsets[i+1]) is
            // disjoint from every other item's range by construction.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), ptr.0.add(off as usize), src.len());
            }
        }
    });
    Csr::from_parts(offsets, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential reference: invert `items` (item -> key list) into
    /// row -> sorted item ids.
    fn invert_naive(num_rows: usize, items: &[Vec<u32>]) -> Vec<Vec<u32>> {
        let mut rows = vec![Vec::new(); num_rows];
        for (i, keys) in items.iter().enumerate() {
            for &k in keys {
                rows[k as usize].push(i as u32);
            }
        }
        rows
    }

    fn invert_csr(num_rows: usize, items: &[Vec<u32>]) -> Csr {
        let plan = invert_count(num_rows, items.len(), |i, emit| {
            for &k in &items[i] {
                emit(k);
            }
        });
        invert_fill(&plan, |i, emit| {
            for &k in &items[i] {
                emit(k);
            }
        })
    }

    #[test]
    fn invert_small_matches_naive() {
        let items = vec![vec![0, 2], vec![1], vec![0, 1, 2], vec![2]];
        let csr = invert_csr(3, &items);
        let naive = invert_naive(3, &items);
        assert_eq!(csr.rows(), 3);
        for (r, want) in naive.iter().enumerate() {
            assert_eq!(csr.row(r), &want[..], "row {r}");
            assert_eq!(csr.row_len(r), want.len());
        }
        assert!(csr.check_shape(3, "t").is_ok());
    }

    #[test]
    fn invert_large_parallel_matches_naive() {
        // Enough items to cross the partition threshold on any machine.
        let num_rows = 97;
        let items: Vec<Vec<u32>> = (0..40_000u32)
            .map(|i| {
                // Deterministic pseudo-random key lists, varying lengths.
                let n = (i % 4) + 1;
                let mut keys: Vec<u32> = (0..n)
                    .map(|j| (i.wrapping_mul(31).wrapping_add(j * 7)) % 97)
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            })
            .collect();
        let csr = invert_csr(num_rows, &items);
        let naive = invert_naive(num_rows, &items);
        for (r, want) in naive.iter().enumerate() {
            assert_eq!(csr.row(r), &want[..], "row {r}");
            // Rows of an inverted index built in item order are strictly
            // increasing.
            assert!(csr.row(r).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn invert_empty_rows_and_items() {
        let items: Vec<Vec<u32>> = vec![vec![4], vec![4]];
        let csr = invert_csr(6, &items);
        assert_eq!(csr.row(4), &[0, 1]);
        for r in [0, 1, 2, 3, 5] {
            assert!(csr.row(r).is_empty());
        }
    }

    #[test]
    fn concat_round_trips_rows() {
        let rows: Vec<Vec<u32>> = vec![vec![5, 9], vec![], vec![1, 2, 3], vec![7]];
        let csr = concat(rows.len(), |i| &rows[i][..]);
        assert_eq!(csr.rows(), 4);
        for (i, want) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), &want[..]);
        }
        assert_eq!(csr.data.len(), 6);
    }

    #[test]
    fn concat_large_parallel() {
        let rows: Vec<Vec<u32>> = (0..30_000u32).map(|i| vec![i, i + 1, i + 2]).collect();
        let csr = concat(rows.len(), |i| &rows[i][..]);
        for (i, want) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), &want[..]);
        }
    }

    #[test]
    fn shape_violations_are_reported() {
        let ok = Csr::from_parts(vec![0, 2, 3], vec![1, 2, 9]);
        assert!(ok.check_shape(2, "t").is_ok());
        assert!(ok.check_shape(3, "t").is_err()); // row-count mismatch

        let bad_first = Csr::from_parts(vec![1, 2, 3], vec![1, 2, 9]);
        assert!(bad_first.check_shape(2, "t").is_err());

        let non_monotone = Csr::from_parts(vec![0, 3, 2], vec![1, 2]);
        assert!(non_monotone.check_shape(2, "t").is_err());

        let bad_last = Csr::from_parts(vec![0, 2, 2], vec![1, 2, 9]);
        assert!(bad_last.check_shape(2, "t").is_err());
    }

    #[test]
    fn serial_env_forces_one_partition() {
        // partitions() itself is private; exercise the public effect: a
        // build under the env var must equal the parallel build.
        std::env::set_var("GOALREC_BUILD_SERIAL", "1");
        let items: Vec<Vec<u32>> = (0..10_000u32).map(|i| vec![i % 13]).collect();
        let serial = invert_csr(13, &items);
        std::env::remove_var("GOALREC_BUILD_SERIAL");
        let parallel = invert_csr(13, &items);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn forced_partition_counts_agree_with_serial() {
        // Single-core machines never pick more than one partition on
        // their own; pin the count so the multi-partition merge (disjoint
        // prefix-sum cursors, increasing item ranges) is exercised
        // everywhere. Uneven counts include partitions smaller than a
        // row's posting list and a partition count that doesn't divide
        // the item count.
        let items: Vec<Vec<u32>> = (0..5_000u32)
            .map(|i| {
                let n = (i % 3) + 1;
                let mut keys: Vec<u32> = (0..n).map(|j| (i * 17 + j * 5) % 23).collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            })
            .collect();
        std::env::set_var("GOALREC_BUILD_SERIAL", "1");
        let serial = invert_csr(23, &items);
        let serial_cat = concat(items.len(), |i| &items[i][..]);
        std::env::remove_var("GOALREC_BUILD_SERIAL");
        for forced in ["2", "3", "7", "64"] {
            std::env::set_var("GOALREC_BUILD_PARTITIONS", forced);
            assert_eq!(invert_csr(23, &items), serial, "{forced} partitions");
            assert_eq!(
                concat(items.len(), |i| &items[i][..]),
                serial_cat,
                "{forced} partitions (concat)"
            );
            std::env::remove_var("GOALREC_BUILD_PARTITIONS");
        }
    }
}
