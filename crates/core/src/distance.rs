//! Vector distances for the Best Match strategy (§5.3, Eq. 10).
//!
//! The paper ranks candidate actions by `dist(H⃗, a⃗)` with a "standard
//! metric"; the metric is pluggable here. Cosine distance is the default
//! because the profile magnitudes of user and candidate vectors differ by
//! construction (the profile aggregates every action in `H`), and the
//! ablation experiment compares all three.

use serde::{Deserialize, Serialize};

/// Supported distance metrics between sparse goal-space vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// `1 − cos(u, v)`: scale-invariant; the default.
    #[default]
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
}

impl DistanceMetric {
    /// Distance between two dense vectors of equal length.
    ///
    /// Both vectors live in the feature space `F_GS(H)` (one coordinate per
    /// goal in the user's goal space), so equal length is an invariant of
    /// the caller; debug builds assert it.
    pub fn distance(self, u: &[f64], v: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), v.len());
        match self {
            DistanceMetric::Cosine => cosine_distance(u, v),
            DistanceMetric::Euclidean => u
                .iter()
                .zip(v)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
            DistanceMetric::Manhattan => u.iter().zip(v).map(|(a, b)| (a - b).abs()).sum(),
        }
    }

    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DistanceMetric::Cosine => "cosine",
            DistanceMetric::Euclidean => "euclidean",
            DistanceMetric::Manhattan => "manhattan",
        }
    }

    /// All metrics, for ablation sweeps.
    pub const ALL: [DistanceMetric; 3] = [
        DistanceMetric::Cosine,
        DistanceMetric::Euclidean,
        DistanceMetric::Manhattan,
    ];
}

fn cosine_distance(u: &[f64], v: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut nu = 0.0;
    let mut nv = 0.0;
    for (a, b) in u.iter().zip(v) {
        dot += a * b;
        nu += a * a;
        nv += b * b;
    }
    if nu == 0.0 || nv == 0.0 {
        // A zero vector has no direction; treat it as maximally distant so
        // candidates contributing to no user goal rank last.
        return 1.0;
    }
    // Clamp for floating-point drift so the distance is always in [0, 1]
    // for the non-negative count vectors used here.
    1.0 - (dot / (nu.sqrt() * nv.sqrt())).clamp(-1.0, 1.0)
}

/// Cosine similarity between two dense vectors; used by the content-based
/// baseline and the pairwise-similarity experiment (Table 5).
pub fn cosine_similarity(u: &[f64], v: &[f64]) -> f64 {
    1.0 - cosine_distance(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cosine_identical_direction_is_zero() {
        assert!(DistanceMetric::Cosine.distance(&[1.0, 2.0], &[2.0, 4.0]) < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        assert!((DistanceMetric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_max_distance() {
        assert_eq!(
            DistanceMetric::Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]),
            1.0
        );
        assert_eq!(
            DistanceMetric::Cosine.distance(&[1.0, 1.0], &[0.0, 0.0]),
            1.0
        );
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((DistanceMetric::Euclidean.distance(&[0.0, 3.0], &[4.0, 0.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert!((DistanceMetric::Manhattan.distance(&[1.0, 2.0], &[3.0, 0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn names_and_all() {
        assert_eq!(DistanceMetric::default(), DistanceMetric::Cosine);
        let names: Vec<_> = DistanceMetric::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["cosine", "euclidean", "manhattan"]);
    }

    #[test]
    fn cosine_similarity_complementary() {
        let u = [1.0, 2.0, 3.0];
        let v = [2.0, 1.0, 0.5];
        let d = DistanceMetric::Cosine.distance(&u, &v);
        assert!((cosine_similarity(&u, &v) - (1.0 - d)).abs() < 1e-12);
    }

    fn vecs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (1usize..20).prop_flat_map(|n| {
            (
                proptest::collection::vec(0.0f64..10.0, n),
                proptest::collection::vec(0.0f64..10.0, n),
            )
        })
    }

    proptest! {
        #[test]
        fn prop_distances_nonnegative_and_symmetric((u, v) in vecs()) {
            for m in DistanceMetric::ALL {
                let d = m.distance(&u, &v);
                prop_assert!(d >= 0.0, "{:?} gave negative distance", m);
                prop_assert!((d - m.distance(&v, &u)).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_self_distance_zero(u in proptest::collection::vec(0.1f64..10.0, 1..20)) {
            for m in DistanceMetric::ALL {
                prop_assert!(m.distance(&u, &u) < 1e-9);
            }
        }

        #[test]
        fn prop_cosine_bounded((u, v) in vecs()) {
            let d = DistanceMetric::Cosine.distance(&u, &v);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
