//! Incrementally updatable goal model over a base + delta overlay.
//!
//! [`crate::GoalModel`] is an immutable compiled snapshot — ideal for
//! serving, wrong for ingestion: real libraries grow continuously (new
//! recipes, new success stories). [`DynamicGoalModel`] stages mutations
//! in an append-only [`DeltaSegment`] side-index, optionally overlaid on
//! an immutable compiled base:
//! * O(|A|) [`DynamicGoalModel::add_implementation`] — appends keep every
//!   staged posting list sorted because implementation ids are handed out
//!   in increasing order;
//! * O(|A|) [`DynamicGoalModel::remove_implementation`] — tombstones a
//!   *staged* implementation and purges it from the side-indexes
//!   (base-era implementations are frozen until the next compile);
//! * O(total postings) [`DynamicGoalModel::compile`] — merges base ⊕
//!   delta into an immutable [`crate::GoalModel`] for the serving path —
//!   exactly what the server's background compaction runs off-thread;
//! * zero-copy [`DynamicGoalModel::live`] — a [`LiveRef`] overlay view
//!   that every ranking strategy can read *without* compiling, giving
//!   bit-identical rankings to the compiled merge.
//!
//! Without a base (the pure-ingestion pattern, [`DynamicGoalModel::new`]),
//! everything is staged and any implementation can be retracted — the
//! pre-overlay behaviour, unchanged.
//!
//! The epoch counter lets callers cheaply detect "has anything changed
//! since my last snapshot".

use crate::error::{Error, Result};
use crate::ids::{ActionId, GoalId, ImplId};
use crate::library::GoalLibrary;
use crate::live::{self, DeltaSegment, LiveRef};
use crate::model::GoalModel;
use std::sync::Arc;

/// A mutable, incrementally indexed goal implementation store.
///
/// ```
/// use goalrec_core::{ActionId, DynamicGoalModel, GoalId};
///
/// let mut dm = DynamicGoalModel::new();
/// dm.add_implementation(GoalId::new(0), vec![ActionId::new(0), ActionId::new(1)]).unwrap();
/// let p = dm.add_implementation(GoalId::new(1), vec![ActionId::new(0)]).unwrap();
/// assert_eq!(dm.goal_space(&[0]), vec![0, 1]);
///
/// dm.remove_implementation(p).unwrap();
/// assert_eq!(dm.goal_space(&[0]), vec![0]);
/// let snapshot = dm.compile().unwrap(); // immutable serving model
/// assert_eq!(snapshot.num_impls(), 1);
/// ```
///
/// Overlay mode seeds from a compiled base and stages appends on top:
///
/// ```
/// use goalrec_core::{ActionId, DynamicGoalModel, GoalId, GoalModel, LibraryBuilder};
/// use std::sync::Arc;
///
/// let mut b = LibraryBuilder::new();
/// b.add_impl("g", ["a", "b"]).unwrap();
/// let base = Arc::new(GoalModel::build(&b.build().unwrap()).unwrap());
///
/// let mut dm = DynamicGoalModel::over(base);
/// dm.add_implementation(GoalId::new(1), vec![ActionId::new(0)]).unwrap();
/// assert_eq!(dm.goal_space(&[0]), vec![0, 1]); // base + staged, no rebuild
/// assert_eq!(dm.compile().unwrap().num_impls(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGoalModel {
    /// Compiled immutable base, if overlaying (`None` = pure ingestion).
    base: Option<Arc<GoalModel>>,
    /// Append-only staging segment continuing the base's id spaces.
    delta: DeltaSegment,
    epoch: u64,
}

impl DynamicGoalModel {
    /// Creates an empty dynamic model with no compiled base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a dynamic model from an existing library. All
    /// implementations are staged (no compiled base), so any of them can
    /// still be removed.
    pub fn from_library(library: &GoalLibrary) -> Result<Self> {
        let mut dm = Self::new();
        for imp in library.implementations() {
            dm.add_implementation(imp.goal, imp.actions.clone())?;
        }
        Ok(dm)
    }

    /// Overlays an empty staging segment on a compiled base model. New
    /// implementations continue the base's dense id space; base-era
    /// implementations are frozen until the next [`Self::compile`].
    pub fn over(base: Arc<GoalModel>) -> Self {
        let delta = DeltaSegment::for_base(&base);
        Self {
            base: Some(base),
            delta,
            epoch: 0,
        }
    }

    /// Adds one implementation, growing the action/goal id spaces as
    /// needed. Returns the new implementation's id.
    pub fn add_implementation(&mut self, goal: GoalId, actions: Vec<ActionId>) -> Result<ImplId> {
        let id = self.delta.append(goal, actions)?;
        self.epoch += 1;
        Ok(id)
    }

    /// Removes a *staged* implementation. Idempotent; ids never assigned
    /// are [`Error::UnknownGoal`], base-era ids are
    /// [`Error::FrozenImplementation`].
    pub fn remove_implementation(&mut self, id: ImplId) -> Result<()> {
        let before = self.delta.len();
        self.delta.remove(id)?;
        if self.delta.len() != before {
            self.epoch += 1;
        }
        Ok(())
    }

    /// Number of live implementations (base + staged).
    pub fn len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.num_impls()) + self.delta.len()
    }

    /// Whether no live implementation exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic change counter: bumps on every add/remove.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The compiled base model, if overlaying one.
    pub fn base(&self) -> Option<&Arc<GoalModel>> {
        self.base.as_ref()
    }

    /// The staging segment holding implementations not yet compiled in.
    pub fn delta(&self) -> &DeltaSegment {
        &self.delta
    }

    /// A zero-copy overlay view of base ⊕ delta for the ranking path.
    pub fn live(&self) -> LiveRef<'_> {
        LiveRef::from_parts(self.base.as_deref(), Some(&self.delta))
    }

    /// *Staged* implementations of an action (base postings are read
    /// through [`Self::live`]).
    pub fn action_impls(&self, a: ActionId) -> &[u32] {
        self.delta.action_impls(a)
    }

    /// *Staged* implementations of a goal (base postings are read
    /// through [`Self::live`]).
    pub fn goal_impls(&self, g: GoalId) -> &[u32] {
        self.delta.goal_impls(g)
    }

    /// Goal space of an activity over the live base ⊕ delta set
    /// (Eq. 1, fresh view).
    pub fn goal_space(&self, activity: &[u32]) -> Vec<u32> {
        let view = self.live();
        let mut impls = Vec::new();
        live::implementation_space_into(&view, activity, &mut impls);
        let mut goals = Vec::new();
        live::goals_of_impls_into(&view, &impls, &mut goals);
        goals
    }

    /// Compiles an immutable serving snapshot of base ⊕ delta.
    /// Tombstoned slots are *compacted away*: snapshot implementation ids
    /// are dense and need not match dynamic ids.
    pub fn compile(&self) -> Result<GoalModel> {
        if self.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        self.live().to_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::recommend::{GoalRecommender, Recommender};
    use crate::setops;
    use crate::strategies::Breadth;
    use std::sync::Arc;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn add_grows_spaces_and_keeps_postings_sorted() {
        let mut dm = DynamicGoalModel::new();
        let p0 = dm.add_implementation(GoalId::new(0), ids(&[2, 0])).unwrap();
        let p1 = dm.add_implementation(GoalId::new(1), ids(&[0, 5])).unwrap();
        assert_eq!(p0, ImplId::new(0));
        assert_eq!(p1, ImplId::new(1));
        assert_eq!(dm.len(), 2);
        assert_eq!(dm.action_impls(ActionId::new(0)), &[0, 1]);
        assert!(setops::is_strictly_sorted(
            dm.action_impls(ActionId::new(0))
        ));
        assert_eq!(dm.goal_impls(GoalId::new(1)), &[1]);
        assert_eq!(dm.epoch(), 2);
    }

    #[test]
    fn rejects_empty_implementation() {
        let mut dm = DynamicGoalModel::new();
        assert!(dm.add_implementation(GoalId::new(0), vec![]).is_err());
    }

    #[test]
    fn remove_tombstones_and_purges_postings() {
        let mut dm = DynamicGoalModel::new();
        let p0 = dm.add_implementation(GoalId::new(0), ids(&[0, 1])).unwrap();
        dm.add_implementation(GoalId::new(0), ids(&[1, 2])).unwrap();
        dm.remove_implementation(p0).unwrap();
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.action_impls(ActionId::new(0)), &[] as &[u32]);
        assert_eq!(dm.action_impls(ActionId::new(1)), &[1]);
        assert_eq!(dm.goal_impls(GoalId::new(0)), &[1]);
        // Idempotent.
        let epoch = dm.epoch();
        dm.remove_implementation(p0).unwrap();
        assert_eq!(dm.epoch(), epoch);
    }

    #[test]
    fn goal_space_reflects_updates_immediately() {
        let mut dm = DynamicGoalModel::new();
        dm.add_implementation(GoalId::new(0), ids(&[0, 1])).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0]);
        let p = dm.add_implementation(GoalId::new(3), ids(&[0, 4])).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0, 3]);
        dm.remove_implementation(p).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0]);
    }

    #[test]
    fn compile_matches_static_build() {
        let mut dm = DynamicGoalModel::new();
        dm.add_implementation(GoalId::new(0), ids(&[0, 1])).unwrap();
        dm.add_implementation(GoalId::new(0), ids(&[0, 2])).unwrap();
        dm.add_implementation(GoalId::new(1), ids(&[0, 3, 4]))
            .unwrap();
        let model = dm.compile().unwrap();
        assert_eq!(model.num_impls(), 3);
        assert_eq!(model.action_impls(ActionId::new(0)), &[0, 1, 2]);
        assert_eq!(model.goal_space(&[1]), vec![0]);
    }

    #[test]
    fn compile_compacts_tombstones() {
        let mut dm = DynamicGoalModel::new();
        let p0 = dm.add_implementation(GoalId::new(0), ids(&[0])).unwrap();
        dm.add_implementation(GoalId::new(1), ids(&[1])).unwrap();
        dm.remove_implementation(p0).unwrap();
        let model = dm.compile().unwrap();
        assert_eq!(model.num_impls(), 1);
        // The surviving implementation is re-id'd densely.
        assert_eq!(model.impl_goal(ImplId::new(0)), GoalId::new(1));
    }

    #[test]
    fn compile_empty_fails() {
        let dm = DynamicGoalModel::new();
        assert!(dm.compile().is_err());
        let mut dm2 = DynamicGoalModel::new();
        let p = dm2.add_implementation(GoalId::new(0), ids(&[0])).unwrap();
        dm2.remove_implementation(p).unwrap();
        assert!(dm2.compile().is_err());
    }

    #[test]
    fn from_library_roundtrip() {
        let mut b = crate::library::LibraryBuilder::new();
        b.add_impl("g1", ["a", "b"]).unwrap();
        b.add_impl("g2", ["b", "c"]).unwrap();
        let lib = b.build().unwrap();
        let dm = DynamicGoalModel::from_library(&lib).unwrap();
        assert_eq!(dm.len(), 2);
        let recompiled = dm.compile().unwrap();
        let original = GoalModel::build(&lib).unwrap();
        assert_eq!(recompiled.goal_space(&[1]), original.goal_space(&[1]));
    }

    #[test]
    fn ingest_then_serve_workflow() {
        // The intended pattern: ingest updates, compile a snapshot, serve.
        let mut dm = DynamicGoalModel::new();
        dm.add_implementation(GoalId::new(0), ids(&[0, 1, 2]))
            .unwrap();
        dm.add_implementation(GoalId::new(1), ids(&[0, 3])).unwrap();
        let snapshot = Arc::new(dm.compile().unwrap());
        let rec = GoalRecommender::new(snapshot, Box::new(Breadth));
        let before = rec.recommend_actions(&Activity::from_raw([0]), 5);

        // New implementation arrives; old snapshot is unaffected until the
        // next compile.
        dm.add_implementation(GoalId::new(2), ids(&[0, 9])).unwrap();
        assert_eq!(rec.recommend_actions(&Activity::from_raw([0]), 5), before);
        let rec2 = GoalRecommender::new(Arc::new(dm.compile().unwrap()), Box::new(Breadth));
        let after = rec2.recommend_actions(&Activity::from_raw([0]), 5);
        assert!(after.contains(&ActionId::new(9)));
    }

    #[test]
    fn over_stages_on_a_frozen_base() {
        let mut dm0 = DynamicGoalModel::new();
        dm0.add_implementation(GoalId::new(0), ids(&[0, 1]))
            .unwrap();
        dm0.add_implementation(GoalId::new(1), ids(&[2])).unwrap();
        let base = Arc::new(dm0.compile().unwrap());

        let mut dm = DynamicGoalModel::over(Arc::clone(&base));
        assert_eq!(dm.len(), 2);
        assert!(dm.delta().is_empty());
        // Ids continue the base space.
        let p = dm.add_implementation(GoalId::new(2), ids(&[0, 5])).unwrap();
        assert_eq!(p, ImplId::new(2));
        assert_eq!(dm.len(), 3);
        assert_eq!(dm.goal_space(&[0]), vec![0, 2]);
        // Base-era implementations are frozen; staged ones retract.
        assert!(matches!(
            dm.remove_implementation(ImplId::new(0)),
            Err(Error::FrozenImplementation(0))
        ));
        dm.remove_implementation(p).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0]);
        // Compile with an empty delta reproduces the base.
        let merged = dm.compile().unwrap();
        assert_eq!(merged.num_impls(), base.num_impls());
    }

    #[test]
    fn over_compile_merges_base_and_delta() {
        let mut dm0 = DynamicGoalModel::new();
        dm0.add_implementation(GoalId::new(0), ids(&[0, 1]))
            .unwrap();
        let base = Arc::new(dm0.compile().unwrap());
        let mut dm = DynamicGoalModel::over(base);
        dm.add_implementation(GoalId::new(1), ids(&[1, 3])).unwrap();
        let merged = dm.compile().unwrap();
        assert_eq!(merged.num_impls(), 2);
        assert_eq!(merged.action_impls(ActionId::new(1)), &[0, 1]);
        assert_eq!(merged.impl_goal(ImplId::new(1)), GoalId::new(1));
    }
}
