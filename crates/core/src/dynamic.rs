//! Incrementally updatable goal model.
//!
//! [`crate::GoalModel`] is an immutable compiled snapshot — ideal for
//! serving, wrong for ingestion: real libraries grow continuously (new
//! recipes, new success stories). [`DynamicGoalModel`] maintains the same
//! five index structures as growable posting lists and supports
//! * O(|A|) [`DynamicGoalModel::add_implementation`] — appends keep every
//!   posting list sorted because implementation ids are handed out in
//!   increasing order;
//! * O(|A|) [`DynamicGoalModel::remove_implementation`] — tombstones the
//!   implementation and purges it from the inverted lists;
//! * O(total postings) [`DynamicGoalModel::compile`] — snapshots into an
//!   immutable [`crate::GoalModel`] for the serving path.
//!
//! The epoch counter lets callers cheaply detect "has anything changed
//! since my last snapshot".

use crate::error::{Error, Result};
use crate::ids::{ActionId, GoalId, ImplId};
use crate::library::GoalLibrary;
use crate::model::GoalModel;
use crate::setops;

/// A mutable, incrementally indexed goal implementation store.
///
/// ```
/// use goalrec_core::{ActionId, DynamicGoalModel, GoalId};
///
/// let mut dm = DynamicGoalModel::new();
/// dm.add_implementation(GoalId::new(0), vec![ActionId::new(0), ActionId::new(1)]).unwrap();
/// let p = dm.add_implementation(GoalId::new(1), vec![ActionId::new(0)]).unwrap();
/// assert_eq!(dm.goal_space(&[0]), vec![0, 1]);
///
/// dm.remove_implementation(p).unwrap();
/// assert_eq!(dm.goal_space(&[0]), vec![0]);
/// let snapshot = dm.compile().unwrap(); // immutable serving model
/// assert_eq!(snapshot.num_impls(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGoalModel {
    /// impl → sorted actions; empty slot = tombstone.
    impl_actions: Vec<Vec<u32>>,
    /// impl → goal id (undefined for tombstones).
    impl_goal: Vec<u32>,
    /// goal → sorted live implementation ids.
    goal_impls: Vec<Vec<u32>>,
    /// action → sorted live implementation ids.
    action_impls: Vec<Vec<u32>>,
    live: usize,
    epoch: u64,
}

impl DynamicGoalModel {
    /// Creates an empty dynamic model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a dynamic model from an existing library.
    pub fn from_library(library: &GoalLibrary) -> Result<Self> {
        let mut dm = Self::new();
        for imp in library.implementations() {
            dm.add_implementation(imp.goal, imp.actions.clone())?;
        }
        Ok(dm)
    }

    /// Adds one implementation, growing the action/goal id spaces as
    /// needed. Returns the new implementation's id.
    pub fn add_implementation(&mut self, goal: GoalId, actions: Vec<ActionId>) -> Result<ImplId> {
        let mut acts: Vec<u32> = actions.into_iter().map(ActionId::raw).collect();
        setops::normalize(&mut acts);
        let Some(&last_action) = acts.last() else {
            return Err(Error::EmptyImplementation {
                goal: goal.to_string(),
            });
        };
        let pid = self.impl_actions.len() as u32;
        if goal.index() >= self.goal_impls.len() {
            self.goal_impls.resize(goal.index() + 1, Vec::new());
        }
        let max_action = last_action as usize;
        if max_action >= self.action_impls.len() {
            self.action_impls.resize(max_action + 1, Vec::new());
        }
        self.goal_impls[goal.index()].push(pid);
        for &a in &acts {
            self.action_impls[a as usize].push(pid);
        }
        self.impl_actions.push(acts);
        self.impl_goal.push(goal.raw());
        self.live += 1;
        self.epoch += 1;
        Ok(ImplId::new(pid))
    }

    /// Removes an implementation. Idempotent; unknown ids are an error.
    pub fn remove_implementation(&mut self, id: ImplId) -> Result<()> {
        let slot = self
            .impl_actions
            .get_mut(id.index())
            .ok_or(Error::UnknownGoal(id.raw()))?;
        if slot.is_empty() {
            return Ok(()); // already tombstoned
        }
        let actions = std::mem::take(slot);
        let goal = self.impl_goal[id.index()] as usize;
        self.goal_impls[goal].retain(|&p| p != id.raw());
        for &a in &actions {
            self.action_impls[a as usize].retain(|&p| p != id.raw());
        }
        self.live -= 1;
        self.epoch += 1;
        Ok(())
    }

    /// Number of live implementations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live implementation exists.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Monotonic change counter: bumps on every add/remove.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Implementation space of an action over the *live* set.
    pub fn action_impls(&self, a: ActionId) -> &[u32] {
        self.action_impls
            .get(a.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Live implementations of a goal.
    pub fn goal_impls(&self, g: GoalId) -> &[u32] {
        self.goal_impls
            .get(g.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Goal space of an activity over the live set (Eq. 1, fresh view).
    pub fn goal_space(&self, activity: &[u32]) -> Vec<u32> {
        let mut goals: Vec<u32> = Vec::new();
        for &a in activity {
            for &p in self.action_impls(ActionId::new(a)) {
                goals.push(self.impl_goal[p as usize]);
            }
        }
        setops::normalize(&mut goals);
        goals
    }

    /// Compiles an immutable serving snapshot. Tombstoned slots are
    /// *compacted away*: snapshot implementation ids are dense and need
    /// not match dynamic ids.
    pub fn compile(&self) -> Result<GoalModel> {
        if self.live == 0 {
            return Err(Error::EmptyLibrary);
        }
        let num_goals = self.goal_impls.len() as u32;
        let num_actions = self.action_impls.len() as u32;
        let impls: Vec<(GoalId, Vec<ActionId>)> = self
            .impl_actions
            .iter()
            .zip(&self.impl_goal)
            .filter(|(acts, _)| !acts.is_empty())
            .map(|(acts, &g)| {
                (
                    GoalId::new(g),
                    acts.iter().copied().map(ActionId::new).collect(),
                )
            })
            .collect();
        let library = GoalLibrary::from_id_implementations(num_actions, num_goals, impls)?;
        GoalModel::build(&library)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::recommend::{GoalRecommender, Recommender};
    use crate::strategies::Breadth;
    use std::sync::Arc;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn add_grows_spaces_and_keeps_postings_sorted() {
        let mut dm = DynamicGoalModel::new();
        let p0 = dm.add_implementation(GoalId::new(0), ids(&[2, 0])).unwrap();
        let p1 = dm.add_implementation(GoalId::new(1), ids(&[0, 5])).unwrap();
        assert_eq!(p0, ImplId::new(0));
        assert_eq!(p1, ImplId::new(1));
        assert_eq!(dm.len(), 2);
        assert_eq!(dm.action_impls(ActionId::new(0)), &[0, 1]);
        assert!(setops::is_strictly_sorted(
            dm.action_impls(ActionId::new(0))
        ));
        assert_eq!(dm.goal_impls(GoalId::new(1)), &[1]);
        assert_eq!(dm.epoch(), 2);
    }

    #[test]
    fn rejects_empty_implementation() {
        let mut dm = DynamicGoalModel::new();
        assert!(dm.add_implementation(GoalId::new(0), vec![]).is_err());
    }

    #[test]
    fn remove_tombstones_and_purges_postings() {
        let mut dm = DynamicGoalModel::new();
        let p0 = dm.add_implementation(GoalId::new(0), ids(&[0, 1])).unwrap();
        dm.add_implementation(GoalId::new(0), ids(&[1, 2])).unwrap();
        dm.remove_implementation(p0).unwrap();
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.action_impls(ActionId::new(0)), &[] as &[u32]);
        assert_eq!(dm.action_impls(ActionId::new(1)), &[1]);
        assert_eq!(dm.goal_impls(GoalId::new(0)), &[1]);
        // Idempotent.
        let epoch = dm.epoch();
        dm.remove_implementation(p0).unwrap();
        assert_eq!(dm.epoch(), epoch);
    }

    #[test]
    fn goal_space_reflects_updates_immediately() {
        let mut dm = DynamicGoalModel::new();
        dm.add_implementation(GoalId::new(0), ids(&[0, 1])).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0]);
        let p = dm.add_implementation(GoalId::new(3), ids(&[0, 4])).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0, 3]);
        dm.remove_implementation(p).unwrap();
        assert_eq!(dm.goal_space(&[0]), vec![0]);
    }

    #[test]
    fn compile_matches_static_build() {
        let mut dm = DynamicGoalModel::new();
        dm.add_implementation(GoalId::new(0), ids(&[0, 1])).unwrap();
        dm.add_implementation(GoalId::new(0), ids(&[0, 2])).unwrap();
        dm.add_implementation(GoalId::new(1), ids(&[0, 3, 4]))
            .unwrap();
        let model = dm.compile().unwrap();
        assert_eq!(model.num_impls(), 3);
        assert_eq!(model.action_impls(ActionId::new(0)), &[0, 1, 2]);
        assert_eq!(model.goal_space(&[1]), vec![0]);
    }

    #[test]
    fn compile_compacts_tombstones() {
        let mut dm = DynamicGoalModel::new();
        let p0 = dm.add_implementation(GoalId::new(0), ids(&[0])).unwrap();
        dm.add_implementation(GoalId::new(1), ids(&[1])).unwrap();
        dm.remove_implementation(p0).unwrap();
        let model = dm.compile().unwrap();
        assert_eq!(model.num_impls(), 1);
        // The surviving implementation is re-id'd densely.
        assert_eq!(model.impl_goal(ImplId::new(0)), GoalId::new(1));
    }

    #[test]
    fn compile_empty_fails() {
        let dm = DynamicGoalModel::new();
        assert!(dm.compile().is_err());
        let mut dm2 = DynamicGoalModel::new();
        let p = dm2.add_implementation(GoalId::new(0), ids(&[0])).unwrap();
        dm2.remove_implementation(p).unwrap();
        assert!(dm2.compile().is_err());
    }

    #[test]
    fn from_library_roundtrip() {
        let mut b = crate::library::LibraryBuilder::new();
        b.add_impl("g1", ["a", "b"]).unwrap();
        b.add_impl("g2", ["b", "c"]).unwrap();
        let lib = b.build().unwrap();
        let dm = DynamicGoalModel::from_library(&lib).unwrap();
        assert_eq!(dm.len(), 2);
        let recompiled = dm.compile().unwrap();
        let original = GoalModel::build(&lib).unwrap();
        assert_eq!(recompiled.goal_space(&[1]), original.goal_space(&[1]));
    }

    #[test]
    fn ingest_then_serve_workflow() {
        // The intended pattern: ingest updates, compile a snapshot, serve.
        let mut dm = DynamicGoalModel::new();
        dm.add_implementation(GoalId::new(0), ids(&[0, 1, 2]))
            .unwrap();
        dm.add_implementation(GoalId::new(1), ids(&[0, 3])).unwrap();
        let snapshot = Arc::new(dm.compile().unwrap());
        let rec = GoalRecommender::new(snapshot, Box::new(Breadth));
        let before = rec.recommend_actions(&Activity::from_raw([0]), 5);

        // New implementation arrives; old snapshot is unaffected until the
        // next compile.
        dm.add_implementation(GoalId::new(2), ids(&[0, 9])).unwrap();
        assert_eq!(rec.recommend_actions(&Activity::from_raw([0]), 5), before);
        let rec2 = GoalRecommender::new(Arc::new(dm.compile().unwrap()), Box::new(Breadth));
        let after = rec2.recommend_actions(&Activity::from_raw([0]), 5);
        assert!(after.contains(&ActionId::new(9)));
    }
}
