//! Error types for model construction and recommendation.

use std::fmt;

/// Errors raised while building or querying a goal model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An implementation was declared with an empty action set. The model
    /// defines an implementation as `(g, A)` with `A` a non-empty activity;
    /// an empty one can never be matched, ranked or completed.
    EmptyImplementation {
        /// Name or rendered id of the offending goal.
        goal: String,
    },
    /// An action id referenced by a query is outside the model's action set.
    UnknownAction(u32),
    /// A goal id referenced by a query is outside the model's goal set.
    UnknownGoal(u32),
    /// The library contains no implementations, so no model can be built.
    EmptyLibrary,
    /// A removal targeted an implementation that is frozen into the
    /// compiled base model. The live overlay is append-only over the
    /// base: staged (delta) implementations can be retracted before
    /// compaction, base-era ones only through a full rebuild.
    FrozenImplementation(u32),
    /// The compiled index structures disagree about the library contents.
    /// Raised by `GoalModel::validate`, the cross-consistency check over
    /// the five indexes; seeing this means a construction bug.
    CorruptModel {
        /// Human-readable description of the first inconsistency found.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyImplementation { goal } => {
                write!(f, "implementation for goal {goal} has an empty action set")
            }
            Error::UnknownAction(a) => write!(f, "unknown action id a{a}"),
            Error::UnknownGoal(g) => write!(f, "unknown goal id g{g}"),
            Error::EmptyLibrary => write!(f, "goal implementation library is empty"),
            Error::FrozenImplementation(p) => write!(
                f,
                "implementation p{p} is frozen in the compiled base model and cannot be removed live"
            ),
            Error::CorruptModel { detail } => {
                write!(f, "goal model indexes are inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::EmptyImplementation { goal: "g1".into() }.to_string(),
            "implementation for goal g1 has an empty action set"
        );
        assert_eq!(Error::UnknownAction(3).to_string(), "unknown action id a3");
        assert_eq!(Error::UnknownGoal(4).to_string(), "unknown goal id g4");
        assert_eq!(
            Error::EmptyLibrary.to_string(),
            "goal implementation library is empty"
        );
        assert_eq!(
            Error::FrozenImplementation(7).to_string(),
            "implementation p7 is frozen in the compiled base model and cannot be removed live"
        );
        assert_eq!(
            Error::CorruptModel {
                detail: "boom".into()
            }
            .to_string(),
            "goal model indexes are inconsistent: boom"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
