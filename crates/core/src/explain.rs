//! Explanations: *why* was an action recommended?
//!
//! Goal-based recommendations have a property similarity-based methods
//! lack: every suggestion is justified by concrete goal implementations.
//! [`explain`] reconstructs that justification — for a recommended action,
//! the goals it advances given the user's activity, each with the
//! implementation it rides on, the completeness before and after
//! performing the action, and what would still be missing.

use crate::activity::Activity;
use crate::ids::{ActionId, GoalId, ImplId};
use crate::model::GoalModel;
use crate::setops;
use serde::{Deserialize, Serialize};

/// The contribution of a recommended action to one goal implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Justification {
    /// The goal advanced.
    pub goal: GoalId,
    /// The implementation through which the action contributes.
    pub implementation: ImplId,
    /// `|A ∩ H| / |A|` before performing the action.
    pub completeness_before: f64,
    /// Completeness after performing it.
    pub completeness_after: f64,
    /// Actions still missing after performing it (sorted).
    pub still_missing: Vec<ActionId>,
}

impl Justification {
    /// Whether performing the action fully completes this implementation.
    pub fn completes_goal(&self) -> bool {
        self.still_missing.is_empty()
    }
}

/// An explanation for one recommended action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The recommended action.
    pub action: ActionId,
    /// Its justifications, strongest first (highest completeness-after,
    /// then fewest still-missing, then implementation id).
    pub justifications: Vec<Justification>,
}

impl Explanation {
    /// Number of distinct goals the action advances.
    // goalrec-lint:allow(hot-path-alloc): explain-side introspection; name-aliases with the model/view `num_goals` accessors the ranking path calls
    pub fn num_goals(&self) -> usize {
        let mut goals: Vec<u32> = self.justifications.iter().map(|j| j.goal.raw()).collect();
        setops::normalize(&mut goals);
        goals.len()
    }

    /// The justifications that would fully complete a goal.
    pub fn completing(&self) -> impl Iterator<Item = &Justification> {
        self.justifications.iter().filter(|j| j.completes_goal())
    }
}

/// Explains a recommended action against an activity.
///
/// Only implementations *associated with the user* are reported: the
/// action must contribute (`a ∈ A`) and the implementation's goal must be
/// in the user's goal space (mirroring the candidate universe of §5).
/// `max_justifications` caps the output (0 = unlimited).
///
/// ```
/// use goalrec_core::{explain, Activity, GoalModel, LibraryBuilder};
///
/// let mut b = LibraryBuilder::new();
/// b.add_impl("salad", ["potatoes", "pickles"]).unwrap();
/// let lib = b.build().unwrap();
/// let model = GoalModel::build(&lib).unwrap();
/// let cart = Activity::from_actions([lib.action_id("potatoes").unwrap()]);
///
/// let ex = explain(&model, &cart, lib.action_id("pickles").unwrap(), 0);
/// assert_eq!(ex.justifications.len(), 1);
/// assert!(ex.justifications[0].completes_goal());
/// ```
pub fn explain(
    model: &GoalModel,
    activity: &Activity,
    action: ActionId,
    max_justifications: usize,
) -> Explanation {
    let h = activity.raw();
    let goal_space = model.goal_space(h);
    let mut justifications: Vec<Justification> = Vec::new();

    for &p in model.action_impls(action) {
        let pid = ImplId::new(p);
        let goal = model.impl_goal(pid);
        if !setops::contains(&goal_space, goal.raw()) {
            continue;
        }
        let actions = model.impl_actions(pid);
        let len = actions.len() as f64;
        let before = setops::intersection_len(actions, h) as f64 / len;
        let mut missing = setops::difference(actions, h);
        missing.retain(|&a| a != action.raw());
        let after = (len - missing.len() as f64) / len;
        justifications.push(Justification {
            goal,
            implementation: pid,
            completeness_before: before,
            completeness_after: after,
            still_missing: missing.into_iter().map(ActionId::new).collect(),
        });
    }

    justifications.sort_by(|a, b| {
        b.completeness_after
            .partial_cmp(&a.completeness_after)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.still_missing.len().cmp(&b.still_missing.len()))
            .then_with(|| a.implementation.cmp(&b.implementation))
    });
    if max_justifications > 0 {
        justifications.truncate(max_justifications);
    }
    Explanation {
        action,
        justifications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;

    /// g1: {a,b}; g1 alt: {a,c}; g2: {a,d,e}; g3: {d,f}.
    fn model() -> (GoalModel, crate::library::GoalLibrary) {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a", "b"]).unwrap();
        b.add_impl("g1", ["a", "c"]).unwrap();
        b.add_impl("g2", ["a", "d", "e"]).unwrap();
        b.add_impl("g3", ["d", "f"]).unwrap();
        let lib = b.build().unwrap();
        (GoalModel::build(&lib).unwrap(), lib)
    }

    #[test]
    fn explains_completion_and_progress() {
        let (m, lib) = model();
        // H = {a}: recommending b completes g1 (impl 0).
        let h = Activity::from_actions([lib.action_id("a").unwrap()]);
        let ex = explain(&m, &h, lib.action_id("b").unwrap(), 0);
        assert_eq!(ex.justifications.len(), 1);
        let j = &ex.justifications[0];
        assert_eq!(j.goal, lib.goal_id("g1").unwrap());
        assert_eq!(j.completeness_before, 0.5);
        assert_eq!(j.completeness_after, 1.0);
        assert!(j.completes_goal());
        assert_eq!(ex.completing().count(), 1);
        assert_eq!(ex.num_goals(), 1);
    }

    #[test]
    fn partial_progress_lists_missing_actions() {
        let (m, lib) = model();
        let h = Activity::from_actions([lib.action_id("a").unwrap()]);
        // d advances g2 ({a,d,e}: 1/3 → 2/3, missing e); its g3 impl is
        // outside the goal space of {a}, so it is not reported.
        let ex = explain(&m, &h, lib.action_id("d").unwrap(), 0);
        assert_eq!(ex.justifications.len(), 1);
        let j = &ex.justifications[0];
        assert_eq!(j.goal, lib.goal_id("g2").unwrap());
        assert!((j.completeness_before - 1.0 / 3.0).abs() < 1e-12);
        assert!((j.completeness_after - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(j.still_missing, vec![lib.action_id("e").unwrap()]);
        assert!(!j.completes_goal());
    }

    #[test]
    fn justifications_sorted_strongest_first() {
        let (m, lib) = model();
        // H = {b, c, d, e}: action a contributes to impls 0 (g1, after
        // 1.0), 1 (g1 alt, after 1.0), 2 (g2, after 1.0) — all complete;
        // order falls back to implementation id.
        let h = Activity::from_actions(
            ["b", "c", "d", "e"]
                .iter()
                .map(|n| lib.action_id(n).unwrap()),
        );
        let ex = explain(&m, &h, lib.action_id("a").unwrap(), 0);
        assert_eq!(ex.justifications.len(), 3);
        assert!(ex
            .justifications
            .windows(2)
            .all(|w| { w[0].completeness_after >= w[1].completeness_after }));
        assert_eq!(ex.num_goals(), 2);
        assert_eq!(ex.completing().count(), 3);
    }

    #[test]
    fn cap_limits_output() {
        let (m, lib) = model();
        let h = Activity::from_actions(
            ["b", "c", "d", "e"]
                .iter()
                .map(|n| lib.action_id(n).unwrap()),
        );
        let ex = explain(&m, &h, lib.action_id("a").unwrap(), 2);
        assert_eq!(ex.justifications.len(), 2);
    }

    #[test]
    fn action_outside_goal_space_yields_empty() {
        let (m, lib) = model();
        // H = {b}: goal space = {g1}. f only serves g3 → no justification.
        let h = Activity::from_actions([lib.action_id("b").unwrap()]);
        let ex = explain(&m, &h, lib.action_id("f").unwrap(), 0);
        assert!(ex.justifications.is_empty());
        assert_eq!(ex.num_goals(), 0);
    }
}
