//! Hybrid recommenders via rank/score fusion.
//!
//! The paper's conclusion names hybrid goal-based + content-based
//! recommendation as the next step: "methodologies that enhance the
//! goal-based mechanisms by considering the user preferences on certain
//! domain-specific characteristics". [`Hybrid`] implements that as
//! generic fusion over any set of [`Recommender`]s, with two classic
//! combination rules:
//!
//! * [`FusionRule::WeightedScore`] — min-max normalise each method's
//!   scores within the candidate pool, then take the weighted sum;
//! * [`FusionRule::ReciprocalRank`] — RRF: `Σ w / (60 + rank)`, robust
//!   when the methods' score scales are incomparable (which they are:
//!   Breadth counts overlaps, Best Match negates distances, Content uses
//!   cosines).

use crate::activity::Activity;
use crate::ids::ActionId;
use crate::recommend::Recommender;
use crate::topk::{top_k, Scored};
use std::collections::HashMap;

/// How the component lists are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionRule {
    /// Min-max normalised weighted score sum.
    WeightedScore,
    /// Reciprocal-rank fusion (`k = 60`, the standard constant).
    #[default]
    ReciprocalRank,
}

/// The RRF damping constant (Cormack et al.'s standard 60).
const RRF_K: f64 = 60.0;

/// How many candidates each component contributes before fusion, as a
/// multiple of the requested `k`. A deeper pool lets a candidate ranked
/// just below another method's cut still be fused in.
const POOL_FACTOR: usize = 3;

/// A hybrid recommender fusing several components.
pub struct Hybrid {
    components: Vec<(Box<dyn Recommender>, f64)>,
    rule: FusionRule,
    name: String,
}

impl Hybrid {
    /// Creates a hybrid from weighted components. Weights need not sum to
    /// one; negative weights are rejected.
    ///
    /// # Panics
    /// Panics if `components` is empty or any weight is negative/NaN.
    pub fn new(components: Vec<(Box<dyn Recommender>, f64)>, rule: FusionRule) -> Self {
        assert!(
            !components.is_empty(),
            "hybrid needs at least one component"
        );
        assert!(
            components.iter().all(|(_, w)| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let name = format!(
            "Hybrid({})",
            components
                .iter()
                .map(|(r, w)| format!("{}:{w}", r.name()))
                .collect::<Vec<_>>()
                .join("+")
        );
        Self {
            components,
            rule,
            name,
        }
    }

    /// Equal-weight hybrid.
    pub fn uniform(components: Vec<Box<dyn Recommender>>, rule: FusionRule) -> Self {
        Self::new(components.into_iter().map(|c| (c, 1.0)).collect(), rule)
    }
}

impl Recommender for Hybrid {
    // goalrec-lint:allow(hot-path-alloc): offline-eval Recommender; only name-aliases with Strategy::name
    fn name(&self) -> String {
        self.name.clone()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        if k == 0 {
            return Vec::new();
        }
        let pool = k.saturating_mul(POOL_FACTOR).max(k);
        let mut fused: HashMap<ActionId, f64> = HashMap::new();
        for (component, weight) in &self.components {
            if *weight == 0.0 {
                continue;
            }
            let list = component.recommend(activity, pool);
            if list.is_empty() {
                continue;
            }
            match self.rule {
                FusionRule::ReciprocalRank => {
                    for (rank, s) in list.iter().enumerate() {
                        *fused.entry(s.action).or_insert(0.0) +=
                            weight / (RRF_K + rank as f64 + 1.0);
                    }
                }
                FusionRule::WeightedScore => {
                    let max = list.first().map(|s| s.score).unwrap_or(0.0);
                    let min = list.last().map(|s| s.score).unwrap_or(0.0);
                    let span = (max - min).max(f64::EPSILON);
                    for s in &list {
                        let norm = (s.score - min) / span;
                        *fused.entry(s.action).or_insert(0.0) += weight * norm;
                    }
                }
            }
        }
        top_k(fused.into_iter().map(|(a, s)| Scored::new(a, s)), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-list fake recommender for fusion arithmetic tests.
    struct Fixed {
        name: &'static str,
        list: Vec<Scored>,
    }

    impl Recommender for Fixed {
        fn name(&self) -> String {
            self.name.to_owned()
        }
        fn recommend(&self, _h: &Activity, k: usize) -> Vec<Scored> {
            self.list.iter().take(k).copied().collect()
        }
    }

    fn fixed(name: &'static str, ids_scores: &[(u32, f64)]) -> Box<dyn Recommender> {
        Box::new(Fixed {
            name,
            list: ids_scores
                .iter()
                .map(|&(a, s)| Scored::new(ActionId::new(a), s))
                .collect(),
        })
    }

    #[test]
    fn rrf_prefers_items_ranked_well_everywhere() {
        // Item 2 is rank 2 in both lists; items 1 and 3 are rank 1 in one
        // list but absent from the other → 2 wins under RRF.
        let h = Hybrid::uniform(
            vec![
                fixed("a", &[(1, 9.0), (2, 5.0)]),
                fixed("b", &[(3, 9.0), (2, 5.0)]),
            ],
            FusionRule::ReciprocalRank,
        );
        let out = h.recommend(&Activity::new(), 3);
        assert_eq!(out[0].action, ActionId::new(2));
    }

    #[test]
    fn weighted_score_respects_weights() {
        // Component b dominates with weight 10.
        let h = Hybrid::new(
            vec![
                (fixed("a", &[(1, 1.0), (2, 0.5), (4, 0.1)]), 1.0),
                (fixed("b", &[(3, 1.0), (2, 0.5), (4, 0.1)]), 10.0),
            ],
            FusionRule::WeightedScore,
        );
        let out = h.recommend(&Activity::new(), 1);
        assert_eq!(out[0].action, ActionId::new(3));
    }

    #[test]
    fn zero_weight_component_is_ignored() {
        let h = Hybrid::new(
            vec![
                (fixed("a", &[(1, 1.0)]), 0.0),
                (fixed("b", &[(2, 1.0)]), 1.0),
            ],
            FusionRule::ReciprocalRank,
        );
        let out = h.recommend(&Activity::new(), 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].action, ActionId::new(2));
    }

    #[test]
    fn name_encodes_components() {
        let h = Hybrid::uniform(
            vec![fixed("Breadth", &[]), fixed("Content", &[])],
            FusionRule::ReciprocalRank,
        );
        assert_eq!(h.name(), "Hybrid(Breadth:1+Content:1)");
    }

    #[test]
    fn zero_k_and_empty_components_output() {
        let h = Hybrid::uniform(vec![fixed("a", &[])], FusionRule::WeightedScore);
        assert!(h.recommend(&Activity::new(), 0).is_empty());
        assert!(h.recommend(&Activity::new(), 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_hybrid_rejected() {
        Hybrid::uniform(vec![], FusionRule::ReciprocalRank);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        Hybrid::new(vec![(fixed("a", &[]), -1.0)], FusionRule::ReciprocalRank);
    }

    #[test]
    fn single_constant_score_list_normalises_safely() {
        // All scores equal → span 0 → must not divide by zero.
        let h = Hybrid::uniform(
            vec![fixed("a", &[(1, 0.5), (2, 0.5)])],
            FusionRule::WeightedScore,
        );
        let out = h.recommend(&Activity::new(), 2);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|s| s.score.is_finite()));
    }

    #[test]
    fn goal_plus_content_end_to_end() {
        // The paper's future-work hybrid: combine Breadth with a
        // content-flavoured second opinion (here another goal recommender
        // for simplicity) over a real model.
        use crate::library::LibraryBuilder;
        use crate::recommend::GoalRecommender;
        use crate::strategies::{BestMatch, Breadth};

        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a", "b", "c"]).unwrap();
        b.add_impl("g2", ["a", "d"]).unwrap();
        let lib = b.build().unwrap();
        let h = Activity::from_actions([lib.action_id("a").unwrap()]);

        let hybrid = Hybrid::uniform(
            vec![
                Box::new(GoalRecommender::from_library(&lib, Box::new(Breadth)).unwrap()),
                Box::new(
                    GoalRecommender::from_library(&lib, Box::new(BestMatch::default())).unwrap(),
                ),
            ],
            FusionRule::ReciprocalRank,
        );
        let out = hybrid.recommend(&h, 3);
        assert!(!out.is_empty());
        assert!(out.iter().all(|s| s.action != lib.action_id("a").unwrap()));
    }
}
