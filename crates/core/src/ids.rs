//! Identifier newtypes and string interning.
//!
//! The paper's model (§4) identifies actions, goals and goal implementations
//! by unique identifiers and keeps two dictionaries, `A-idx` and `G-idx`,
//! mapping external names to those identifiers. [`ActionId`], [`GoalId`] and
//! [`ImplId`] are the identifiers; [`Interner`] is the dictionary.
//!
//! All three identifiers are `u32` newtypes: the paper's datasets are in the
//! tens of thousands of entities and the scalability study (Fig. 7) goes to
//! millions, which comfortably fits `u32` while halving index memory compared
//! to `usize` posting lists.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index widened for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of an action (`a ∈ 𝒜`): a recordable task such as the
    /// purchase of a product or a step towards a life goal.
    ActionId,
    "a"
);
id_type!(
    /// Identifier of a goal (`g ∈ 𝒢`): the purpose a set of actions serves,
    /// e.g. a recipe's dish or a life goal.
    GoalId,
    "g"
);
id_type!(
    /// Identifier of a goal implementation (`p = (g, A) ∈ L`).
    ImplId,
    "p"
);

/// A bidirectional mapping between external names and dense `u32` identifiers.
///
/// This is the paper's `A-idx` / `G-idx` dictionary structure. Identifiers
/// are handed out densely in insertion order, so they double as indices into
/// the posting-list tables of [`crate::GoalModel`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with room for `capacity` names.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            names: Vec::with_capacity(capacity),
            lookup: HashMap::with_capacity(capacity),
        }
    }

    /// Interns `name`, returning its identifier. Repeated calls with the
    /// same name return the same identifier.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        // goalrec-lint:allow(no-panic-paths): the id space is u32 by design (see module docs); interning more than 4B names is out of scope for the paper's datasets
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX interned names");
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.lookup.get(name).copied()
    }

    /// Resolves an identifier back to its name.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the reverse lookup table. Needed after deserialisation,
    /// because the lookup map is not serialised.
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let a = ActionId::new(7);
        assert_eq!(a.raw(), 7);
        assert_eq!(a.index(), 7);
        assert_eq!(u32::from(a), 7);
        assert_eq!(ActionId::from(7u32), a);
    }

    #[test]
    fn id_display_prefixes() {
        assert_eq!(ActionId::new(3).to_string(), "a3");
        assert_eq!(GoalId::new(4).to_string(), "g4");
        assert_eq!(ImplId::new(5).to_string(), "p5");
    }

    #[test]
    fn id_ordering_follows_raw() {
        assert!(GoalId::new(1) < GoalId::new(2));
        assert_eq!(ImplId::new(9), ImplId::new(9));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let pickles = i.intern("pickles");
        let nutmeg = i.intern("nutmeg");
        assert_ne!(pickles, nutmeg);
        assert_eq!(i.intern("pickles"), pickles);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn intern_resolve_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("olivier salad");
        assert_eq!(i.resolve(id), Some("olivier salad"));
        assert_eq!(i.get("olivier salad"), Some(id));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.resolve(99), None);
    }

    #[test]
    fn intern_ids_are_dense() {
        let mut i = Interner::new();
        for n in 0..100u32 {
            assert_eq!(i.intern(&format!("name-{n}")), n);
        }
        let collected: Vec<_> = i.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let json = serde_json::to_string(&i).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("x"), None); // lookup not serialised
        back.rebuild_lookup();
        assert_eq!(back.get("x"), Some(0));
        assert_eq!(back.get("y"), Some(1));
        assert_eq!(back.resolve(1), Some("y"));
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
