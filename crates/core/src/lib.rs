//! # goalrec-core
//!
//! Goal- and action-association based recommendation, reproducing
//! *"Modeling and Exploiting Goal and Action Associations for
//! Recommendations"* (Papadimitriou, Velegrakis, Koutrika — EDBT 2018).
//!
//! The central idea: users act to fulfil **goals**, and a **goal
//! implementation library** `L` — pairs `(g, A)` of a goal and the action
//! set that fulfils it — lets a recommender suggest the actions that move a
//! user toward the goals their past activity gives evidence for, rather
//! than actions merely similar to that past.
//!
//! ## Quick start
//!
//! ```
//! use goalrec_core::{Activity, GoalModel, GoalRecommender, LibraryBuilder,
//!                    Recommender, strategies::Breadth};
//!
//! // Build a library: an olivier salad and two other recipes.
//! let mut builder = LibraryBuilder::new();
//! builder.add_impl("olivier salad", ["potatoes", "carrots", "pickles"]).unwrap();
//! builder.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"]).unwrap();
//! builder.add_impl("pan-fried carrots", ["carrots", "nutmeg"]).unwrap();
//! let library = builder.build().unwrap();
//!
//! // The customer's cart: potatoes and carrots.
//! let cart = Activity::from_actions([
//!     library.action_id("potatoes").unwrap(),
//!     library.action_id("carrots").unwrap(),
//! ]);
//!
//! // Breadth recommends pickles/nutmeg-style completions, never the past.
//! let rec = GoalRecommender::from_library(&library, Box::new(Breadth)).unwrap();
//! let top = rec.recommend_actions(&cart, 2);
//! let names: Vec<_> = top.iter().map(|&a| library.action_name(a)).collect();
//! assert_eq!(names, vec!["pickles", "nutmeg"]);
//! ```
//!
//! ## Module map
//!
//! | Paper concept | Module |
//! |---|---|
//! | Actions, goals, implementations (§3) | [`ids`], [`library`] |
//! | Index structures & spaces (§4) | [`model`], [`setops`] |
//! | Focus / Breadth / Best Match (§5) | [`strategies`], [`profile`], [`distance`] |
//! | Ranking & facade | [`topk`], [`recommend`], [`batch`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod batch;
pub(crate) mod csr;
pub mod distance;
pub mod dynamic;
pub mod error;
pub mod explain;
pub mod fusion;
pub mod ids;
pub mod library;
pub mod live;
pub mod model;
pub mod profile;
pub mod recommend;
pub mod rerank;
pub mod scratch;
pub mod setops;
pub mod strategies;
pub mod topk;

pub use activity::Activity;
pub use csr::CsrBacking;
pub use distance::DistanceMetric;
pub use dynamic::DynamicGoalModel;
pub use error::{Error, Result};
pub use explain::{explain, Explanation, Justification};
pub use fusion::{FusionRule, Hybrid};
pub use ids::{ActionId, GoalId, ImplId, Interner};
pub use library::{GoalLibrary, Implementation, LibraryBuilder, LibraryStats, StatsReport};
pub use live::{AssocView, DeltaSegment, LiveRef};
pub use model::GoalModel;
pub use recommend::{GoalRecommender, Recommender};
pub use rerank::mmr_rerank;
pub use scratch::Scratch;
pub use strategies::{
    BestMatch, Breadth, Focus, FocusVariant, GoalWeights, Strategy, WeightedBestMatch,
    WeightedBreadth, WeightedFocus,
};
pub use topk::Scored;
