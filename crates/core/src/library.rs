//! The goal implementation library `L` (Definition 3.1).
//!
//! A library is a set of *goal implementations*: pairs `(g, A)` of a goal and
//! the set of actions whose joint execution fulfils it. Several
//! implementations may exist for the same goal (alternative ways to fulfil
//! it), and the same action set may serve several goals.
//!
//! [`LibraryBuilder`] accepts implementations by *name* and interns the names
//! into dense [`ActionId`]/[`GoalId`] spaces; [`GoalLibrary`] is the immutable
//! result that [`crate::GoalModel`] compiles its indexes from.

use crate::error::{Error, Result};
use crate::ids::{ActionId, GoalId, ImplId, Interner};

use serde::{Deserialize, Serialize};

/// One goal implementation `p = (g, A)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Implementation {
    /// The goal this activity fulfils.
    pub goal: GoalId,
    /// The activity: a strictly increasing, duplicate-free set of actions.
    pub actions: Vec<ActionId>,
}

impl Implementation {
    /// Creates an implementation, normalising `actions` to a sorted set.
    pub fn new(goal: GoalId, mut actions: Vec<ActionId>) -> Self {
        actions.sort_unstable();
        actions.dedup();
        Self { goal, actions }
    }

    /// Number of actions required by this implementation.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the implementation has no actions (invalid in a built library).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The action ids as a raw `u32` slice for set algebra.
    pub fn action_raw(&self) -> &[u32] {
        cast_ids(&self.actions)
    }
}

fn cast_ids(ids: &[ActionId]) -> &[u32] {
    // SAFETY: ActionId is #[repr(transparent)] over u32, so a slice of
    // ActionId has the same layout as a slice of u32.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len()) }
}

/// An immutable goal implementation library with interned names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GoalLibrary {
    implementations: Vec<Implementation>,
    actions: Interner,
    goals: Interner,
}

impl GoalLibrary {
    /// All implementations, indexed by [`ImplId`] position.
    pub fn implementations(&self) -> &[Implementation] {
        &self.implementations
    }

    /// Looks up an implementation by id.
    pub fn implementation(&self, id: ImplId) -> Option<&Implementation> {
        self.implementations.get(id.index())
    }

    /// Number of implementations `|L|`.
    pub fn len(&self) -> usize {
        self.implementations.len()
    }

    /// Whether the library holds no implementations.
    pub fn is_empty(&self) -> bool {
        self.implementations.is_empty()
    }

    /// Number of distinct actions `|𝒜|`.
    pub fn num_actions(&self) -> usize {
        self.actions.len()
    }

    /// Number of distinct goals `|𝒢|`.
    pub fn num_goals(&self) -> usize {
        self.goals.len()
    }

    /// Action name dictionary (`A-idx`).
    pub fn action_names(&self) -> &Interner {
        &self.actions
    }

    /// Goal name dictionary (`G-idx`).
    pub fn goal_names(&self) -> &Interner {
        &self.goals
    }

    /// Resolves an action id to its name, falling back to the rendered id.
    pub fn action_name(&self, a: ActionId) -> String {
        self.actions
            .resolve(a.raw())
            .map(str::to_owned)
            // goalrec-lint:allow(hot-path-alloc): response assembly renders display names per request
            .unwrap_or_else(|| a.to_string())
    }

    /// Resolves a goal id to its name, falling back to the rendered id.
    pub fn goal_name(&self, g: GoalId) -> String {
        self.goals
            .resolve(g.raw())
            .map(str::to_owned)
            .unwrap_or_else(|| g.to_string())
    }

    /// Looks up an action id by name.
    pub fn action_id(&self, name: &str) -> Option<ActionId> {
        self.actions.get(name).map(ActionId::new)
    }

    /// Looks up a goal id by name.
    pub fn goal_id(&self, name: &str) -> Option<GoalId> {
        self.goals.get(name).map(GoalId::new)
    }

    /// Restores internal lookup tables after deserialisation.
    pub fn rebuild_lookups(&mut self) {
        self.actions.rebuild_lookup();
        self.goals.rebuild_lookup();
    }

    /// Constructs a library directly from id-space implementations. Action
    /// and goal dictionaries get synthetic names (`a{i}`, `g{i}`). Used by
    /// the synthetic dataset generators, which work in id space.
    pub fn from_id_implementations(
        num_actions: u32,
        num_goals: u32,
        impls: Vec<(GoalId, Vec<ActionId>)>,
    ) -> Result<Self> {
        let mut actions = Interner::with_capacity(num_actions as usize);
        for i in 0..num_actions {
            actions.intern(&format!("a{i}"));
        }
        let mut goals = Interner::with_capacity(num_goals as usize);
        for i in 0..num_goals {
            goals.intern(&format!("g{i}"));
        }
        let mut implementations = Vec::with_capacity(impls.len());
        for (goal, acts) in impls {
            if goal.raw() >= num_goals {
                return Err(Error::UnknownGoal(goal.raw()));
            }
            if let Some(bad) = acts.iter().find(|a| a.raw() >= num_actions) {
                return Err(Error::UnknownAction(bad.raw()));
            }
            let imp = Implementation::new(goal, acts);
            if imp.is_empty() {
                return Err(Error::EmptyImplementation {
                    goal: goal.to_string(),
                });
            }
            implementations.push(imp);
        }
        if implementations.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        Ok(Self {
            implementations,
            actions,
            goals,
        })
    }
}

/// Incremental builder for [`GoalLibrary`], interning names on the fly.
#[derive(Debug, Default)]
pub struct LibraryBuilder {
    implementations: Vec<Implementation>,
    actions: Interner,
    goals: Interner,
}

impl LibraryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one implementation by goal and action names. Duplicate action
    /// names within one implementation collapse to a set. Returns the id the
    /// implementation will have in the built library.
    pub fn add_impl<S, I>(&mut self, goal: &str, action_names: I) -> Result<ImplId>
    where
        S: AsRef<str>,
        I: IntoIterator<Item = S>,
    {
        let g = GoalId::new(self.goals.intern(goal));
        let acts: Vec<ActionId> = action_names
            .into_iter()
            .map(|n| ActionId::new(self.actions.intern(n.as_ref())))
            .collect();
        let imp = Implementation::new(g, acts);
        if imp.is_empty() {
            return Err(Error::EmptyImplementation {
                goal: goal.to_owned(),
            });
        }
        let id = ImplId::new(self.implementations.len() as u32);
        self.implementations.push(imp);
        Ok(id)
    }

    /// Pre-interns an action name without attaching it to an implementation.
    /// Useful to reserve ids for actions known to the application but absent
    /// from the library (e.g. products no recipe uses).
    pub fn intern_action(&mut self, name: &str) -> ActionId {
        ActionId::new(self.actions.intern(name))
    }

    /// Pre-interns a goal name.
    pub fn intern_goal(&mut self, name: &str) -> GoalId {
        GoalId::new(self.goals.intern(name))
    }

    /// Number of implementations added so far.
    pub fn len(&self) -> usize {
        self.implementations.len()
    }

    /// Whether no implementation has been added yet.
    pub fn is_empty(&self) -> bool {
        self.implementations.is_empty()
    }

    /// Finalises the library. Fails on an empty builder.
    pub fn build(self) -> Result<GoalLibrary> {
        if self.implementations.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        Ok(GoalLibrary {
            implementations: self.implementations,
            actions: self.actions,
            goals: self.goals,
        })
    }
}

/// Summary statistics of a library; the quantities the paper reports for its
/// datasets (§6 "Dataset Description") and uses in the complexity analysis
/// (§5.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryStats {
    /// `|L|` — number of implementations.
    pub num_implementations: usize,
    /// `|𝒜|` — number of distinct actions.
    pub num_actions: usize,
    /// `|𝒢|` — number of distinct goals.
    pub num_goals: usize,
    /// Mean number of implementations an action participates in — the
    /// paper's *connectivity* (≈1.2k for FoodMart, 3.84 for 43Things).
    pub connectivity: f64,
    /// Maximum connectivity over all actions.
    pub max_connectivity: usize,
    /// Mean implementation length `avg |A|`.
    pub avg_impl_len: f64,
    /// Maximum implementation length.
    pub max_impl_len: usize,
    /// Mean number of implementations per goal.
    pub avg_impls_per_goal: f64,
}

impl GoalLibrary {
    /// Computes [`LibraryStats`] in one pass.
    pub fn stats(&self) -> LibraryStats {
        let mut per_action = vec![0usize; self.num_actions()];
        let mut per_goal = vec![0usize; self.num_goals()];
        let mut total_len = 0usize;
        let mut max_len = 0usize;
        for imp in &self.implementations {
            total_len += imp.len();
            max_len = max_len.max(imp.len());
            per_goal[imp.goal.index()] += 1;
            for a in &imp.actions {
                per_action[a.index()] += 1;
            }
        }
        let used_actions = per_action.iter().filter(|&&c| c > 0).count().max(1);
        let used_goals = per_goal.iter().filter(|&&c| c > 0).count().max(1);
        LibraryStats {
            num_implementations: self.len(),
            num_actions: self.num_actions(),
            num_goals: self.num_goals(),
            connectivity: per_action.iter().sum::<usize>() as f64 / used_actions as f64,
            max_connectivity: per_action.iter().copied().max().unwrap_or(0),
            avg_impl_len: total_len as f64 / self.len().max(1) as f64,
            max_impl_len: max_len,
            avg_impls_per_goal: self.len() as f64 / used_goals as f64,
        }
    }
}

/// Raw-slice view of an implementation's actions, used by the model compiler.
pub(crate) fn actions_as_raw(imp: &Implementation) -> &[u32] {
    cast_ids(&imp.actions)
}

/// The one serialization shape shared by every stats surface.
///
/// `goalrec stats --json` and the server's `GET /v1/stats` both emit this
/// struct verbatim, so the two surfaces cannot drift: a field added here
/// appears in both, with identical names and nesting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReport {
    /// Library shape statistics.
    pub stats: LibraryStats,
    /// Metrics snapshot, when the caller wants one alongside the stats
    /// (serialized as `null` otherwise).
    pub metrics: Option<goalrec_obs::MetricsReport>,
}

impl StatsReport {
    /// Bundles precomputed stats with an optional metrics snapshot.
    pub fn new(stats: LibraryStats, metrics: Option<goalrec_obs::MetricsReport>) -> Self {
        StatsReport { stats, metrics }
    }

    /// Pretty-printed JSON — the exact bytes both consumers emit.
    pub fn to_json_pretty(&self) -> String {
        // goalrec-lint:allow(no-panic-paths): serializing a plain struct of names and numbers cannot fail; an error here is a serializer bug, not input
        serde_json::to_string_pretty(self).expect("stats serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper (Example 3.2, Figure 1): five
    /// outfits (implementations) over six items and five goals.
    pub(crate) fn example_library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        // p1 = (g1, {a1, a2})          g1 = meeting friends
        // p2 = (g1, {a1, a3})
        // p3 = (g2, {a1, a4, a5})      g2 = going to the office
        // p4 = (g3, {a4, a6})          g3 = be warm
        // p5 = (g5, {a1, a2, a6})      g5 = hiking
        b.add_impl("meeting friends", ["a1", "a2"]).unwrap();
        b.add_impl("meeting friends", ["a1", "a3"]).unwrap();
        b.add_impl("going to the office", ["a1", "a4", "a5"])
            .unwrap();
        b.add_impl("be warm", ["a4", "a6"]).unwrap();
        b.add_impl("hiking", ["a1", "a2", "a6"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn implementation_normalises_actions() {
        let imp = Implementation::new(
            GoalId::new(0),
            vec![ActionId::new(3), ActionId::new(1), ActionId::new(3)],
        );
        assert_eq!(imp.actions, vec![ActionId::new(1), ActionId::new(3)]);
        assert_eq!(imp.len(), 2);
        assert!(!imp.is_empty());
        assert_eq!(imp.action_raw(), &[1, 3]);
    }

    #[test]
    fn builder_interns_names_densely() {
        let lib = example_library();
        assert_eq!(lib.len(), 5);
        assert_eq!(lib.num_actions(), 6);
        assert_eq!(lib.num_goals(), 4); // four distinct goal names
        assert_eq!(lib.action_id("a1"), Some(ActionId::new(0)));
        assert_eq!(lib.goal_id("meeting friends"), Some(GoalId::new(0)));
        assert_eq!(lib.goal_name(GoalId::new(2)), "be warm");
    }

    #[test]
    fn builder_rejects_empty_implementation() {
        let mut b = LibraryBuilder::new();
        let err = b
            .add_impl::<&str, _>("goal", std::iter::empty())
            .unwrap_err();
        assert!(matches!(err, Error::EmptyImplementation { .. }));
    }

    #[test]
    fn builder_rejects_empty_library() {
        assert_eq!(
            LibraryBuilder::new().build().unwrap_err(),
            Error::EmptyLibrary
        );
    }

    #[test]
    fn duplicate_actions_within_impl_collapse() {
        let mut b = LibraryBuilder::new();
        b.add_impl("g", ["x", "x", "y"]).unwrap();
        let lib = b.build().unwrap();
        assert_eq!(lib.implementations()[0].len(), 2);
    }

    #[test]
    fn from_id_implementations_validates_ranges() {
        let ok = GoalLibrary::from_id_implementations(
            3,
            2,
            vec![(GoalId::new(0), vec![ActionId::new(0), ActionId::new(2)])],
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok.action_name(ActionId::new(2)), "a2");

        let bad_goal = GoalLibrary::from_id_implementations(
            3,
            2,
            vec![(GoalId::new(5), vec![ActionId::new(0)])],
        );
        assert_eq!(bad_goal.unwrap_err(), Error::UnknownGoal(5));

        let bad_action = GoalLibrary::from_id_implementations(
            3,
            2,
            vec![(GoalId::new(0), vec![ActionId::new(7)])],
        );
        assert_eq!(bad_action.unwrap_err(), Error::UnknownAction(7));

        let empty = GoalLibrary::from_id_implementations(3, 2, vec![]);
        assert_eq!(empty.unwrap_err(), Error::EmptyLibrary);
    }

    #[test]
    fn stats_on_example() {
        let lib = example_library();
        let s = lib.stats();
        assert_eq!(s.num_implementations, 5);
        assert_eq!(s.num_actions, 6);
        assert_eq!(s.num_goals, 4);
        // a1 appears in p1,p2,p3,p5 → 4; a2 in p1,p5 → 2; a3 → 1; a4 → 2;
        // a5 → 1; a6 → 2. Total 12 over 6 used actions.
        assert!((s.connectivity - 2.0).abs() < 1e-12);
        assert_eq!(s.max_connectivity, 4);
        // lengths 2,2,3,2,3 → avg 2.4
        assert!((s.avg_impl_len - 2.4).abs() < 1e-12);
        assert_eq!(s.max_impl_len, 3);
        // goals: g0 has 2 impls, others 1 → 5/4
        assert!((s.avg_impls_per_goal - 1.25).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let lib = example_library();
        let json = serde_json::to_string(&lib).unwrap();
        let mut back: GoalLibrary = serde_json::from_str(&json).unwrap();
        back.rebuild_lookups();
        assert_eq!(back.len(), lib.len());
        assert_eq!(back.action_id("a1"), lib.action_id("a1"));
        assert_eq!(back.implementations(), lib.implementations());
    }

    #[test]
    fn implementation_lookup() {
        let lib = example_library();
        assert!(lib.implementation(ImplId::new(0)).is_some());
        assert!(lib.implementation(ImplId::new(99)).is_none());
    }
}
