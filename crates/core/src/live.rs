//! Base + delta overlay: live library mutation without a rebuild.
//!
//! The serving path wants the immutable CSR [`GoalModel`] — two flat
//! allocations per index, cache-friendly row walks — but a live library
//! grows continuously. Rather than rebuilding `O(model)` per accepted
//! implementation, new implementations land in a small append-only
//! [`DeltaSegment`] side-index that is overlaid *transparently* on the
//! base model: a [`LiveRef`] presents the pair as one logical model
//! through the [`AssocView`] trait, and every built-in strategy ranks
//! through it bit-identically to a full rebuild of the merged library
//! (proven property-style in `tests/live_overlay.rs`).
//!
//! ## Why the overlay is exact
//!
//! Delta implementation ids are a dense suffix of the base id space
//! (`base 0..B`, `delta B..`), so every merged posting list is
//! `base_row ⧺ delta_row` — still strictly increasing, in exactly the
//! order `GoalModel::build` would emit after a merge. Integer partial
//! sums (Breadth), total-order sorts (Focus) and exact count vectors
//! (Best Match) are all insensitive to the row being split in two, so
//! the overlay read path reproduces the rebuilt model's rankings
//! bit-for-bit.
//!
//! ## Allocation discipline
//!
//! A [`LiveRef`] with an empty delta walks the identical slices the
//! plain model path walks — zero heap traffic (pinned by
//! `tests/alloc_counting.rs`). A non-empty delta adds `HashMap` *reads*
//! into the segment's side-indexes; only mutating the segment itself
//! (an admin-rate append) allocates.

use crate::error::{Error, Result};
use crate::ids::{ActionId, GoalId, ImplId};
use crate::library::GoalLibrary;
use crate::model::GoalModel;
use crate::setops;
use std::collections::HashMap;

/// Read access to one logical association model — either a plain
/// [`GoalModel`] or a base + [`DeltaSegment`] overlay.
///
/// The trait mirrors the closed accessor surface the ranking strategies
/// use. Posting-list reads come in two parts (`base`, `delta`) so the
/// overlay never has to materialise a merged row; for a plain model the
/// second part is always empty.
pub trait AssocView {
    /// Number of actions `|𝒜|` (dictionary size).
    fn num_actions(&self) -> usize;
    /// Number of goals `|𝒢|`.
    fn num_goals(&self) -> usize;
    /// Number of implementations `|L|`.
    fn num_impls(&self) -> usize;
    /// `GI-A-idx[p]`: the activity of implementation `p`.
    fn impl_actions(&self, p: ImplId) -> &[u32];
    /// `GI-G-idx[p]`: the goal implementation `p` fulfils.
    fn impl_goal(&self, p: ImplId) -> GoalId;
    /// `A-GI-idx[a]` split as (base row, delta row); both strictly
    /// increasing, every delta id greater than every base id.
    fn action_impls_parts(&self, a: ActionId) -> (&[u32], &[u32]);
    /// Inverse `GI-G-idx[g]` split as (base row, delta row).
    fn goal_impls_parts(&self, g: GoalId) -> (&[u32], &[u32]);
}

impl AssocView for GoalModel {
    fn num_actions(&self) -> usize {
        GoalModel::num_actions(self)
    }

    fn num_goals(&self) -> usize {
        GoalModel::num_goals(self)
    }

    fn num_impls(&self) -> usize {
        GoalModel::num_impls(self)
    }

    fn impl_actions(&self, p: ImplId) -> &[u32] {
        GoalModel::impl_actions(self, p)
    }

    fn impl_goal(&self, p: ImplId) -> GoalId {
        GoalModel::impl_goal(self, p)
    }

    fn action_impls_parts(&self, a: ActionId) -> (&[u32], &[u32]) {
        (GoalModel::action_impls(self, a), &[])
    }

    fn goal_impls_parts(&self, g: GoalId) -> (&[u32], &[u32]) {
        (GoalModel::goal_impls(self, g), &[])
    }
}

/// Implementation space of an activity over any view:
/// `IS(H) = ∪_{a∈H} IS(a)`, into a caller-owned buffer (cleared first).
/// Matches [`GoalModel::implementation_space_into`] exactly on a plain
/// model.
pub fn implementation_space_into<V: AssocView + ?Sized>(
    view: &V,
    activity: &[u32],
    out: &mut Vec<u32>,
) {
    out.clear();
    for &a in activity {
        let a = ActionId::new(a);
        if a.index() < view.num_actions() {
            let (base, delta) = view.action_impls_parts(a);
            out.extend_from_slice(base);
            out.extend_from_slice(delta);
        }
    }
    setops::normalize(out);
}

/// The distinct goals of a pre-computed implementation set over any
/// view, into a caller-owned buffer (cleared first).
pub fn goals_of_impls_into<V: AssocView + ?Sized>(view: &V, impls: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.extend(impls.iter().map(|&p| view.impl_goal(ImplId::new(p)).raw()));
    setops::normalize(out);
}

/// Action space of an activity over any view from a pre-computed
/// `IS(H)`, into a caller-owned buffer (cleared first). Matches
/// [`GoalModel::action_space_into`] exactly on a plain model.
pub fn action_space_into<V: AssocView + ?Sized>(
    view: &V,
    activity: &[u32],
    impl_space: &[u32],
    out: &mut Vec<u32>,
) {
    out.clear();
    for &p in impl_space {
        out.extend_from_slice(view.impl_actions(ImplId::new(p)));
    }
    setops::normalize(out);
    out.retain(|&x| !setops::contains(activity, x));
}

/// An append-only staging segment holding implementations accepted
/// since the base model was compiled.
///
/// Implementation ids continue the base id space: the first staged
/// implementation gets id `first_impl` (the base's `num_impls`), the
/// next `first_impl + 1`, and so on — a dense suffix. Postings are kept
/// in sparse side-indexes (`HashMap` keyed by action/goal id) whose
/// rows stay strictly increasing because ids are handed out in
/// increasing order; a lookup miss costs one hash probe and zero
/// allocations.
///
/// An empty action row is a tombstone (only reachable through
/// [`crate::DynamicGoalModel::remove_implementation`] in ingestion
/// mode — the serving overlay is append-only).
#[derive(Debug, Clone, Default)]
pub struct DeltaSegment {
    /// First implementation id owned by this segment (= base impl count).
    first_impl: u32,
    /// Staged impl (local order) → sorted actions; empty = tombstone.
    impl_actions: Vec<Vec<u32>>,
    /// Staged impl (local order) → goal id.
    impl_goal: Vec<u32>,
    /// Goal id → sorted staged implementation ids (global).
    goal_impls: HashMap<u32, Vec<u32>>,
    /// Action id → sorted staged implementation ids (global).
    action_impls: HashMap<u32, Vec<u32>>,
    /// Merged action-space extent (≥ the base's `num_actions`).
    num_actions: usize,
    /// Merged goal-space extent (≥ the base's `num_goals`).
    num_goals: usize,
    /// Staged implementations that are not tombstoned.
    live: usize,
}

impl DeltaSegment {
    /// An empty segment whose id spaces start from the given extents.
    pub fn new(first_impl: u32, num_actions: usize, num_goals: usize) -> Self {
        Self {
            first_impl,
            num_actions,
            num_goals,
            ..Self::default()
        }
    }

    /// An empty segment continuing `base`'s id spaces.
    pub fn for_base(base: &GoalModel) -> Self {
        Self::new(
            u32::try_from(base.num_impls()).unwrap_or(u32::MAX),
            base.num_actions(),
            base.num_goals(),
        )
    }

    /// Stages one implementation, growing the action/goal extents as
    /// needed. Returns the new implementation's (global) id.
    pub fn append(&mut self, goal: GoalId, actions: Vec<ActionId>) -> Result<ImplId> {
        let mut acts: Vec<u32> = actions.into_iter().map(ActionId::raw).collect();
        setops::normalize(&mut acts);
        let Some(&last_action) = acts.last() else {
            return Err(Error::EmptyImplementation {
                goal: goal.to_string(),
            });
        };
        let pid = self.first_impl + u32::try_from(self.impl_actions.len()).unwrap_or(u32::MAX);
        self.num_actions = self.num_actions.max(ActionId::new(last_action).index() + 1);
        self.num_goals = self.num_goals.max(goal.index() + 1);
        self.goal_impls.entry(goal.raw()).or_default().push(pid);
        for &a in &acts {
            self.action_impls.entry(a).or_default().push(pid);
        }
        self.impl_actions.push(acts);
        self.impl_goal.push(goal.raw());
        self.live += 1;
        Ok(ImplId::new(pid))
    }

    /// Position of a segment-owned implementation id inside the staged
    /// vectors (callers have checked `p.raw() >= self.first_impl`).
    fn local(&self, p: ImplId) -> usize {
        p.index() - ImplId::new(self.first_impl).index()
    }

    /// Tombstones a staged implementation and purges its postings.
    /// Idempotent for already-tombstoned ids; ids outside the segment
    /// (base-era or never assigned) are an error.
    pub fn remove(&mut self, id: ImplId) -> Result<()> {
        if id.raw() < self.first_impl {
            return Err(Error::FrozenImplementation(id.raw()));
        }
        let local = self.local(id);
        let slot = self
            .impl_actions
            .get_mut(local)
            .ok_or(Error::UnknownGoal(id.raw()))?;
        if slot.is_empty() {
            return Ok(()); // already tombstoned
        }
        let actions = std::mem::take(slot);
        let goal = self.impl_goal[local];
        if let Some(row) = self.goal_impls.get_mut(&goal) {
            row.retain(|&p| p != id.raw());
        }
        for &a in &actions {
            if let Some(row) = self.action_impls.get_mut(&a) {
                row.retain(|&p| p != id.raw());
            }
        }
        self.live -= 1;
        Ok(())
    }

    /// First implementation id owned by the segment.
    pub fn first_impl(&self) -> u32 {
        self.first_impl
    }

    /// One past the last assigned implementation id.
    pub fn next_impl(&self) -> u32 {
        self.first_impl + u32::try_from(self.impl_actions.len()).unwrap_or(u32::MAX)
    }

    /// Number of live (non-tombstoned) staged implementations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the segment stages no live implementation.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Merged action-space extent.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Merged goal-space extent.
    pub fn num_goals(&self) -> usize {
        self.num_goals
    }

    /// Staged postings of action `a` (global ids; empty on a miss).
    pub fn action_impls(&self, a: ActionId) -> &[u32] {
        self.action_impls
            .get(&a.raw())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Staged implementations of goal `g` (global ids; empty on a miss).
    pub fn goal_impls(&self, g: GoalId) -> &[u32] {
        self.goal_impls
            .get(&g.raw())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The activity of staged implementation `p` (global id).
    pub fn impl_actions(&self, p: ImplId) -> &[u32] {
        &self.impl_actions[self.local(p)]
    }

    /// The goal of staged implementation `p` (global id).
    pub fn impl_goal(&self, p: ImplId) -> GoalId {
        GoalId::new(self.impl_goal[self.local(p)])
    }

    /// Iterates the live staged implementations in id order as
    /// `(goal, actions)` — the merge/persistence order.
    pub fn staged(&self) -> impl Iterator<Item = (GoalId, &[u32])> + '_ {
        self.impl_actions
            .iter()
            .zip(&self.impl_goal)
            .filter(|(acts, _)| !acts.is_empty())
            .map(|(acts, &g)| (GoalId::new(g), acts.as_slice()))
    }

    /// Approximate heap footprint of the segment in bytes.
    pub fn memory_bytes(&self) -> usize {
        let posting = std::mem::size_of::<u32>();
        let staged: usize = self.impl_actions.iter().map(|r| r.len() * posting).sum();
        let inverted: usize = self
            .goal_impls
            .values()
            .chain(self.action_impls.values())
            .map(|r| r.len() * posting)
            .sum();
        staged + inverted + self.impl_goal.len() * posting
    }
}

/// A borrowed base + delta overlay presenting one logical model.
///
/// `Copy`, two pointers wide — built per request from whatever snapshot
/// the caller holds. Either side may be absent: a solid model has no
/// delta, a freshly-ingesting [`crate::DynamicGoalModel`] has no base.
#[derive(Clone, Copy)]
pub struct LiveRef<'a> {
    base: Option<&'a GoalModel>,
    delta: Option<&'a DeltaSegment>,
}

impl<'a> LiveRef<'a> {
    /// A view of a plain model with no staged mutations.
    pub fn solid(base: &'a GoalModel) -> Self {
        Self {
            base: Some(base),
            delta: None,
        }
    }

    /// A view of a base model with a staged overlay. An empty delta is
    /// dropped so the read path degenerates to the solid case.
    pub fn overlay(base: &'a GoalModel, delta: &'a DeltaSegment) -> Self {
        Self {
            base: Some(base),
            delta: (!delta.is_empty()).then_some(delta),
        }
    }

    /// A view over optional parts — the shard plane's entry point,
    /// where a shard may be empty (no base) yet hold staged appends.
    pub fn from_parts(base: Option<&'a GoalModel>, delta: Option<&'a DeltaSegment>) -> Self {
        Self {
            base,
            delta: delta.filter(|d| !d.is_empty()),
        }
    }

    /// The base model, if any.
    pub fn base(&self) -> Option<&'a GoalModel> {
        self.base
    }

    /// The staged (non-empty) delta, if any.
    pub fn delta(&self) -> Option<&'a DeltaSegment> {
        self.delta
    }

    /// Whether there is nothing to rank over at all.
    pub fn is_vacant(&self) -> bool {
        self.base.is_none() && self.delta.is_none()
    }

    fn split_at(&self) -> u32 {
        match self.delta {
            Some(d) => d.first_impl(),
            None => u32::MAX,
        }
    }

    /// Materialises the merged library `base ⊕ delta` — the compaction
    /// input. Implementations appear in global id order (base first,
    /// then live staged ones), so a model built from it assigns every
    /// surviving implementation its overlay id (exact when no staged
    /// implementation is tombstoned).
    pub fn to_library(&self) -> Result<GoalLibrary> {
        let mut impls: Vec<(GoalId, Vec<ActionId>)> = Vec::with_capacity(self.num_impls());
        if let Some(base) = self.base {
            for p in 0..base.num_impls() {
                let p = ImplId::new(u32::try_from(p).unwrap_or(u32::MAX));
                impls.push((
                    base.impl_goal(p),
                    base.impl_actions(p)
                        .iter()
                        .copied()
                        .map(ActionId::new)
                        .collect(),
                ));
            }
        }
        if let Some(delta) = self.delta {
            for (g, acts) in delta.staged() {
                impls.push((g, acts.iter().copied().map(ActionId::new).collect()));
            }
        }
        GoalLibrary::from_id_implementations(
            u32::try_from(self.num_actions()).unwrap_or(u32::MAX),
            u32::try_from(self.num_goals()).unwrap_or(u32::MAX),
            impls,
        )
    }

    /// Compiles the merged model — what a background compaction swaps
    /// in. Bit-identical to ranking through the overlay (the property
    /// `tests/live_overlay.rs` pins).
    // goalrec-lint:allow(hot-path-alloc): compaction input — built on the supervisor thread; the only serving-path caller is the default `rank_live_into` fallback for third-party strategies (every built-in overrides it with an allocation-free overlay read)
    pub fn to_model(&self) -> Result<GoalModel> {
        GoalModel::build(&self.to_library()?)
    }
}

impl AssocView for LiveRef<'_> {
    fn num_actions(&self) -> usize {
        match (self.delta, self.base) {
            (Some(d), _) => d.num_actions(),
            (None, Some(b)) => b.num_actions(),
            (None, None) => 0,
        }
    }

    fn num_goals(&self) -> usize {
        match (self.delta, self.base) {
            (Some(d), _) => d.num_goals(),
            (None, Some(b)) => b.num_goals(),
            (None, None) => 0,
        }
    }

    fn num_impls(&self) -> usize {
        match (self.delta, self.base) {
            (Some(d), _) => ImplId::new(d.next_impl()).index(),
            (None, Some(b)) => b.num_impls(),
            (None, None) => 0,
        }
    }

    fn impl_actions(&self, p: ImplId) -> &[u32] {
        if p.raw() < self.split_at() {
            match self.base {
                Some(b) => b.impl_actions(p),
                None => &[],
            }
        } else {
            match self.delta {
                Some(d) => d.impl_actions(p),
                None => &[],
            }
        }
    }

    fn impl_goal(&self, p: ImplId) -> GoalId {
        if p.raw() < self.split_at() {
            match self.base {
                Some(b) => b.impl_goal(p),
                None => GoalId::new(0),
            }
        } else {
            match self.delta {
                Some(d) => d.impl_goal(p),
                None => GoalId::new(0),
            }
        }
    }

    fn action_impls_parts(&self, a: ActionId) -> (&[u32], &[u32]) {
        let base = match self.base {
            Some(b) if a.index() < b.num_actions() => b.action_impls(a),
            _ => &[],
        };
        let delta = match self.delta {
            Some(d) => d.action_impls(a),
            None => &[],
        };
        (base, delta)
    }

    fn goal_impls_parts(&self, g: GoalId) -> (&[u32], &[u32]) {
        let base = match self.base {
            Some(b) if g.index() < b.num_goals() => b.goal_impls(g),
            _ => &[],
        };
        let delta = match self.delta {
            Some(d) => d.goal_impls(g),
            None => &[],
        };
        (base, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;

    /// Example 3.2 / Figure 1 model.
    fn base() -> GoalModel {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        GoalModel::build(&b.build().unwrap()).unwrap()
    }

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn solid_view_matches_the_model() {
        let m = base();
        let live = LiveRef::solid(&m);
        assert_eq!(AssocView::num_actions(&live), m.num_actions());
        assert_eq!(AssocView::num_impls(&live), 5);
        assert_eq!(
            live.action_impls_parts(ActionId::new(0)),
            (m.action_impls(ActionId::new(0)), &[][..])
        );
        let mut got = Vec::new();
        let mut want = Vec::new();
        implementation_space_into(&live, &[1], &mut got);
        m.implementation_space_into(&[1], &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn delta_extends_every_index_as_a_suffix() {
        let m = base();
        let mut d = DeltaSegment::for_base(&m);
        assert_eq!(d.first_impl(), 5);
        // New impl: goal g1 (id 0), actions a1 + a new action a7 (id 6).
        let p = d.append(GoalId::new(0), ids(&[0, 6])).unwrap();
        assert_eq!(p, ImplId::new(5));
        assert_eq!(d.num_actions(), 7);
        let live = LiveRef::overlay(&m, &d);
        assert_eq!(AssocView::num_impls(&live), 6);
        assert_eq!(AssocView::num_actions(&live), 7);
        // a1's posting list grows by the suffix [5].
        let (b, extra) = live.action_impls_parts(ActionId::new(0));
        assert_eq!(b, &[0, 1, 2, 4]);
        assert_eq!(extra, &[5]);
        // The brand-new action only exists in the delta.
        let (b, extra) = live.action_impls_parts(ActionId::new(6));
        assert!(b.is_empty());
        assert_eq!(extra, &[5]);
        // Goal row likewise.
        let (b, extra) = live.goal_impls_parts(GoalId::new(0));
        assert_eq!(b, &[0, 1]);
        assert_eq!(extra, &[5]);
        assert_eq!(AssocView::impl_actions(&live, p), &[0, 6]);
        assert_eq!(AssocView::impl_goal(&live, p), GoalId::new(0));
    }

    #[test]
    fn empty_delta_overlay_degenerates_to_solid() {
        let m = base();
        let d = DeltaSegment::for_base(&m);
        let live = LiveRef::overlay(&m, &d);
        assert!(live.delta().is_none());
        assert_eq!(AssocView::num_impls(&live), 5);
    }

    #[test]
    fn spaces_through_the_overlay_match_a_merged_rebuild() {
        let m = base();
        let mut d = DeltaSegment::for_base(&m);
        d.append(GoalId::new(1), ids(&[1, 6])).unwrap();
        d.append(GoalId::new(4), ids(&[0, 7])).unwrap();
        let live = LiveRef::overlay(&m, &d);
        let merged = live.to_model().unwrap();
        for h in [vec![0u32], vec![1], vec![6], vec![0, 7], vec![9]] {
            let mut got = Vec::new();
            implementation_space_into(&live, &h, &mut got);
            assert_eq!(got, merged.implementation_space(&h), "IS H={h:?}");
            let mut goals = Vec::new();
            goals_of_impls_into(&live, &got, &mut goals);
            let mut want_goals = Vec::new();
            merged.goals_of_impls_into(&got, &mut want_goals);
            assert_eq!(goals, want_goals, "GS H={h:?}");
            let mut acts = Vec::new();
            action_space_into(&live, &h, &got, &mut acts);
            assert_eq!(acts, merged.action_space(&h), "AS H={h:?}");
        }
    }

    #[test]
    fn to_library_round_trips_ids() {
        let m = base();
        let mut d = DeltaSegment::for_base(&m);
        d.append(GoalId::new(0), ids(&[2, 6])).unwrap();
        let live = LiveRef::overlay(&m, &d);
        let merged = live.to_model().unwrap();
        assert_eq!(merged.num_impls(), 6);
        // Overlay ids survive the merge: every impl reads identically.
        for p in 0..6u32 {
            let p = ImplId::new(p);
            assert_eq!(merged.impl_actions(p), AssocView::impl_actions(&live, p));
            assert_eq!(merged.impl_goal(p), AssocView::impl_goal(&live, p));
        }
    }

    #[test]
    fn remove_is_delta_only_and_purges_postings() {
        let m = base();
        let mut d = DeltaSegment::for_base(&m);
        let p = d.append(GoalId::new(0), ids(&[0, 6])).unwrap();
        assert!(matches!(
            d.remove(ImplId::new(0)),
            Err(Error::FrozenImplementation(0))
        ));
        d.remove(p).unwrap();
        assert!(d.is_empty());
        assert!(d.action_impls(ActionId::new(6)).is_empty());
        assert!(d.goal_impls(GoalId::new(0)).is_empty());
        d.remove(p).unwrap(); // idempotent
        assert!(matches!(
            d.remove(ImplId::new(99)),
            Err(Error::UnknownGoal(99))
        ));
    }

    #[test]
    fn append_rejects_empty_and_dedups() {
        let mut d = DeltaSegment::new(0, 0, 0);
        assert!(d.append(GoalId::new(0), vec![]).is_err());
        let p = d.append(GoalId::new(2), ids(&[3, 1, 3])).unwrap();
        assert_eq!(d.impl_actions(p), &[1, 3]);
        assert_eq!(d.num_goals(), 3);
        assert_eq!(d.num_actions(), 4);
    }

    #[test]
    fn delta_only_view_serves_without_a_base() {
        let mut d = DeltaSegment::new(0, 0, 0);
        d.append(GoalId::new(0), ids(&[0, 1])).unwrap();
        d.append(GoalId::new(1), ids(&[0])).unwrap();
        let live = LiveRef::from_parts(None, Some(&d));
        let mut impls = Vec::new();
        implementation_space_into(&live, &[0], &mut impls);
        assert_eq!(impls, vec![0, 1]);
        let mut goals = Vec::new();
        goals_of_impls_into(&live, &impls, &mut goals);
        assert_eq!(goals, vec![0, 1]);
    }

    #[test]
    fn memory_accounting_positive() {
        let m = base();
        let mut d = DeltaSegment::for_base(&m);
        assert_eq!(d.memory_bytes(), 0);
        d.append(GoalId::new(0), ids(&[0, 6])).unwrap();
        assert!(d.memory_bytes() > 0);
    }
}
