//! The association-based goal model (§4) — the compiled index structures.
//!
//! The paper materialises the library `L` into a set of indexes so that goal
//! and action spaces can be formed "in real time" (Eq. 1–2):
//!
//! * `GI-A-idx` — implementation id → its activity (sorted action ids);
//! * `GI-G-idx` — implementation id → its goal, plus the inverse goal →
//!   implementation ids;
//! * `A-GI-idx` — action id → the implementation ids it contributes to
//!   (the action's *implementation space* `IS(a)`).
//!
//! [`GoalModel`] stores every posting list as a strictly increasing boxed
//! `u32` slice, which makes the set algebra of [`crate::setops`] directly
//! applicable and keeps the whole model in three flat allocations per index.

use crate::error::{Error, Result};
use crate::ids::{ActionId, GoalId, ImplId};
use crate::library::{actions_as_raw, GoalLibrary};
use crate::setops;
use goalrec_obs::{self as obs, names, Timer};

/// The compiled association-based goal model.
///
/// Hypergraph reading (Fig. 2 of the paper): every implementation is a
/// hyperedge connecting its actions, labelled by its goal. The model is
/// immutable after construction; rebuilding after library changes is the
/// intended workflow (construction is a single linear pass).
#[derive(Debug, Clone)]
pub struct GoalModel {
    /// `GI-A-idx`: implementation → sorted actions.
    impl_actions: Vec<Box<[u32]>>,
    /// `GI-G-idx` (forward): implementation → goal.
    impl_goal: Vec<u32>,
    /// `GI-G-idx` (inverse): goal → sorted implementation ids.
    goal_impls: Vec<Box<[u32]>>,
    /// `A-GI-idx`: action → sorted implementation ids (`IS(a)`).
    action_impls: Vec<Box<[u32]>>,
    num_actions: usize,
    num_goals: usize,
}

impl GoalModel {
    /// Compiles the index structures from a library.
    ///
    /// Cost: `O(Σ|A_p|)` per phase — a linear pass per index. Each phase
    /// records a `model.build.<index>` span in the metrics registry
    /// (`a_idx`, `g_idx`, `gi_a_idx`, `gi_g_idx`, `a_gi_idx`), with the
    /// whole build under `model.build.total`.
    pub fn build(library: &GoalLibrary) -> Result<Self> {
        if library.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        let _total = Timer::scoped(names::MODEL_BUILD_TOTAL);
        obs::counter(names::MODEL_BUILDS).inc();
        let num_actions = library.num_actions();
        let num_goals = library.num_goals();
        let impls = library.implementations();

        // A-idx: per-action occurrence counts, sizing the A-GI posting
        // lists so the fill below never reallocates.
        let span = Timer::scoped(names::MODEL_BUILD_A_IDX);
        let mut action_counts = vec![0usize; num_actions];
        for imp in impls {
            for a in &imp.actions {
                action_counts[a.index()] += 1;
            }
        }
        drop(span);

        // G-idx: per-goal implementation counts, sizing the inverse
        // GI-G posting lists.
        let span = Timer::scoped(names::MODEL_BUILD_G_IDX);
        let mut goal_counts = vec![0usize; num_goals];
        for imp in impls {
            goal_counts[imp.goal.index()] += 1;
        }
        drop(span);

        // GI-A-idx: forward implementation → activity index.
        let span = Timer::scoped(names::MODEL_BUILD_GI_A_IDX);
        let impl_actions: Vec<Box<[u32]>> = impls
            .iter()
            .map(|imp| actions_as_raw(imp).to_vec().into_boxed_slice())
            .collect();
        drop(span);

        // GI-G-idx: forward goal labels plus the inverse goal →
        // implementation lists. The counting-sort style fill keeps the
        // posting lists sorted because implementation ids are visited in
        // increasing order.
        let span = Timer::scoped(names::MODEL_BUILD_GI_G_IDX);
        let mut impl_goal = Vec::with_capacity(impls.len());
        let mut goal_impls: Vec<Vec<u32>> =
            goal_counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (pid, imp) in impls.iter().enumerate() {
            impl_goal.push(imp.goal.raw());
            goal_impls[imp.goal.index()].push(pid as u32);
        }
        drop(span);

        // A-GI-idx: action → implementation lists (`IS(a)`), same
        // counting-sort fill.
        let span = Timer::scoped(names::MODEL_BUILD_A_GI_IDX);
        let mut action_impls: Vec<Vec<u32>> = action_counts
            .iter()
            .map(|&c| Vec::with_capacity(c))
            .collect();
        for (pid, imp) in impls.iter().enumerate() {
            for a in &imp.actions {
                action_impls[a.index()].push(pid as u32);
            }
        }
        drop(span);

        let model = Self {
            impl_actions,
            impl_goal,
            goal_impls: goal_impls.into_iter().map(Vec::into_boxed_slice).collect(),
            action_impls: action_impls
                .into_iter()
                .map(Vec::into_boxed_slice)
                .collect(),
            num_actions,
            num_goals,
        };
        obs::gauge(names::MODEL_IMPLS).set(model.num_impls() as f64);
        obs::gauge(names::MODEL_ACTIONS).set(num_actions as f64);
        obs::gauge(names::MODEL_GOALS).set(num_goals as f64);
        obs::gauge(names::MODEL_MEMORY_BYTES).set(model.memory_bytes() as f64);
        #[cfg(debug_assertions)]
        model.validate()?;
        Ok(model)
    }

    /// Number of implementations `|L|`.
    #[inline]
    pub fn num_impls(&self) -> usize {
        self.impl_actions.len()
    }

    /// Number of actions `|𝒜|` (dictionary size, including actions that
    /// participate in no implementation).
    #[inline]
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of goals `|𝒢|`.
    #[inline]
    pub fn num_goals(&self) -> usize {
        self.num_goals
    }

    /// `GI-A-idx[p]`: the activity of implementation `p`.
    #[inline]
    pub fn impl_actions(&self, p: ImplId) -> &[u32] {
        &self.impl_actions[p.index()]
    }

    /// `GI-G-idx[p]`: the goal implementation `p` fulfils.
    #[inline]
    pub fn impl_goal(&self, p: ImplId) -> GoalId {
        GoalId::new(self.impl_goal[p.index()])
    }

    /// Inverse `GI-G-idx`: all implementation ids for goal `g`.
    #[inline]
    pub fn goal_impls(&self, g: GoalId) -> &[u32] {
        &self.goal_impls[g.index()]
    }

    /// `A-GI-idx[a]`: the implementation space `IS(a)` of action `a`.
    #[inline]
    pub fn action_impls(&self, a: ActionId) -> &[u32] {
        &self.action_impls[a.index()]
    }

    /// The paper's *connectivity* of one action: `|IS(a)|`.
    #[inline]
    pub fn connectivity(&self, a: ActionId) -> usize {
        self.action_impls[a.index()].len()
    }

    /// Validates that an action id belongs to the model.
    pub fn check_action(&self, a: ActionId) -> Result<()> {
        if a.index() < self.num_actions {
            Ok(())
        } else {
            Err(Error::UnknownAction(a.raw()))
        }
    }

    /// Validates that a goal id belongs to the model.
    pub fn check_goal(&self, g: GoalId) -> Result<()> {
        if g.index() < self.num_goals {
            Ok(())
        } else {
            Err(Error::UnknownGoal(g.raw()))
        }
    }

    // ------------------------------------------------------------------
    // Space operations (§4, Definitions 4.1–4.2, Eq. 1–2)
    // ------------------------------------------------------------------

    /// Implementation space of an activity: `IS(H) = ∪_{a∈H} IS(a)`,
    /// i.e. every implementation associated with the user activity
    /// (`A ∩ H ≠ ∅`).
    pub fn implementation_space(&self, activity: &[u32]) -> Vec<u32> {
        setops::union_many(
            activity
                .iter()
                .filter(|&&a| (a as usize) < self.num_actions)
                .map(|&a| &*self.action_impls[a as usize]),
        )
    }

    /// Goal space of an activity (Definition 4.1 extended to sets, Eq. 1):
    /// every goal some action of the activity contributes to.
    pub fn goal_space(&self, activity: &[u32]) -> Vec<u32> {
        let mut goals: Vec<u32> = self
            .implementation_space(activity)
            .into_iter()
            .map(|p| self.impl_goal[p as usize])
            .collect();
        setops::normalize(&mut goals);
        goals
    }

    /// Action space of an activity (Definition 4.2 extended to sets, Eq. 2):
    /// every action co-contributing with an activity action through some
    /// implementation, *excluding* the activity's own actions.
    pub fn action_space(&self, activity: &[u32]) -> Vec<u32> {
        let mut acts: Vec<u32> = Vec::new();
        for p in self.implementation_space(activity) {
            acts.extend_from_slice(&self.impl_actions[p as usize]);
        }
        setops::normalize(&mut acts);
        setops::difference(&acts, activity)
    }

    /// Goal space of a single action: `GS(a)` (Definition 4.1).
    pub fn goal_space_of_action(&self, a: ActionId) -> Vec<u32> {
        let mut goals: Vec<u32> = self.action_impls[a.index()]
            .iter()
            .map(|&p| self.impl_goal[p as usize])
            .collect();
        setops::normalize(&mut goals);
        goals
    }

    /// Action space of a single action: `AS(a)` (Definition 4.2) — all
    /// co-contributors, excluding `a` itself.
    pub fn action_space_of_action(&self, a: ActionId) -> Vec<u32> {
        let mut acts: Vec<u32> = Vec::new();
        for &p in self.action_impls[a.index()].iter() {
            acts.extend_from_slice(&self.impl_actions[p as usize]);
        }
        setops::normalize(&mut acts);
        acts.retain(|&x| x != a.raw());
        acts
    }

    /// Completeness of a goal `g` for activity `H`: the best completeness
    /// over all implementations of `g` (used by the usefulness metric of
    /// §6.1.1 C.1.3, where goal completeness after following a
    /// recommendation list is reported).
    pub fn goal_completeness(&self, g: GoalId, activity: &[u32]) -> f64 {
        self.goal_impls[g.index()]
            .iter()
            .map(|&p| {
                let acts = &*self.impl_actions[p as usize];
                setops::intersection_len(acts, activity) as f64 / acts.len() as f64
            })
            .fold(0.0, f64::max)
    }

    /// Cross-checks that the five index structures describe one library.
    ///
    /// The compiled model stores the same `(g, A)` pairs five ways (A-idx
    /// and G-idx as the dense id spaces, plus the three GI posting-list
    /// indexes); any drift between them — ids out of range, unsorted
    /// posting lists, a forward edge without its inverse — is a
    /// construction bug that would otherwise surface as silently wrong
    /// recommendations. `build` runs this check in debug builds.
    ///
    /// Cost: `O(Σ|A_p| · log)` — a membership probe per posting.
    pub fn validate(&self) -> Result<()> {
        let corrupt = |detail: String| Err(Error::CorruptModel { detail });
        if self.impl_goal.len() != self.impl_actions.len() {
            return corrupt(format!(
                "GI-G-idx covers {} impls but GI-A-idx covers {}",
                self.impl_goal.len(),
                self.impl_actions.len()
            ));
        }
        let num_impls = self.num_impls();
        for (pid, actions) in self.impl_actions.iter().enumerate() {
            if actions.is_empty() {
                return corrupt(format!("GI-A-idx[p{pid}] is empty"));
            }
            if !setops::is_strictly_sorted(actions) {
                return corrupt(format!("GI-A-idx[p{pid}] is not a strictly sorted set"));
            }
            for &a in actions.iter() {
                if a as usize >= self.num_actions {
                    return corrupt(format!("GI-A-idx[p{pid}] references unknown action a{a}"));
                }
                if !setops::contains(&self.action_impls[a as usize], pid as u32) {
                    return corrupt(format!("A-GI-idx[a{a}] is missing p{pid} from GI-A-idx"));
                }
            }
            let g = self.impl_goal[pid];
            if g as usize >= self.num_goals {
                return corrupt(format!("GI-G-idx[p{pid}] references unknown goal g{g}"));
            }
            if !setops::contains(&self.goal_impls[g as usize], pid as u32) {
                return corrupt(format!("inverse GI-G-idx[g{g}] is missing p{pid}"));
            }
        }
        for (g, impls) in self.goal_impls.iter().enumerate() {
            if !setops::is_strictly_sorted(impls) {
                return corrupt(format!("GI-G-idx[g{g}] is not a strictly sorted set"));
            }
            for &p in impls.iter() {
                if p as usize >= num_impls {
                    return corrupt(format!("GI-G-idx[g{g}] references unknown impl p{p}"));
                }
                if self.impl_goal[p as usize] != g as u32 {
                    return corrupt(format!(
                        "GI-G-idx[g{g}] lists p{p}, but p{p} fulfils g{}",
                        self.impl_goal[p as usize]
                    ));
                }
            }
        }
        for (a, impls) in self.action_impls.iter().enumerate() {
            if !setops::is_strictly_sorted(impls) {
                return corrupt(format!("A-GI-idx[a{a}] is not a strictly sorted set"));
            }
            for &p in impls.iter() {
                if p as usize >= num_impls {
                    return corrupt(format!("A-GI-idx[a{a}] references unknown impl p{p}"));
                }
                if !setops::contains(&self.impl_actions[p as usize], a as u32) {
                    return corrupt(format!("A-GI-idx[a{a}] lists p{p}, which omits a{a}"));
                }
            }
        }
        if self.goal_impls.len() != self.num_goals {
            return corrupt(format!(
                "inverse GI-G-idx covers {} goals, G-idx declares {}",
                self.goal_impls.len(),
                self.num_goals
            ));
        }
        if self.action_impls.len() != self.num_actions {
            return corrupt(format!(
                "A-GI-idx covers {} actions, A-idx declares {}",
                self.action_impls.len(),
                self.num_actions
            ));
        }
        let goal_postings: usize = self.goal_impls.iter().map(|v| v.len()).sum();
        if goal_postings != num_impls {
            return corrupt(format!(
                "inverse GI-G-idx holds {goal_postings} postings for {num_impls} impls"
            ));
        }
        Ok(())
    }

    /// Approximate heap footprint of the model in bytes. Reported by the
    /// scalability experiment alongside Fig. 7 timings.
    pub fn memory_bytes(&self) -> usize {
        let posting = |v: &Vec<Box<[u32]>>| -> usize {
            v.iter()
                .map(|b| b.len() * 4 + std::mem::size_of::<Box<[u32]>>())
                .sum()
        };
        posting(&self.impl_actions)
            + posting(&self.goal_impls)
            + posting(&self.action_impls)
            + self.impl_goal.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;

    /// Example 3.2 / Figure 1 library. Ids by insertion order:
    /// actions a1..a6 → 0..5, goals g1,g2,g3,g5 → 0..3,
    /// impls p1..p5 → 0..4.
    fn model() -> GoalModel {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        GoalModel::build(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn dimensions() {
        let m = model();
        assert_eq!(m.num_impls(), 5);
        assert_eq!(m.num_actions(), 6);
        assert_eq!(m.num_goals(), 4);
    }

    #[test]
    fn forward_indexes() {
        let m = model();
        assert_eq!(m.impl_actions(ImplId::new(0)), &[0, 1]);
        assert_eq!(m.impl_actions(ImplId::new(2)), &[0, 3, 4]);
        assert_eq!(m.impl_goal(ImplId::new(0)), GoalId::new(0));
        assert_eq!(m.impl_goal(ImplId::new(4)), GoalId::new(3));
    }

    #[test]
    fn inverse_goal_index() {
        let m = model();
        assert_eq!(m.goal_impls(GoalId::new(0)), &[0, 1]); // g1 via p1, p2
        assert_eq!(m.goal_impls(GoalId::new(3)), &[4]);
    }

    #[test]
    fn action_implementation_space_matches_example_4_3() {
        let m = model();
        // Example 4.3: IS(a1) = {p1, p2, p3, p5}
        assert_eq!(m.action_impls(ActionId::new(0)), &[0, 1, 2, 4]);
        assert_eq!(m.connectivity(ActionId::new(0)), 4);
    }

    #[test]
    fn goal_space_matches_example_4_3() {
        let m = model();
        // GS(a1) = {g1, g2, g5} as ids {0, 1, 3}
        assert_eq!(m.goal_space_of_action(ActionId::new(0)), vec![0, 1, 3]);
    }

    #[test]
    fn action_space_matches_example_4_3() {
        let m = model();
        // AS(a1) = {a2, a3, a4, a5, a6} as ids {1, 2, 3, 4, 5}
        assert_eq!(
            m.action_space_of_action(ActionId::new(0)),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn activity_spaces() {
        let m = model();
        // H = {a2} (id 1) participates in p1, p5.
        assert_eq!(m.implementation_space(&[1]), vec![0, 4]);
        assert_eq!(m.goal_space(&[1]), vec![0, 3]); // g1, g5
                                                    // AS({a2}) = actions of p1 ∪ p5 minus a2 = {a1, a6}.
        assert_eq!(m.action_space(&[1]), vec![0, 5]);
    }

    #[test]
    fn activity_space_of_unknown_or_empty_activity() {
        let m = model();
        assert!(m.implementation_space(&[]).is_empty());
        assert!(m.goal_space(&[]).is_empty());
        assert!(m.action_space(&[]).is_empty());
        // Out-of-range ids are ignored rather than panicking: activities may
        // legitimately contain actions the library never saw.
        assert!(m.implementation_space(&[999]).is_empty());
    }

    #[test]
    fn goal_completeness_takes_best_implementation() {
        let m = model();
        // g1 has p1={a1,a2}, p2={a1,a3}. H={a1,a2} completes p1 fully.
        assert_eq!(m.goal_completeness(GoalId::new(0), &[0, 1]), 1.0);
        // H={a1} gives 1/2 on both.
        assert_eq!(m.goal_completeness(GoalId::new(0), &[0]), 0.5);
        // g2 = p3 = {a1,a4,a5}; H={a1} → 1/3.
        assert!((m.goal_completeness(GoalId::new(1), &[0]) - 1.0 / 3.0).abs() < 1e-12);
        // No overlap → 0.
        assert_eq!(m.goal_completeness(GoalId::new(2), &[0]), 0.0);
    }

    #[test]
    fn check_bounds() {
        let m = model();
        assert!(m.check_action(ActionId::new(5)).is_ok());
        assert!(m.check_action(ActionId::new(6)).is_err());
        assert!(m.check_goal(GoalId::new(3)).is_ok());
        assert!(m.check_goal(GoalId::new(4)).is_err());
    }

    #[test]
    fn memory_accounting_positive() {
        let m = model();
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn build_rejects_empty_library() {
        let lib = crate::library::GoalLibrary::default();
        assert!(GoalModel::build(&lib).is_err());
    }

    #[test]
    fn validate_accepts_freshly_built_model() {
        assert_eq!(model().validate(), Ok(()));
    }

    #[test]
    fn validate_detects_a_corrupted_index() {
        // Corrupt each index structure in turn; every corruption must be
        // caught as a cross-consistency violation.
        let mut m = model();
        m.impl_goal[0] = 3; // p1 claims g5, inverse index still lists it under g1
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        m.goal_impls[0] = vec![0].into_boxed_slice(); // drop p2 from g1's inverse list
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        m.action_impls[0] = vec![0, 1, 2].into_boxed_slice(); // drop p5 from IS(a1)
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        m.impl_actions[2] = vec![3, 0, 4].into_boxed_slice(); // unsorted activity
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        m.num_actions = 3; // A-idx disagrees with the posting tables
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));
    }
}
