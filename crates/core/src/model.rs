//! The association-based goal model (§4) — the compiled index structures.
//!
//! The paper materialises the library `L` into a set of indexes so that goal
//! and action spaces can be formed "in real time" (Eq. 1–2):
//!
//! * `GI-A-idx` — implementation id → its activity (sorted action ids);
//! * `GI-G-idx` — implementation id → its goal, plus the inverse goal →
//!   implementation ids;
//! * `A-GI-idx` — action id → the implementation ids it contributes to
//!   (the action's *implementation space* `IS(a)`).
//!
//! [`GoalModel`] stores each posting-list index in CSR form (see
//! [`crate::csr`]): one flat offsets array plus one flat data array, so a
//! whole index is two allocations and walking `IS(H)` streams contiguous
//! memory. Every row is a strictly increasing `u32` slice, which makes the
//! set algebra of [`crate::setops`] directly applicable.

use crate::csr::{self, Csr, CsrBacking};
use crate::error::{Error, Result};
use crate::ids::{ActionId, GoalId, ImplId};
use crate::library::{actions_as_raw, GoalLibrary, LibraryStats};
use crate::setops;
use goalrec_obs::{self as obs, names, Timer};

/// The compiled association-based goal model.
///
/// Hypergraph reading (Fig. 2 of the paper): every implementation is a
/// hyperedge connecting its actions, labelled by its goal. The model is
/// immutable after construction; rebuilding after library changes is the
/// intended workflow (construction is a handful of linear passes, the
/// counting-sort fills running partition-parallel).
#[derive(Debug, Clone)]
pub struct GoalModel {
    /// `GI-A-idx`: implementation → sorted actions.
    impl_actions: Csr,
    /// `GI-G-idx` (forward): implementation → goal.
    impl_goal: CsrBacking,
    /// `GI-G-idx` (inverse): goal → sorted implementation ids.
    goal_impls: Csr,
    /// `A-GI-idx`: action → sorted implementation ids (`IS(a)`).
    action_impls: Csr,
    num_actions: usize,
    num_goals: usize,
}

impl GoalModel {
    /// Compiles the index structures from a library.
    ///
    /// Cost: `O(Σ|A_p|)` per phase — a linear pass per index, with the two
    /// counting-sort fills (inverse `GI-G-idx` and `A-GI-idx`) split into
    /// per-thread count/fill partitions that produce output identical to
    /// the sequential build. Each phase records a `model.build.<index>`
    /// span in the metrics registry (`a_idx`, `g_idx`, `gi_a_idx`,
    /// `gi_g_idx`, `a_gi_idx`), with the whole build under
    /// `model.build.total`.
    pub fn build(library: &GoalLibrary) -> Result<Self> {
        if library.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        let _total = Timer::scoped(names::MODEL_BUILD_TOTAL);
        obs::counter(names::MODEL_BUILDS).inc();
        let impls = library.implementations();

        // GI-A-idx: forward implementation → activity index, a parallel
        // concatenation into CSR.
        let span = Timer::scoped(names::MODEL_BUILD_GI_A_IDX);
        let impl_actions = csr::concat(impls.len(), |i| actions_as_raw(&impls[i]));
        let impl_goal: Vec<u32> = impls.iter().map(|imp| imp.goal.raw()).collect();
        drop(span);

        Self::assemble(
            library.num_actions(),
            library.num_goals(),
            impl_goal.into(),
            impl_actions,
        )
    }

    /// Assembles a model directly from pre-built flat `GI-A-idx` CSR arrays
    /// plus the forward goal labels — the zero-copy entry point the binary
    /// `GRLB` reader uses to load a model without per-implementation
    /// allocations.
    ///
    /// `offsets`/`data` describe implementation `p`'s activity as
    /// `data[offsets[p]..offsets[p + 1]]`. The arrays are fully validated
    /// (shape, per-row strict sortedness, id ranges) before the inverse
    /// indexes are built, so corrupt input yields [`Error::CorruptModel`]
    /// rather than a wrong model.
    pub fn from_csr_parts(
        num_actions: usize,
        num_goals: usize,
        impl_goal: Vec<u32>,
        offsets: Vec<u32>,
        data: Vec<u32>,
    ) -> Result<Self> {
        if impl_goal.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        let _total = Timer::scoped(names::MODEL_BUILD_TOTAL);
        obs::counter(names::MODEL_BUILDS).inc();
        let corrupt = |detail: String| Error::CorruptModel { detail };

        // The forward index is handed to us, so the GI-A phase is pure
        // validation here.
        let span = Timer::scoped(names::MODEL_BUILD_GI_A_IDX);
        let impl_actions = Csr::from_parts(offsets, data);
        impl_actions
            .check_shape(impl_goal.len(), "GI-A-idx")
            .map_err(corrupt)?;
        for (pid, &g) in impl_goal.iter().enumerate() {
            let actions = impl_actions.row(pid);
            if actions.is_empty() {
                return Err(corrupt(format!("GI-A-idx[p{pid}] is empty")));
            }
            if !setops::is_strictly_sorted(actions) {
                return Err(corrupt(format!(
                    "GI-A-idx[p{pid}] is not a strictly sorted set"
                )));
            }
            if let Some(&max) = actions.last() {
                if max as usize >= num_actions {
                    return Err(corrupt(format!(
                        "GI-A-idx[p{pid}] references unknown action a{max}"
                    )));
                }
            }
            if g as usize >= num_goals {
                return Err(corrupt(format!(
                    "GI-G-idx[p{pid}] references unknown goal g{g}"
                )));
            }
        }
        drop(span);

        Self::assemble(num_actions, num_goals, impl_goal.into(), impl_actions)
    }

    /// Assembles a model from all **seven** pre-built flat arrays — the
    /// forward goal labels plus offsets + data of each of the three CSR
    /// indexes — without rebuilding anything. This is the zero-copy entry
    /// point of the GRLB v2 mapped reader: every backing may borrow an
    /// `mmap`'d file in place.
    ///
    /// The arrays are fully bound-checked before the model is returned
    /// ([`GoalModel::check_structure`]: CSR shapes, offset monotonicity,
    /// per-row strict sortedness, id ranges, posting cardinalities), so a
    /// garbage file yields [`Error::CorruptModel`] and a model that passed
    /// can never index out of bounds. The `O(postings · log)` cross-index
    /// membership probes of [`GoalModel::validate`] are *not* run here —
    /// the on-disk checksums vouch that the sections are the ones a
    /// validated writer produced.
    #[allow(clippy::too_many_arguments)]
    pub fn from_backings(
        num_actions: usize,
        num_goals: usize,
        impl_goal: CsrBacking,
        ia_offsets: CsrBacking,
        ia_data: CsrBacking,
        gi_offsets: CsrBacking,
        gi_data: CsrBacking,
        ai_offsets: CsrBacking,
        ai_data: CsrBacking,
    ) -> Result<Self> {
        if impl_goal.is_empty() {
            return Err(Error::EmptyLibrary);
        }
        let model = Self {
            impl_actions: Csr::from_backings(ia_offsets, ia_data),
            impl_goal,
            goal_impls: Csr::from_backings(gi_offsets, gi_data),
            action_impls: Csr::from_backings(ai_offsets, ai_data),
            num_actions,
            num_goals,
        };
        model.check_structure()?;
        obs::counter(names::MODEL_BUILDS).inc();
        obs::gauge(names::MODEL_IMPLS).set(model.num_impls() as f64);
        obs::gauge(names::MODEL_ACTIONS).set(num_actions as f64);
        obs::gauge(names::MODEL_GOALS).set(num_goals as f64);
        obs::gauge(names::MODEL_MEMORY_BYTES).set(model.memory_bytes() as f64);
        Ok(model)
    }

    /// Shared back half of [`GoalModel::build`] and
    /// [`GoalModel::from_csr_parts`]: the counting phases (A-idx, G-idx)
    /// and the two parallel counting-sort fills producing the inverse
    /// indexes.
    fn assemble(
        num_actions: usize,
        num_goals: usize,
        impl_goal: CsrBacking,
        impl_actions: Csr,
    ) -> Result<Self> {
        let n = impl_actions.rows();

        // A-idx: per-action occurrence counts (partition-parallel), sizing
        // and positioning the A-GI fill below.
        let span = Timer::scoped(names::MODEL_BUILD_A_IDX);
        let a_plan = csr::invert_count(num_actions, n, |i, emit| {
            for &a in impl_actions.row(i) {
                emit(a);
            }
        });
        drop(span);

        // G-idx: per-goal implementation counts, sizing the inverse GI-G
        // fill.
        let span = Timer::scoped(names::MODEL_BUILD_G_IDX);
        let g_plan = csr::invert_count(num_goals, n, |i, emit| emit(impl_goal[i]));
        drop(span);

        // Inverse GI-G-idx: goal → implementation ids. The partitioned
        // counting-sort fill keeps every posting list sorted because
        // partitions cover increasing implementation ranges and each visits
        // its implementations in increasing order.
        let span = Timer::scoped(names::MODEL_BUILD_GI_G_IDX);
        let goal_impls = csr::invert_fill(&g_plan, |i, emit| emit(impl_goal[i]));
        drop(span);

        // A-GI-idx: action → implementation ids (`IS(a)`), same fill.
        let span = Timer::scoped(names::MODEL_BUILD_A_GI_IDX);
        let action_impls = csr::invert_fill(&a_plan, |i, emit| {
            for &a in impl_actions.row(i) {
                emit(a);
            }
        });
        drop(span);

        let model = Self {
            impl_actions,
            impl_goal,
            goal_impls,
            action_impls,
            num_actions,
            num_goals,
        };
        obs::gauge(names::MODEL_IMPLS).set(model.num_impls() as f64);
        obs::gauge(names::MODEL_ACTIONS).set(num_actions as f64);
        obs::gauge(names::MODEL_GOALS).set(num_goals as f64);
        obs::gauge(names::MODEL_MEMORY_BYTES).set(model.memory_bytes() as f64);
        #[cfg(debug_assertions)]
        model.validate()?;
        Ok(model)
    }

    /// Number of implementations `|L|`.
    #[inline]
    pub fn num_impls(&self) -> usize {
        self.impl_actions.rows()
    }

    /// Number of actions `|𝒜|` (dictionary size, including actions that
    /// participate in no implementation).
    #[inline]
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of goals `|𝒢|`.
    #[inline]
    pub fn num_goals(&self) -> usize {
        self.num_goals
    }

    /// `GI-A-idx[p]`: the activity of implementation `p`.
    #[inline]
    pub fn impl_actions(&self, p: ImplId) -> &[u32] {
        self.impl_actions.row(p.index())
    }

    /// `GI-G-idx[p]`: the goal implementation `p` fulfils.
    #[inline]
    pub fn impl_goal(&self, p: ImplId) -> GoalId {
        GoalId::new(self.impl_goal[p.index()])
    }

    /// Inverse `GI-G-idx`: all implementation ids for goal `g`.
    #[inline]
    pub fn goal_impls(&self, g: GoalId) -> &[u32] {
        self.goal_impls.row(g.index())
    }

    /// `A-GI-idx[a]`: the implementation space `IS(a)` of action `a`.
    #[inline]
    pub fn action_impls(&self, a: ActionId) -> &[u32] {
        self.action_impls.row(a.index())
    }

    /// The paper's *connectivity* of one action: `|IS(a)|`.
    #[inline]
    pub fn connectivity(&self, a: ActionId) -> usize {
        self.action_impls.row_len(a.index())
    }

    /// Validates that an action id belongs to the model.
    pub fn check_action(&self, a: ActionId) -> Result<()> {
        if a.index() < self.num_actions {
            Ok(())
        } else {
            Err(Error::UnknownAction(a.raw()))
        }
    }

    /// Validates that a goal id belongs to the model.
    pub fn check_goal(&self, g: GoalId) -> Result<()> {
        if g.index() < self.num_goals {
            Ok(())
        } else {
            Err(Error::UnknownGoal(g.raw()))
        }
    }

    // ------------------------------------------------------------------
    // Space operations (§4, Definitions 4.1–4.2, Eq. 1–2)
    // ------------------------------------------------------------------

    /// Implementation space of an activity: `IS(H) = ∪_{a∈H} IS(a)`,
    /// i.e. every implementation associated with the user activity
    /// (`A ∩ H ≠ ∅`).
    pub fn implementation_space(&self, activity: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.implementation_space_into(activity, &mut out);
        out
    }

    /// [`GoalModel::implementation_space`] into a caller-owned buffer
    /// (cleared first) — the allocation-free form the scratch-arena hot
    /// path uses.
    pub fn implementation_space_into(&self, activity: &[u32], out: &mut Vec<u32>) {
        out.clear();
        for &a in activity {
            if (a as usize) < self.num_actions {
                out.extend_from_slice(self.action_impls.row(a as usize));
            }
        }
        setops::normalize(out);
    }

    /// Goal space of an activity (Definition 4.1 extended to sets, Eq. 1):
    /// every goal some action of the activity contributes to.
    pub fn goal_space(&self, activity: &[u32]) -> Vec<u32> {
        let impls = self.implementation_space(activity);
        let mut goals = Vec::new();
        self.goals_of_impls_into(&impls, &mut goals);
        goals
    }

    /// The distinct goals of a pre-computed implementation set, into a
    /// caller-owned buffer (cleared first). Public so the scatter-gather
    /// layer can reproduce each shard's goal space exactly.
    pub fn goals_of_impls_into(&self, impls: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.extend(impls.iter().map(|&p| self.impl_goal[p as usize]));
        setops::normalize(out);
    }

    /// Action space of an activity (Definition 4.2 extended to sets, Eq. 2):
    /// every action co-contributing with an activity action through some
    /// implementation, *excluding* the activity's own actions.
    pub fn action_space(&self, activity: &[u32]) -> Vec<u32> {
        let impls = self.implementation_space(activity);
        let mut out = Vec::new();
        self.action_space_into(activity, &impls, &mut out);
        out
    }

    /// [`GoalModel::action_space`] from a pre-computed `IS(H)`, into a
    /// caller-owned buffer (cleared first). Public so the scatter-gather
    /// layer can enumerate per-shard candidate sets without allocating.
    pub fn action_space_into(&self, activity: &[u32], impl_space: &[u32], out: &mut Vec<u32>) {
        out.clear();
        for &p in impl_space {
            out.extend_from_slice(self.impl_actions.row(p as usize));
        }
        setops::normalize(out);
        out.retain(|&x| !setops::contains(activity, x));
    }

    /// Goal space of a single action: `GS(a)` (Definition 4.1).
    pub fn goal_space_of_action(&self, a: ActionId) -> Vec<u32> {
        let mut goals: Vec<u32> = self
            .action_impls
            .row(a.index())
            .iter()
            .map(|&p| self.impl_goal[p as usize])
            .collect();
        setops::normalize(&mut goals);
        goals
    }

    /// Action space of a single action: `AS(a)` (Definition 4.2) — all
    /// co-contributors, excluding `a` itself.
    pub fn action_space_of_action(&self, a: ActionId) -> Vec<u32> {
        let mut acts: Vec<u32> = Vec::new();
        for &p in self.action_impls.row(a.index()) {
            acts.extend_from_slice(self.impl_actions.row(p as usize));
        }
        setops::normalize(&mut acts);
        acts.retain(|&x| x != a.raw());
        acts
    }

    /// Completeness of a goal `g` for activity `H`: the best completeness
    /// over all implementations of `g` (used by the usefulness metric of
    /// §6.1.1 C.1.3, where goal completeness after following a
    /// recommendation list is reported).
    pub fn goal_completeness(&self, g: GoalId, activity: &[u32]) -> f64 {
        self.goal_impls
            .row(g.index())
            .iter()
            .map(|&p| {
                let acts = self.impl_actions.row(p as usize);
                setops::intersection_len(acts, activity) as f64 / acts.len() as f64
            })
            .fold(0.0, f64::max)
    }

    /// Cross-checks that the five index structures describe one library.
    ///
    /// First the CSR structural invariants of each flat index (offsets
    /// monotone, first 0, last equal to the data length, one row per id),
    /// then the content invariants: the compiled model stores the same
    /// `(g, A)` pairs five ways (A-idx and G-idx as the dense id spaces,
    /// plus the three GI posting-list indexes); any drift between them —
    /// ids out of range, unsorted posting lists, a forward edge without its
    /// inverse — is a construction bug that would otherwise surface as
    /// silently wrong recommendations. `build` runs this check in debug
    /// builds.
    ///
    /// Cost: `O(Σ|A_p| · log)` — a membership probe per posting.
    pub fn validate(&self) -> Result<()> {
        self.check_structure()?;
        let corrupt = |detail: String| Err(Error::CorruptModel { detail });
        let num_impls = self.num_impls();
        for pid in 0..num_impls {
            for &a in self.impl_actions.row(pid) {
                if !setops::contains(self.action_impls.row(a as usize), pid as u32) {
                    return corrupt(format!("A-GI-idx[a{a}] is missing p{pid} from GI-A-idx"));
                }
            }
            let g = self.impl_goal[pid];
            if !setops::contains(self.goal_impls.row(g as usize), pid as u32) {
                return corrupt(format!("inverse GI-G-idx[g{g}] is missing p{pid}"));
            }
        }
        for g in 0..self.num_goals {
            for &p in self.goal_impls.row(g) {
                if self.impl_goal[p as usize] != g as u32 {
                    return corrupt(format!(
                        "GI-G-idx[g{g}] lists p{p}, but p{p} fulfils g{}",
                        self.impl_goal[p as usize]
                    ));
                }
            }
        }
        for a in 0..self.num_actions {
            for &p in self.action_impls.row(a) {
                if !setops::contains(self.impl_actions.row(p as usize), a as u32) {
                    return corrupt(format!("A-GI-idx[a{a}] lists p{p}, which omits a{a}"));
                }
            }
        }
        Ok(())
    }

    /// The linear half of [`GoalModel::validate`]: CSR shapes (offsets
    /// monotone, first 0, last equal to the data length, one row per id),
    /// per-row strict sortedness, id ranges, and posting cardinalities —
    /// everything needed to guarantee that **no accessor of this model can
    /// panic or read out of bounds**, in one `O(Σ postings)` pass with no
    /// membership probes.
    ///
    /// This is the validate-before-trust gate the GRLB v2 mapped reader
    /// runs on every load: a file that passes serves safely; whether its
    /// inverse indexes also *agree* with the forward index is what the
    /// full [`GoalModel::validate`] additionally proves.
    pub fn check_structure(&self) -> Result<()> {
        let corrupt = |detail: String| Err(Error::CorruptModel { detail });
        // CSR shape first: every content check below slices rows, which is
        // only safe once the offset arrays are known to be well-formed.
        if let Err(detail) = self
            .impl_actions
            .check_shape(self.impl_goal.len(), "GI-A-idx")
        {
            return corrupt(detail);
        }
        if let Err(detail) = self
            .goal_impls
            .check_shape(self.num_goals, "inverse GI-G-idx")
        {
            return corrupt(detail);
        }
        if let Err(detail) = self.action_impls.check_shape(self.num_actions, "A-GI-idx") {
            return corrupt(detail);
        }
        let num_impls = self.num_impls();
        for pid in 0..num_impls {
            let actions = self.impl_actions.row(pid);
            if actions.is_empty() {
                return corrupt(format!("GI-A-idx[p{pid}] is empty"));
            }
            if !setops::is_strictly_sorted(actions) {
                return corrupt(format!("GI-A-idx[p{pid}] is not a strictly sorted set"));
            }
            if let Some(&max) = actions.last() {
                if max as usize >= self.num_actions {
                    return corrupt(format!("GI-A-idx[p{pid}] references unknown action a{max}"));
                }
            }
            let g = self.impl_goal[pid];
            if g as usize >= self.num_goals {
                return corrupt(format!("GI-G-idx[p{pid}] references unknown goal g{g}"));
            }
        }
        for g in 0..self.num_goals {
            let impls = self.goal_impls.row(g);
            if !setops::is_strictly_sorted(impls) {
                return corrupt(format!("GI-G-idx[g{g}] is not a strictly sorted set"));
            }
            if let Some(&max) = impls.last() {
                if max as usize >= num_impls {
                    return corrupt(format!("GI-G-idx[g{g}] references unknown impl p{max}"));
                }
            }
        }
        for a in 0..self.num_actions {
            let impls = self.action_impls.row(a);
            if !setops::is_strictly_sorted(impls) {
                return corrupt(format!("A-GI-idx[a{a}] is not a strictly sorted set"));
            }
            if let Some(&max) = impls.last() {
                if max as usize >= num_impls {
                    return corrupt(format!("A-GI-idx[a{a}] references unknown impl p{max}"));
                }
            }
        }
        let goal_postings = self.goal_impls.data.len();
        if goal_postings != num_impls {
            return corrupt(format!(
                "inverse GI-G-idx holds {goal_postings} postings for {num_impls} impls"
            ));
        }
        let action_postings = self.action_impls.data.len();
        let forward_postings = self.impl_actions.data.len();
        if action_postings != forward_postings {
            return corrupt(format!(
                "A-GI-idx holds {action_postings} postings for {forward_postings} forward postings"
            ));
        }
        Ok(())
    }

    /// Approximate heap footprint of the model in bytes: the six flat CSR
    /// arrays plus the forward goal labels. Reported by the scalability
    /// experiment alongside Fig. 7 timings.
    pub fn memory_bytes(&self) -> usize {
        self.impl_actions.memory_bytes()
            + self.goal_impls.memory_bytes()
            + self.action_impls.memory_bytes()
            + self.impl_goal.len() * std::mem::size_of::<u32>()
    }

    /// The seven flat arrays in GRLB v2 section order: forward goal
    /// labels, then offsets + data of `GI-A-idx`, inverse `GI-G-idx` and
    /// `A-GI-idx`. This is the writer-side mirror of
    /// [`GoalModel::from_backings`] — `write → read → flat_sections`
    /// round-trips bit-identically.
    pub fn flat_sections(&self) -> [&[u32]; 7] {
        [
            &self.impl_goal,
            &self.impl_actions.offsets,
            &self.impl_actions.data,
            &self.goal_impls.offsets,
            &self.goal_impls.data,
            &self.action_impls.offsets,
            &self.action_impls.data,
        ]
    }

    /// Whether any index array borrows a retained buffer (an `mmap`'d
    /// model file) instead of owning heap memory.
    pub fn is_mapped(&self) -> bool {
        self.impl_goal.is_mapped()
            || self.impl_actions.is_mapped()
            || self.goal_impls.is_mapped()
            || self.action_impls.is_mapped()
    }

    /// [`LibraryStats`] computed straight off the compiled indexes — no
    /// [`GoalLibrary`] needed. Per-action connectivity is `A-GI-idx` row
    /// lengths, per-goal counts are inverse `GI-G-idx` row lengths, and
    /// implementation lengths come from the `GI-A-idx` offsets, so a
    /// model-only boot (GRLB v2) serves the same `/v1/stats` numbers a
    /// library-built server would.
    pub fn stats(&self) -> LibraryStats {
        let num_impls = self.num_impls();
        let mut total_len = 0usize;
        let mut max_len = 0usize;
        for p in 0..num_impls {
            let len = self.impl_actions.row_len(p);
            total_len += len;
            max_len = max_len.max(len);
        }
        let mut max_connectivity = 0usize;
        let mut used_actions = 0usize;
        for a in 0..self.num_actions {
            let c = self.action_impls.row_len(a);
            max_connectivity = max_connectivity.max(c);
            if c > 0 {
                used_actions += 1;
            }
        }
        let used_goals = (0..self.num_goals)
            .filter(|&g| self.goal_impls.row_len(g) > 0)
            .count();
        LibraryStats {
            num_implementations: num_impls,
            num_actions: self.num_actions,
            num_goals: self.num_goals,
            connectivity: total_len as f64 / used_actions.max(1) as f64,
            max_connectivity,
            avg_impl_len: total_len as f64 / num_impls.max(1) as f64,
            max_impl_len: max_len,
            avg_impls_per_goal: num_impls as f64 / used_goals.max(1) as f64,
        }
    }

    /// Reconstructs a [`GoalLibrary`] (synthetic `a{i}`/`g{i}` names, as
    /// with every binary format) from the forward indexes — how a server
    /// booted from a model file recovers a library view for the cold admin
    /// paths (append merge, compaction persist).
    pub fn to_library(&self) -> Result<GoalLibrary> {
        crate::live::LiveRef::from_parts(Some(self), None).to_library()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;

    /// Example 3.2 / Figure 1 library. Ids by insertion order:
    /// actions a1..a6 → 0..5, goals g1,g2,g3,g5 → 0..3,
    /// impls p1..p5 → 0..4.
    fn model() -> GoalModel {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        GoalModel::build(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn dimensions() {
        let m = model();
        assert_eq!(m.num_impls(), 5);
        assert_eq!(m.num_actions(), 6);
        assert_eq!(m.num_goals(), 4);
    }

    #[test]
    fn forward_indexes() {
        let m = model();
        assert_eq!(m.impl_actions(ImplId::new(0)), &[0, 1]);
        assert_eq!(m.impl_actions(ImplId::new(2)), &[0, 3, 4]);
        assert_eq!(m.impl_goal(ImplId::new(0)), GoalId::new(0));
        assert_eq!(m.impl_goal(ImplId::new(4)), GoalId::new(3));
    }

    #[test]
    fn inverse_goal_index() {
        let m = model();
        assert_eq!(m.goal_impls(GoalId::new(0)), &[0, 1]); // g1 via p1, p2
        assert_eq!(m.goal_impls(GoalId::new(3)), &[4]);
    }

    #[test]
    fn action_implementation_space_matches_example_4_3() {
        let m = model();
        // Example 4.3: IS(a1) = {p1, p2, p3, p5}
        assert_eq!(m.action_impls(ActionId::new(0)), &[0, 1, 2, 4]);
        assert_eq!(m.connectivity(ActionId::new(0)), 4);
    }

    #[test]
    fn goal_space_matches_example_4_3() {
        let m = model();
        // GS(a1) = {g1, g2, g5} as ids {0, 1, 3}
        assert_eq!(m.goal_space_of_action(ActionId::new(0)), vec![0, 1, 3]);
    }

    #[test]
    fn action_space_matches_example_4_3() {
        let m = model();
        // AS(a1) = {a2, a3, a4, a5, a6} as ids {1, 2, 3, 4, 5}
        assert_eq!(
            m.action_space_of_action(ActionId::new(0)),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn activity_spaces() {
        let m = model();
        // H = {a2} (id 1) participates in p1, p5.
        assert_eq!(m.implementation_space(&[1]), vec![0, 4]);
        assert_eq!(m.goal_space(&[1]), vec![0, 3]); // g1, g5
                                                    // AS({a2}) = actions of p1 ∪ p5 minus a2 = {a1, a6}.
        assert_eq!(m.action_space(&[1]), vec![0, 5]);
    }

    #[test]
    fn activity_space_of_unknown_or_empty_activity() {
        let m = model();
        assert!(m.implementation_space(&[]).is_empty());
        assert!(m.goal_space(&[]).is_empty());
        assert!(m.action_space(&[]).is_empty());
        // Out-of-range ids are ignored rather than panicking: activities may
        // legitimately contain actions the library never saw.
        assert!(m.implementation_space(&[999]).is_empty());
    }

    #[test]
    fn space_into_buffers_are_cleared_and_reused() {
        let m = model();
        let mut buf = vec![7, 7, 7]; // stale content must vanish
        m.implementation_space_into(&[1], &mut buf);
        assert_eq!(buf, vec![0, 4]);
        let mut goals = vec![9];
        m.goals_of_impls_into(&buf, &mut goals);
        assert_eq!(goals, vec![0, 3]);
        let mut acts = vec![1, 2, 3];
        m.action_space_into(&[1], &buf, &mut acts);
        assert_eq!(acts, vec![0, 5]);
    }

    #[test]
    fn goal_completeness_takes_best_implementation() {
        let m = model();
        // g1 has p1={a1,a2}, p2={a1,a3}. H={a1,a2} completes p1 fully.
        assert_eq!(m.goal_completeness(GoalId::new(0), &[0, 1]), 1.0);
        // H={a1} gives 1/2 on both.
        assert_eq!(m.goal_completeness(GoalId::new(0), &[0]), 0.5);
        // g2 = p3 = {a1,a4,a5}; H={a1} → 1/3.
        assert!((m.goal_completeness(GoalId::new(1), &[0]) - 1.0 / 3.0).abs() < 1e-12);
        // No overlap → 0.
        assert_eq!(m.goal_completeness(GoalId::new(2), &[0]), 0.0);
    }

    #[test]
    fn check_bounds() {
        let m = model();
        assert!(m.check_action(ActionId::new(5)).is_ok());
        assert!(m.check_action(ActionId::new(6)).is_err());
        assert!(m.check_goal(GoalId::new(3)).is_ok());
        assert!(m.check_goal(GoalId::new(4)).is_err());
    }

    #[test]
    fn memory_accounting_positive() {
        let m = model();
        assert!(m.memory_bytes() > 0);
        // Flat layout: 3 CSR indexes (offsets + data) + forward labels,
        // counted exactly.
        let want = (m.impl_actions.offsets.len() + m.impl_actions.data.len()) * 4
            + (m.goal_impls.offsets.len() + m.goal_impls.data.len()) * 4
            + (m.action_impls.offsets.len() + m.action_impls.data.len()) * 4
            + m.impl_goal.len() * 4;
        assert_eq!(m.memory_bytes(), want);
    }

    #[test]
    fn build_rejects_empty_library() {
        let lib = crate::library::GoalLibrary::default();
        assert!(GoalModel::build(&lib).is_err());
    }

    #[test]
    fn validate_accepts_freshly_built_model() {
        assert_eq!(model().validate(), Ok(()));
    }

    #[test]
    fn validate_detects_a_corrupted_index() {
        // Corrupt each index structure in turn; every corruption must be
        // caught as a cross-consistency violation.
        let mut m = model();
        m.impl_goal[0] = 3; // p1 claims g5, inverse index still lists it under g1
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        // g1's inverse row is data[0..2] = [0, 1]; repeating p1 both breaks
        // strict sortedness and drops p2.
        m.goal_impls.data[0] = 1;
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        // IS(a1) = data[0..4] = [0, 1, 2, 4]; rewriting the 4 to 3 claims
        // p4 contains a1 (it does not) and drops p5.
        m.action_impls.data[3] = 3;
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        // p3's activity is data[4..7] = [0, 3, 4]; swap to [3, 0, 4].
        m.impl_actions.data[4] = 3;
        m.impl_actions.data[5] = 0;
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        let mut m = model();
        m.num_actions = 3; // A-idx disagrees with the posting tables
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));
    }

    #[test]
    fn validate_detects_corrupted_csr_offsets() {
        // Non-monotone offsets.
        let mut m = model();
        m.goal_impls.offsets[1] = 5; // > offsets[2] = 3
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        // Last offset disagreeing with the data length.
        let mut m = model();
        let last = m.action_impls.offsets.len() - 1;
        m.action_impls.offsets[last] -= 1;
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));

        // First offset not zero.
        let mut m = model();
        m.impl_actions.offsets[0] = 1;
        assert!(matches!(m.validate(), Err(Error::CorruptModel { .. })));
    }

    #[test]
    fn from_csr_parts_round_trips_build() {
        let m = model();
        let rebuilt = GoalModel::from_csr_parts(
            m.num_actions(),
            m.num_goals(),
            m.impl_goal.to_vec(),
            m.impl_actions.offsets.to_vec(),
            m.impl_actions.data.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.validate(), Ok(()));
        for p in 0..m.num_impls() {
            let p = ImplId::new(p as u32);
            assert_eq!(rebuilt.impl_actions(p), m.impl_actions(p));
            assert_eq!(rebuilt.impl_goal(p), m.impl_goal(p));
        }
        for g in 0..m.num_goals() {
            let g = GoalId::new(g as u32);
            assert_eq!(rebuilt.goal_impls(g), m.goal_impls(g));
        }
        for a in 0..m.num_actions() {
            let a = ActionId::new(a as u32);
            assert_eq!(rebuilt.action_impls(a), m.action_impls(a));
        }
    }

    #[test]
    fn from_csr_parts_rejects_corrupt_input() {
        let m = model();
        let goals = m.impl_goal.to_vec();
        let offs = m.impl_actions.offsets.to_vec();
        let data = m.impl_actions.data.to_vec();

        // Empty input.
        assert!(matches!(
            GoalModel::from_csr_parts(6, 4, Vec::new(), vec![0], Vec::new()),
            Err(Error::EmptyLibrary)
        ));
        // Unsorted row.
        let mut bad = data.clone();
        bad.swap(0, 1);
        assert!(matches!(
            GoalModel::from_csr_parts(6, 4, goals.clone(), offs.clone(), bad),
            Err(Error::CorruptModel { .. })
        ));
        // Action id out of range.
        let mut bad = data.clone();
        if let Some(x) = bad.last_mut() {
            *x = 99;
        }
        assert!(matches!(
            GoalModel::from_csr_parts(6, 4, goals.clone(), offs.clone(), bad),
            Err(Error::CorruptModel { .. })
        ));
        // Goal id out of range.
        let mut badg = goals.clone();
        badg[0] = 42;
        assert!(matches!(
            GoalModel::from_csr_parts(6, 4, badg, offs.clone(), data.clone()),
            Err(Error::CorruptModel { .. })
        ));
        // Offsets shape: wrong length.
        assert!(matches!(
            GoalModel::from_csr_parts(6, 4, goals, offs[..offs.len() - 1].to_vec(), data),
            Err(Error::CorruptModel { .. })
        ));
    }
}
