//! Goal-based user and action representations (§5.3, Eq. 7–9, Alg. 3).
//!
//! Best Match represents both the user and every candidate action as count
//! vectors in the feature space `F_GS(H)` — one coordinate per goal in the
//! user's goal space. Coordinate `i` of an action vector counts the
//! implementations through which the action contributes to goal `i`
//! (Eq. 8); the user profile is the sum of the vectors of the actions in
//! `H` (Eq. 9).

use crate::ids::{ActionId, GoalId, ImplId};
use crate::live::AssocView;
use crate::model::GoalModel;
use crate::setops;

/// A dense vector in the goal feature space `F_GS(H)`, together with the
/// goal ids that label each coordinate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GoalVector {
    /// Sorted goal ids labelling the coordinates.
    pub goals: Vec<u32>,
    /// Contribution counts, one per goal in `goals`.
    pub counts: Vec<f64>,
}

impl GoalVector {
    /// A zero vector over the given (sorted) goal space.
    pub fn zeros(goal_space: &[u32]) -> Self {
        Self {
            goals: goal_space.to_vec(),
            counts: vec![0.0; goal_space.len()],
        }
    }

    /// Dimensionality `|GS(H)|`.
    pub fn dim(&self) -> usize {
        self.goals.len()
    }

    /// The count for a specific goal, if it is in the space.
    pub fn get(&self, g: GoalId) -> Option<f64> {
        self.goals
            .binary_search(&g.raw())
            .ok()
            .map(|i| self.counts[i])
    }

    /// Adds `delta` to the coordinate of `g`; ignores goals outside the
    /// space (a candidate action may contribute to goals the user has shown
    /// no evidence for — Best Match deliberately disregards those).
    pub fn add(&mut self, g: GoalId, delta: f64) {
        if let Ok(i) = self.goals.binary_search(&g.raw()) {
            self.counts[i] += delta;
        }
    }

    /// Sum of all coordinates.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Whether every coordinate is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0.0)
    }

    /// Re-labels a reused vector over a new (sorted) goal space, zeroing
    /// every coordinate while keeping both backing allocations — the
    /// allocation-free counterpart of [`GoalVector::zeros`].
    pub fn reset(&mut self, goal_space: &[u32]) {
        self.goals.clear();
        self.goals.extend_from_slice(goal_space);
        self.counts.clear();
        self.counts.resize(goal_space.len(), 0.0);
    }
}

/// Builds the goal-based user profile `H⃗` (Algorithm 3,
/// `Get-Goal-Based-Profile`).
///
/// For each action in the activity, every implementation in its
/// implementation space contributes `+1` to the coordinate of that
/// implementation's goal. The resulting vector captures "for each goal in
/// `GS(H)`, how many (action, implementation) pairs of the user's activity
/// contribute to it".
pub fn user_profile(model: &GoalModel, activity: &[u32], goal_space: &[u32]) -> GoalVector {
    let mut profile = GoalVector::zeros(goal_space);
    for &a in activity {
        if (a as usize) >= model.num_actions() {
            continue;
        }
        for &p in model.action_impls(ActionId::new(a)) {
            profile.add(model.impl_goal(crate::ids::ImplId::new(p)), 1.0);
        }
    }
    profile
}

/// Builds the goal-based representation `a⃗` of one candidate action
/// (Eq. 8): coordinate `g` counts the implementations `p = (g, A)` with
/// `a ∈ A` and `g ∈ GS(H)`.
pub fn action_vector(model: &GoalModel, action: ActionId, goal_space: &[u32]) -> GoalVector {
    let mut vec = GoalVector::zeros(goal_space);
    for &p in model.action_impls(action) {
        vec.add(model.impl_goal(crate::ids::ImplId::new(p)), 1.0);
    }
    vec
}

/// Computes the goal space and user profile together, avoiding a second
/// pass over the implementation space.
pub fn goal_space_and_profile(model: &GoalModel, activity: &[u32]) -> (Vec<u32>, GoalVector) {
    let mut pairs = Vec::new();
    let mut space = Vec::new();
    let mut profile = GoalVector::zeros(&[]);
    goal_space_and_profile_into(model, activity, &mut pairs, &mut space, &mut profile);
    (space, profile)
}

/// [`goal_space_and_profile`] into caller-owned buffers (all cleared
/// first): `pairs` holds the raw (goal, +1) contribution stream, `space`
/// the normalised goal space, `profile` the user profile over it. The
/// allocation-free form used by the Best Match hot path; generic over
/// [`AssocView`] so a live base ⊕ delta overlay profiles identically to
/// a compiled model (delta postings are a suffix of each action's row,
/// and the pair stream is normalised before use).
pub fn goal_space_and_profile_into<V: AssocView + ?Sized>(
    view: &V,
    activity: &[u32],
    pairs: &mut Vec<u32>,
    space: &mut Vec<u32>,
    profile: &mut GoalVector,
) {
    // First pass: collect (goal, +1) pairs.
    pairs.clear();
    for &a in activity {
        if (a as usize) >= view.num_actions() {
            continue;
        }
        let (base, delta) = view.action_impls_parts(ActionId::new(a));
        for &p in base.iter().chain(delta) {
            pairs.push(view.impl_goal(ImplId::new(p)).raw());
        }
    }
    space.clear();
    space.extend_from_slice(pairs);
    setops::normalize(space);
    profile.reset(space);
    for &g in pairs.iter() {
        profile.add(GoalId::new(g), 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;
    use crate::model::GoalModel;

    /// Example 3.2 model: a1..a6 → 0..5, goals g1,g2,g3,g5 → 0..3.
    fn model() -> GoalModel {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        GoalModel::build(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn zeros_and_accessors() {
        let v = GoalVector::zeros(&[1, 4, 7]);
        assert_eq!(v.dim(), 3);
        assert!(v.is_zero());
        assert_eq!(v.get(GoalId::new(4)), Some(0.0));
        assert_eq!(v.get(GoalId::new(5)), None);
    }

    #[test]
    fn add_ignores_goals_outside_space() {
        let mut v = GoalVector::zeros(&[1, 4]);
        v.add(GoalId::new(4), 2.0);
        v.add(GoalId::new(9), 5.0); // outside — ignored
        assert_eq!(v.get(GoalId::new(4)), Some(2.0));
        assert_eq!(v.total(), 2.0);
        assert!(!v.is_zero());
    }

    #[test]
    fn paper_example_profile_for_a2_a3() {
        // The paper's §5.3 example: H = {a2, a3}. a2 contributes to g1 (p1)
        // and g5 (p5); a3 to g1 (p2). Goal space {g1, g5} = ids {0, 3};
        // counts: g1 → 2 (p1 via a2, p2 via a3), g5 → 1.
        // (The paper text renders the profile over the full goal layout as
        // {3, 0, 2}-style counts for its figure ordering; the invariant is
        // the per-goal counts, which we check directly.)
        let m = model();
        let h = [1u32, 2u32]; // a2 = id 1, a3 = id 2
        let (space, profile) = goal_space_and_profile(&m, &h);
        assert_eq!(space, vec![0, 3]); // g1, g5
        assert_eq!(profile.get(GoalId::new(0)), Some(2.0));
        assert_eq!(profile.get(GoalId::new(3)), Some(1.0));
        assert_eq!(profile.total(), 3.0);
    }

    #[test]
    fn user_profile_matches_combined_function() {
        let m = model();
        let h = [0u32, 5u32];
        let space = m.goal_space(&h);
        let p1 = user_profile(&m, &h, &space);
        let (space2, p2) = goal_space_and_profile(&m, &h);
        assert_eq!(space, space2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn action_vector_counts_implementations_per_goal() {
        let m = model();
        // a1 (id 0) contributes: g1 via p1 and p2 (count 2), g2 via p3,
        // g5 via p5. Over the full goal space of H = {a1}:
        let space = m.goal_space(&[0]);
        assert_eq!(space, vec![0, 1, 3]);
        let v = action_vector(&m, ActionId::new(0), &space);
        assert_eq!(v.get(GoalId::new(0)), Some(2.0));
        assert_eq!(v.get(GoalId::new(1)), Some(1.0));
        assert_eq!(v.get(GoalId::new(3)), Some(1.0));
    }

    #[test]
    fn action_vector_restricted_space_drops_other_goals() {
        let m = model();
        // Space containing only g3 (id 2): a1 contributes nothing there.
        let v = action_vector(&m, ActionId::new(0), &[2]);
        assert!(v.is_zero());
        // a6 (id 5) contributes to g3 via p4.
        let v6 = action_vector(&m, ActionId::new(5), &[2]);
        assert_eq!(v6.get(GoalId::new(2)), Some(1.0));
    }

    #[test]
    fn into_buffers_are_reusable_across_activities() {
        let m = model();
        let (mut pairs, mut space, mut profile) = (Vec::new(), Vec::new(), GoalVector::zeros(&[]));
        goal_space_and_profile_into(&m, &[0, 5], &mut pairs, &mut space, &mut profile);
        let (s1, p1) = goal_space_and_profile(&m, &[0, 5]);
        assert_eq!(space, s1);
        assert_eq!(profile, p1);
        // Second, smaller activity over the same (now dirty) buffers.
        goal_space_and_profile_into(&m, &[1], &mut pairs, &mut space, &mut profile);
        let (s2, p2) = goal_space_and_profile(&m, &[1]);
        assert_eq!(space, s2);
        assert_eq!(profile, p2);
    }

    #[test]
    fn empty_activity_gives_empty_space_and_zero_profile() {
        let m = model();
        let (space, profile) = goal_space_and_profile(&m, &[]);
        assert!(space.is_empty());
        assert_eq!(profile.dim(), 0);
        assert!(profile.is_zero());
    }

    #[test]
    fn unknown_actions_in_activity_are_skipped() {
        let m = model();
        let (space, _) = goal_space_and_profile(&m, &[0, 999]);
        assert_eq!(space, m.goal_space(&[0]));
    }
}
