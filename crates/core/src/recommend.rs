//! The recommender facade and the cross-method recommender abstraction.
//!
//! [`Recommender`] is the crate-agnostic interface the evaluation layer
//! uses: goal-based strategies, collaborative filtering, content-based
//! filtering and association-rule baselines all implement it, so the
//! experiments of §6 can iterate over a homogeneous list of methods.
//!
//! [`GoalRecommender`] binds a [`GoalModel`] to the [`Strategy`]
//! implementations of this crate and offers convenience entry points that
//! resolve names through the library's dictionaries.

use crate::activity::Activity;
use crate::error::Result;
use crate::ids::ActionId;
use crate::library::GoalLibrary;
use crate::live::LiveRef;
use crate::model::GoalModel;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::strategies::{BestMatch, Breadth, Focus, FocusVariant, Strategy};
use crate::topk::Scored;
use goalrec_obs::{self as obs, names};
use std::sync::Arc;

/// Anything that can produce a ranked top-k action list for an activity.
///
/// The contract mirrors [`Strategy`] but is self-contained (no model
/// argument): implementors capture their data at construction. All methods
/// must be deterministic and thread-safe — the batch driver fans requests
/// out across threads.
pub trait Recommender: Send + Sync {
    /// Stable display name used in experiment tables.
    fn name(&self) -> String;

    /// Ranks candidate actions for `activity`, best first, at most `k`.
    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored>;

    /// Convenience: just the action ids, best first.
    fn recommend_actions(&self, activity: &Activity, k: usize) -> Vec<ActionId> {
        self.recommend(activity, k)
            .into_iter()
            .map(|s| s.action)
            .collect()
    }
}

/// A goal-based recommender: a compiled model plus one strategy.
///
/// Every request is observed under the strategy's metric namespace:
/// `strategy.<name>.requests` (counter), `strategy.<name>.latency`
/// (nanosecond histogram) and `strategy.<name>.candidates` (pre-truncation
/// candidate-set size). The handles are resolved once at construction so
/// the per-request cost is a clock read and a few atomic adds.
#[derive(Clone)]
pub struct GoalRecommender {
    model: Arc<GoalModel>,
    strategy: Arc<dyn Strategy>,
    requests: Arc<obs::Counter>,
    latency: Arc<obs::Histogram>,
    candidates: Arc<obs::Histogram>,
}

impl GoalRecommender {
    /// Builds the model from a library and pairs it with a strategy.
    pub fn from_library(library: &GoalLibrary, strategy: Box<dyn Strategy>) -> Result<Self> {
        Ok(Self::new(Arc::new(GoalModel::build(library)?), strategy))
    }

    /// Wraps an existing (shared) model.
    pub fn new(model: Arc<GoalModel>, strategy: Box<dyn Strategy>) -> Self {
        let name = strategy.name();
        Self {
            model,
            strategy: strategy.into(),
            requests: obs::counter(&names::strategy_requests(name)),
            latency: obs::histogram_ns(&names::strategy_latency(name)),
            candidates: obs::histogram(&names::strategy_candidates(name)),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &GoalModel {
        &self.model
    }

    /// Like [`Recommender::recommend`], but ranks into a caller-owned
    /// [`Scratch`] and returns a borrow of its result buffer — the
    /// allocation-free entry point for workers that serve many requests
    /// (each `goalrec-serve` worker owns one arena across its
    /// connections). Records the same per-strategy metrics as
    /// `recommend`.
    pub fn recommend_into<'s>(
        &self,
        activity: &Activity,
        k: usize,
        scratch: &'s mut Scratch,
    ) -> &'s [Scored] {
        self.recommend_into_traced(activity, k, scratch, &mut obs::TraceContext::disabled())
    }

    /// [`GoalRecommender::recommend_into`], additionally recording the
    /// ranking into `trace` as a `span.rank` span with
    /// `span.rank.candidates`/`span.rank.topk` child spans (the phase
    /// boundary every built-in strategy marks in its [`Scratch`]).
    ///
    /// With a disabled trace this is exactly `recommend_into`; with an
    /// enabled one it adds a few clock reads and fixed-slot span writes —
    /// the steady state stays allocation-free either way (proven by
    /// `tests/alloc_counting.rs`).
    pub fn recommend_into_traced<'s>(
        &self,
        activity: &Activity,
        k: usize,
        scratch: &'s mut Scratch,
        trace: &mut obs::TraceContext,
    ) -> &'s [Scored] {
        self.ranked_traced(scratch, trace, |strategy, scratch| {
            strategy.rank_into(&self.model, activity, k, scratch)
        })
    }

    /// [`GoalRecommender::recommend_into_traced`] over a live base ⊕
    /// delta overlay instead of the bound model: the serving path for a
    /// state whose staging segment holds appends not yet compacted into
    /// the CSR base. With an empty delta this ranks exactly like the
    /// model path (and stays allocation-free); records the same metrics
    /// and spans.
    pub fn recommend_live_into_traced<'s>(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &'s mut Scratch,
        trace: &mut obs::TraceContext,
    ) -> &'s [Scored] {
        self.ranked_traced(scratch, trace, |strategy, scratch| {
            strategy.rank_live_into(live, activity, k, scratch)
        })
    }

    /// The shared observation wrapper: counts the request, times the
    /// ranking closure into the strategy's latency histogram, and (when
    /// tracing) records the `span.rank` family around it.
    fn ranked_traced<'s>(
        &self,
        scratch: &'s mut Scratch,
        trace: &mut obs::TraceContext,
        rank: impl FnOnce(&dyn Strategy, &mut Scratch) -> usize,
    ) -> &'s [Scored] {
        self.requests.inc();
        let traced = trace.is_enabled();
        if traced {
            trace.set_strategy(self.strategy.name());
        }
        scratch.phase.begin(traced);
        let rank_start_ns = if traced { trace.elapsed_ns() } else { 0 };
        // A child span: the server nests the ranking inside its own
        // top-level `span.handle`, which alone accounts for this window.
        let rank_token = trace.start_child_span(names::SPAN_RANK);
        let span = obs::Timer::into_histogram(Arc::clone(&self.latency));
        let num_candidates = rank(&*self.strategy, scratch);
        drop(span);
        trace.end_span(rank_token);
        if traced {
            let rank_ns = trace.elapsed_ns().saturating_sub(rank_start_ns);
            let cand_ns = scratch.phase.candidates_ns().min(rank_ns);
            if cand_ns > 0 {
                trace.add_span(names::SPAN_RANK_CANDIDATES, rank_start_ns, cand_ns, true);
                trace.add_span(
                    names::SPAN_RANK_TOPK,
                    rank_start_ns + cand_ns,
                    rank_ns - cand_ns,
                    true,
                );
            }
        }
        self.candidates.record(num_candidates as u64);
        scratch.out()
    }

    /// One recommender per paper mechanism, sharing a single model:
    /// Best Match, Focus_cmp, Focus_cl, Breadth.
    pub fn all_strategies(model: Arc<GoalModel>) -> Vec<GoalRecommender> {
        vec![
            GoalRecommender::new(Arc::clone(&model), Box::new(BestMatch::default())),
            GoalRecommender::new(
                Arc::clone(&model),
                Box::new(Focus::new(FocusVariant::Completeness)),
            ),
            GoalRecommender::new(
                Arc::clone(&model),
                Box::new(Focus::new(FocusVariant::Closeness)),
            ),
            GoalRecommender::new(model, Box::new(Breadth)),
        ]
    }
}

impl Recommender for GoalRecommender {
    fn name(&self) -> String {
        self.strategy.name().to_owned()
    }

    fn recommend(&self, activity: &Activity, k: usize) -> Vec<Scored> {
        // Route through the thread-local arena so the ranking itself is
        // allocation-free; the only allocation left is the returned Vec.
        with_thread_scratch(|scratch| self.recommend_into(activity, k, scratch).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryBuilder;

    fn library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn facade_matches_direct_strategy_call() {
        let lib = library();
        let model = Arc::new(GoalModel::build(&lib).unwrap());
        let rec = GoalRecommender::new(Arc::clone(&model), Box::new(Breadth));
        let h = Activity::from_raw([0]);
        assert_eq!(rec.recommend(&h, 5), Breadth.rank(&model, &h, 5));
        assert_eq!(rec.name(), "Breadth");
    }

    #[test]
    fn from_library_builds_model() {
        let rec =
            GoalRecommender::from_library(&library(), Box::new(BestMatch::default())).unwrap();
        assert_eq!(rec.model().num_impls(), 5);
        assert!(!rec.recommend(&Activity::from_raw([0]), 3).is_empty());
    }

    #[test]
    fn all_strategies_share_one_model() {
        let model = Arc::new(GoalModel::build(&library()).unwrap());
        let recs = GoalRecommender::all_strategies(model);
        let names: Vec<String> = recs.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["BestMatch", "Focus_cmp", "Focus_cl", "Breadth"]);
    }

    #[test]
    fn recommend_actions_strips_scores() {
        let rec = GoalRecommender::from_library(&library(), Box::new(Breadth)).unwrap();
        let h = Activity::from_raw([0]);
        let with_scores = rec.recommend(&h, 3);
        let ids = rec.recommend_actions(&h, 3);
        assert_eq!(
            ids,
            with_scores.iter().map(|s| s.action).collect::<Vec<_>>()
        );
    }

    #[test]
    fn recommend_into_matches_recommend_with_reused_scratch() {
        let lib = library();
        let model = Arc::new(GoalModel::build(&lib).unwrap());
        let mut scratch = Scratch::new();
        for rec in GoalRecommender::all_strategies(model) {
            for h in [Activity::from_raw([0]), Activity::from_raw([0, 5])] {
                let expect = rec.recommend(&h, 4);
                let got = rec.recommend_into(&h, 4, &mut scratch);
                assert_eq!(got, &expect[..], "{} H={:?}", rec.name(), h);
            }
        }
    }

    #[test]
    fn traced_recommend_records_rank_and_phase_spans() {
        let lib = library();
        let model = Arc::new(GoalModel::build(&lib).unwrap());
        let mut scratch = Scratch::new();
        let h = Activity::from_raw([0, 5]);
        for rec in GoalRecommender::all_strategies(Arc::clone(&model)) {
            let mut trace = obs::TraceContext::new(true);
            trace.begin(obs::TraceId(1), std::time::Instant::now());
            let expect = rec.recommend(&h, 4);
            let got = rec.recommend_into_traced(&h, 4, &mut scratch, &mut trace);
            assert_eq!(got, &expect[..], "{}", rec.name());
            trace.finish(200);
            let snap = trace.snapshot();
            assert_eq!(snap.strategy, rec.name());
            assert!(snap.has_span(names::SPAN_RANK), "{}", rec.name());
            assert!(snap.has_span(names::SPAN_RANK_CANDIDATES), "{}", rec.name());
            assert!(snap.has_span(names::SPAN_RANK_TOPK), "{}", rec.name());
            // The child phases subdivide the rank span.
            let rank = snap
                .spans()
                .iter()
                .find(|s| s.name == names::SPAN_RANK)
                .unwrap();
            let child_sum: u64 = snap
                .spans()
                .iter()
                .filter(|s| {
                    s.name == names::SPAN_RANK_CANDIDATES || s.name == names::SPAN_RANK_TOPK
                })
                .map(|s| s.dur_ns)
                .sum();
            assert!(
                child_sum <= rank.dur_ns + 1_000,
                "{}: children {child_sum} ns exceed rank {} ns",
                rec.name(),
                rank.dur_ns
            );
        }
    }

    #[test]
    fn untraced_recommend_records_no_spans() {
        let rec = GoalRecommender::from_library(&library(), Box::new(Breadth)).unwrap();
        let mut scratch = Scratch::new();
        let mut trace = obs::TraceContext::disabled();
        let _ = rec.recommend_into_traced(&Activity::from_raw([0]), 3, &mut scratch, &mut trace);
        assert!(trace.spans().is_empty());
    }

    #[test]
    fn recommender_is_object_safe() {
        let rec: Box<dyn Recommender> =
            Box::new(GoalRecommender::from_library(&library(), Box::new(Breadth)).unwrap());
        assert_eq!(rec.name(), "Breadth");
    }
}
