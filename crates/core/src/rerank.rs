//! Diversity-aware re-ranking (MMR).
//!
//! Table 5 of the paper measures how self-similar each method's lists are
//! and flags Content-based filtering's homogeneity as a known drawback.
//! Maximal Marginal Relevance (Carbonell & Goldstein, 1998) is the classic
//! remedy: re-rank a candidate list by trading relevance against
//! similarity to the items already picked,
//!
//! `MMR(a) = λ·score(a) − (1−λ)·max_{b ∈ picked} sim(a, b)`.
//!
//! The re-ranker is strategy-agnostic: it consumes any scored list (from a
//! goal-based strategy, a baseline, or a hybrid) plus a pairwise
//! similarity function, so applications can enforce a diversity floor on
//! top of whatever policy they chose.

use crate::ids::ActionId;
use crate::topk::Scored;

/// Re-ranks `candidates` with MMR and returns the top `k`.
///
/// * `lambda` ∈ [0, 1]: 1 keeps the original relevance order, 0 ranks
///   purely by dissimilarity to the already-picked items.
/// * `similarity(a, b)` should return a value in `[0, 1]`.
///
/// Relevance scores are min-max normalised over the candidate pool first,
/// so `lambda` has the same meaning regardless of the strategy's score
/// scale (overlap counts, negated distances, cosines …).
///
/// ```
/// use goalrec_core::{mmr_rerank, ActionId, Scored};
///
/// // Items 0 and 1 are near-duplicates; 2 is different but less relevant.
/// let pool = vec![
///     Scored::new(ActionId::new(0), 0.9),
///     Scored::new(ActionId::new(1), 0.8),
///     Scored::new(ActionId::new(2), 0.5),
/// ];
/// let sim = |a: ActionId, b: ActionId| if a.raw() <= 1 && b.raw() <= 1 { 1.0 } else { 0.0 };
/// let picks = mmr_rerank(&pool, 2, 0.5, sim);
/// assert_eq!(picks[0].action, ActionId::new(0)); // most relevant first
/// assert_eq!(picks[1].action, ActionId::new(2)); // diversity beats the duplicate
/// ```
///
/// # Panics
/// Panics if `lambda` is not in `[0, 1]` or NaN.
pub fn mmr_rerank<F>(candidates: &[Scored], k: usize, lambda: f64, similarity: F) -> Vec<Scored>
where
    F: Fn(ActionId, ActionId) -> f64,
{
    assert!(
        (0.0..=1.0).contains(&lambda),
        "lambda must be within [0, 1]"
    );
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }

    // Min-max normalise relevance.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for c in candidates {
        lo = lo.min(c.score);
        hi = hi.max(c.score);
    }
    let span = (hi - lo).max(f64::EPSILON);
    let relevance: Vec<f64> = candidates.iter().map(|c| (c.score - lo) / span).collect();

    let mut picked: Vec<Scored> = Vec::with_capacity(k.min(candidates.len()));
    let mut used = vec![false; candidates.len()];
    while picked.len() < k.min(candidates.len()) {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in candidates.iter().enumerate() {
            if used[i] {
                continue;
            }
            let max_sim = picked
                .iter()
                .map(|p| similarity(cand.action, p.action))
                .fold(0.0f64, f64::max);
            let mmr = lambda * relevance[i] - (1.0 - lambda) * max_sim;
            let better = match best {
                None => true,
                Some((bi, bs)) => {
                    mmr > bs + 1e-12
                        || ((mmr - bs).abs() <= 1e-12 && cand.action < candidates[bi].action)
                }
            };
            if better {
                best = Some((i, mmr));
            }
        }
        let Some((i, mmr)) = best else {
            // Unreachable while picked.len() < candidates.len(), but running
            // out of candidates should end the selection, not the process.
            break;
        };
        used[i] = true;
        picked.push(Scored::new(candidates[i].action, mmr));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(a: u32, sc: f64) -> Scored {
        Scored::new(ActionId::new(a), sc)
    }

    /// Items 0,1 identical; 2 dissimilar to both.
    fn sim(a: ActionId, b: ActionId) -> f64 {
        let (a, b) = (a.raw(), b.raw());
        if a == b || (a <= 1 && b <= 1) {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn lambda_one_keeps_relevance_order() {
        let cands = vec![s(0, 0.9), s(1, 0.8), s(2, 0.1)];
        let out = mmr_rerank(&cands, 3, 1.0, sim);
        let ids: Vec<u32> = out.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn diversity_pressure_promotes_dissimilar_item() {
        // With λ = 0.5, after picking 0, item 1 (near-identical) is
        // penalised by 0.5·1.0 while item 2 has no penalty — 2 jumps ahead
        // despite lower relevance.
        let cands = vec![s(0, 0.9), s(1, 0.8), s(2, 0.5)];
        let out = mmr_rerank(&cands, 3, 0.5, sim);
        let ids: Vec<u32> = out.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![0, 2, 1]);
    }

    #[test]
    fn first_pick_is_always_most_relevant() {
        let cands = vec![s(5, 0.2), s(7, 0.95), s(9, 0.5)];
        for lambda in [0.0, 0.3, 1.0] {
            // With no picked items yet the similarity penalty is 0, so the
            // top-relevance item leads for any λ > 0; at λ = 0 all MMR
            // values are 0 and the id tie-break takes over.
            let out = mmr_rerank(&cands, 1, lambda, |_, _| 0.0);
            if lambda > 0.0 {
                assert_eq!(out[0].action, ActionId::new(7), "λ = {lambda}");
            }
        }
    }

    #[test]
    fn respects_k_and_empty_inputs() {
        let cands = vec![s(0, 1.0), s(1, 0.5)];
        assert_eq!(mmr_rerank(&cands, 1, 0.7, sim).len(), 1);
        assert!(mmr_rerank(&cands, 0, 0.7, sim).is_empty());
        assert!(mmr_rerank(&[], 5, 0.7, sim).is_empty());
        assert_eq!(mmr_rerank(&cands, 10, 0.7, sim).len(), 2);
    }

    #[test]
    fn constant_scores_fall_back_to_diversity_then_id() {
        let cands = vec![s(0, 0.5), s(1, 0.5), s(2, 0.5)];
        let out = mmr_rerank(&cands, 3, 0.5, sim);
        // First pick: all MMR equal → lowest id (0). Second: 2 (dissimilar)
        // beats 1 (identical to 0).
        let ids: Vec<u32> = out.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_rejected() {
        mmr_rerank(&[s(0, 1.0)], 1, 1.5, sim);
    }

    #[test]
    fn end_to_end_with_a_goal_strategy() {
        use crate::activity::Activity;
        use crate::library::LibraryBuilder;
        use crate::model::GoalModel;
        use crate::strategies::{Breadth, Strategy as _};

        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a", "b", "c"]).unwrap();
        b.add_impl("g2", ["a", "d"]).unwrap();
        let lib = b.build().unwrap();
        let model = GoalModel::build(&lib).unwrap();
        let h = Activity::from_actions([lib.action_id("a").unwrap()]);
        let base = Breadth.rank(&model, &h, 10);
        let reranked = mmr_rerank(&base, 2, 0.7, |_, _| 0.0);
        assert_eq!(reranked.len(), 2);
        // With zero similarity the relevance order is preserved.
        assert_eq!(reranked[0].action, base[0].action);
    }
}
