//! Per-worker scratch arenas for the allocation-free recommend hot path.
//!
//! Every strategy needs the same handful of working buffers per request: a
//! dense per-action scoreboard (Algorithm 2), the space buffers of §4
//! (`IS(H)`, `GS(H)`, `AS(H)`), the goal-vector pair of Algorithm 3, and a
//! bounded top-k accumulator. Allocating them per call makes the hot path
//! allocator-bound; a [`Scratch`] owns all of them and is reused across
//! requests, so steady-state [`crate::strategies::Strategy::rank_into`]
//! calls touch the heap zero times (verified by the counting-allocator test
//! in `tests/alloc_counting.rs`).
//!
//! ## Scoreboard epochs
//!
//! The dense scoreboard is `Vec<(u64 /*score*/, u32 /*epoch*/)>`, one slot
//! per action. A slot is live only when its stamp equals the arena's current
//! epoch, so [`Scratch::begin`] invalidates the whole board by bumping one
//! integer instead of re-zeroing `O(|𝒜|)` memory. On the (once per 2³²
//! requests) wraparound every stamp is reset explicitly, so a stale stamp
//! can never alias a live epoch.
//!
//! ## Ownership model
//!
//! One `Scratch` per worker thread: each `goalrec-serve` worker owns one
//! across its connections, each rayon batch worker reuses one via the
//! thread-local fallback, and [`crate::GoalRecommender::recommend`] uses
//! [`with_thread_scratch`]. A `Scratch` is plain mutable state — it is
//! never shared between threads.

use crate::profile::GoalVector;
use crate::topk::{Scored, TopK};
use std::cell::RefCell;
use std::time::Instant;

/// Phase-boundary marks for the per-request `span.rank` trace span.
///
/// Every built-in strategy has the same two-phase shape — generate the
/// candidate set, then select the top k — and the tracing layer wants
/// those phases as separate child spans. Strategies cannot talk to a
/// `TraceContext` directly (the trait must stay obs-agnostic), so they
/// mark the boundary here and `GoalRecommender::recommend_into_traced`
/// converts the mark into `span.rank.candidates`/`span.rank.topk`.
/// Disabled (the default, and whenever tracing is off) the mark is a
/// single branch; enabled it adds one monotonic clock read per request —
/// never an allocation.
#[derive(Default)]
pub(crate) struct PhaseMarks {
    started: Option<Instant>,
    candidates_ns: u64,
}

impl PhaseMarks {
    /// Arms (or disarms) the marks for a new request.
    #[inline]
    pub(crate) fn begin(&mut self, enabled: bool) {
        self.started = if enabled { Some(Instant::now()) } else { None };
        self.candidates_ns = 0;
    }

    /// Marks the candidate-generation → top-k-selection boundary. Only
    /// the first mark of a request sticks.
    #[inline]
    pub(crate) fn mark(&mut self) {
        if let Some(t0) = self.started {
            if self.candidates_ns == 0 {
                self.candidates_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
        }
    }

    /// Nanoseconds from `begin` to the first `mark`; 0 when disarmed or
    /// never marked.
    #[inline]
    pub(crate) fn candidates_ns(&self) -> u64 {
        self.candidates_ns
    }
}

/// Reusable per-thread working memory for one recommend request.
///
/// See the [module docs](self) for the lifecycle. All buffers grow to the
/// high-water mark of the requests they serve and then stay allocated.
#[derive(Default)]
pub struct Scratch {
    /// Current scoreboard epoch; slots are live iff their stamp matches.
    pub(crate) epoch: u32,
    /// Dense integer scoreboard: `(score, epoch stamp)` per action id.
    pub(crate) board: Vec<(u64, u32)>,
    /// Dense float scoreboard for the weighted strategies.
    pub(crate) fboard: Vec<(f64, u32)>,
    /// Action ids written to either scoreboard this epoch, in first-touch
    /// order.
    pub(crate) touched: Vec<u32>,
    /// `IS(H)` buffer.
    pub(crate) impl_space: Vec<u32>,
    /// `GS(H)` buffer.
    pub(crate) space: Vec<u32>,
    /// Raw (goal, +1) contribution pairs feeding the user profile.
    pub(crate) pairs: Vec<u32>,
    /// `AS(H)` / candidate-action buffer.
    pub(crate) candidates: Vec<u32>,
    /// Running "already recommended or performed" set (Algorithm 1's `R`).
    pub(crate) seen: Vec<u32>,
    /// Per-implementation remaining-action buffer.
    pub(crate) remaining: Vec<u32>,
    /// User profile vector `H⃗` (Eq. 9).
    pub(crate) profile: GoalVector,
    /// Candidate action vector `a⃗` (Eq. 8), re-labelled per request.
    pub(crate) vec: GoalVector,
    /// Per-coordinate goal weights for the weighted strategies.
    pub(crate) weights_buf: Vec<f64>,
    /// Scored implementations for the Focus fill loop.
    pub(crate) scored_impls: Vec<(f64, u32)>,
    /// Bounded top-k accumulator.
    pub(crate) topk: TopK,
    /// The ranked result of the last `rank_into` call.
    pub(crate) out: Vec<Scored>,
    /// Phase-boundary marks for the tracing layer (see [`PhaseMarks`]).
    pub(crate) phase: PhaseMarks,
}

impl Scratch {
    /// A fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new request epoch: sizes both scoreboards for `num_actions`
    /// and invalidates every slot by bumping the epoch counter.
    pub(crate) fn begin(&mut self, num_actions: usize) {
        if self.board.len() < num_actions {
            self.board.resize(num_actions, (0, 0));
            self.fboard.resize(num_actions, (0.0, 0));
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wraparound: stamps from 2³² epochs ago could alias. Reset.
            for slot in &mut self.board {
                slot.1 = 0;
            }
            for slot in &mut self.fboard {
                slot.1 = 0;
            }
            self.epoch = 1;
        }
        self.touched.clear();
    }

    /// Adds `delta` to action `a`'s integer score, registering the first
    /// touch of this epoch.
    #[inline]
    pub(crate) fn board_add(&mut self, a: u32, delta: u64) {
        let slot = &mut self.board[a as usize];
        if slot.1 == self.epoch {
            slot.0 += delta;
        } else {
            *slot = (delta, self.epoch);
            self.touched.push(a);
        }
    }

    /// Action `a`'s integer score this epoch (0 if untouched).
    #[inline]
    pub(crate) fn board_get(&self, a: u32) -> u64 {
        let slot = self.board[a as usize];
        if slot.1 == self.epoch {
            slot.0
        } else {
            0
        }
    }

    /// Adds `delta` to action `a`'s float score, registering the first
    /// touch of this epoch.
    #[inline]
    pub(crate) fn fboard_add(&mut self, a: u32, delta: f64) {
        let slot = &mut self.fboard[a as usize];
        if slot.1 == self.epoch {
            slot.0 += delta;
        } else {
            *slot = (delta, self.epoch);
            self.touched.push(a);
        }
    }

    /// Action `a`'s float score this epoch (0.0 if untouched).
    #[inline]
    pub(crate) fn fboard_get(&self, a: u32) -> f64 {
        let slot = self.fboard[a as usize];
        if slot.1 == self.epoch {
            slot.0
        } else {
            0.0
        }
    }

    /// The ranked list produced by the last
    /// [`crate::strategies::Strategy::rank_into`] call on this arena.
    pub fn out(&self) -> &[Scored] {
        &self.out
    }

    /// The `(score, impl_id)` ranking left by the last
    /// [`crate::strategies::Focus::rank_impls_into`] call on this arena,
    /// sorted score-descending with ascending-id tie-break. The
    /// scatter-gather layer reads per-shard rankings through this to
    /// k-way-merge them without copying.
    pub fn scored_impls(&self) -> &[(f64, u32)] {
        &self.scored_impls
    }

    /// Clears the per-request result buffers (`out`, `scored_impls`)
    /// without touching the backing allocations. The scatter-gather layer
    /// calls this before each shard's scatter phase so a shard that has no
    /// model this generation can never leak the previous request's results
    /// into the merge.
    pub fn clear_results(&mut self) {
        self.out.clear();
        self.scored_impls.clear();
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's shared [`Scratch`].
///
/// The arena persists for the thread's lifetime, so repeated calls (e.g.
/// each request a rayon batch worker processes) reuse the same buffers. If
/// the thread-local is already borrowed — only possible if `f` re-enters —
/// a temporary arena is used instead of panicking.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Scratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_scores_reset_per_epoch_without_rezeroing() {
        let mut s = Scratch::new();
        s.begin(8);
        s.board_add(3, 2);
        s.board_add(3, 1);
        s.board_add(5, 7);
        assert_eq!(s.board_get(3), 3);
        assert_eq!(s.board_get(5), 7);
        assert_eq!(s.board_get(0), 0);
        assert_eq!(s.touched, vec![3, 5]);
        // New epoch: everything stale, no explicit clearing happened.
        s.begin(8);
        assert_eq!(s.board_get(3), 0);
        assert_eq!(s.board_get(5), 0);
        assert!(s.touched.is_empty());
    }

    #[test]
    fn fboard_tracks_floats_and_shares_touched() {
        let mut s = Scratch::new();
        s.begin(4);
        s.fboard_add(1, 0.5);
        s.fboard_add(1, 0.25);
        assert_eq!(s.fboard_get(1), 0.75);
        assert_eq!(s.fboard_get(2), 0.0);
        assert_eq!(s.touched, vec![1]);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut s = Scratch::new();
        s.begin(2);
        s.board_add(0, 9);
        // Force the wrap: next begin() overflows to 0 and must rewrite
        // stamps rather than let epoch-0 slots look live.
        s.epoch = u32::MAX;
        s.begin(2);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.board_get(0), 0);
        s.board_add(0, 4);
        assert_eq!(s.board_get(0), 4);
    }

    #[test]
    fn boards_grow_to_fit() {
        let mut s = Scratch::new();
        s.begin(2);
        s.board_add(1, 1);
        s.begin(100);
        s.board_add(99, 1);
        assert_eq!(s.board_get(99), 1);
        assert_eq!(s.board_get(1), 0);
    }

    #[test]
    fn thread_scratch_persists_across_calls() {
        let first_capacity = with_thread_scratch(|s| {
            s.begin(64);
            s.board.capacity()
        });
        let second_capacity = with_thread_scratch(|s| s.board.capacity());
        assert_eq!(first_capacity, second_capacity);
        assert!(second_capacity >= 64);
    }
}
