//! Sorted-set algebra over identifier slices.
//!
//! The complexity analysis in the paper (§5.4) identifies set intersection
//! and asymmetric set difference as the dominant primitive operations of all
//! goal-based strategies: `Focus_cmp` is driven by `|A ∩ H|`, `Focus_cl` by
//! `|A − H|`, and `Breadth` accumulates `|A ∩ H|` per implementation.
//!
//! All posting lists in [`crate::GoalModel`] are strictly increasing `u32`
//! sequences, so these primitives run as linear merges, switching to a
//! galloping (exponential-probe) strategy when one side is much smaller than
//! the other — the common shape in the FoodMart configuration where a cart
//! of ~10 items meets recipes of ~30 ingredients drawn from thousands.

/// Size ratio above which intersection switches from a linear merge to
/// galloping search. Chosen per the classic Baeza-Yates bound; validated by
/// `benches/setops.rs`.
const GALLOP_RATIO: usize = 16;

/// Returns `true` if `s` is strictly increasing (sorted and duplicate-free).
pub fn is_strictly_sorted(s: &[u32]) -> bool {
    s.windows(2).all(|w| w[0] < w[1])
}

/// Sorts and deduplicates in place, producing a strictly increasing sequence.
pub fn normalize(v: &mut Vec<u32>) {
    v.sort_unstable();
    v.dedup();
}

/// `|a ∩ b|` without materialising the intersection.
pub fn intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() || large.is_empty() {
        return 0;
    }
    if large.len() / small.len().max(1) >= GALLOP_RATIO {
        return gallop_intersection_len(small, large);
    }
    let mut n = 0;
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Materialises `a ∩ b` as a strictly increasing sequence.
pub fn intersection(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersection_into(a, b, &mut out);
    out
}

/// Appends `a ∩ b` to `out` (which is cleared first). Allows callers to
/// reuse a workhorse buffer across a loop.
pub fn intersection_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len().max(1) >= GALLOP_RATIO {
        gallop_intersection_into(small, large, out);
        return;
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(small[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// `|a − b|` (elements of `a` not in `b`) without materialising the result.
pub fn difference_len(a: &[u32], b: &[u32]) -> usize {
    a.len() - intersection_len(a, b)
}

/// Materialises `a − b` as a strictly increasing sequence.
pub fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    difference_into(a, b, &mut out);
    out
}

/// Appends `a − b` to `out` (which is cleared first).
pub fn difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() {
            out.extend_from_slice(&a[i..]);
            return;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
}

/// Materialises `a ∪ b` as a strictly increasing sequence.
pub fn union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Unions many sorted sequences at once. Used to build goal/action spaces
/// (§4, Eq. 1–2) as the union of per-action posting lists.
pub fn union_many<'a, I>(sets: I) -> Vec<u32>
where
    I: IntoIterator<Item = &'a [u32]>,
{
    let mut all: Vec<u32> = Vec::new();
    union_many_into(sets, &mut all);
    all
}

/// [`union_many`] into a caller-owned buffer (cleared first), so hot paths
/// can reuse one allocation across requests.
pub fn union_many_into<'a, I>(sets: I, out: &mut Vec<u32>)
where
    I: IntoIterator<Item = &'a [u32]>,
{
    // Concatenate-then-normalise beats a k-way heap merge for the posting
    // list counts seen here (|H| ≲ 100 lists), and is simpler.
    out.clear();
    for s in sets {
        out.extend_from_slice(s);
    }
    normalize(out);
}

/// Binary-search membership test.
#[inline]
pub fn contains(sorted: &[u32], x: u32) -> bool {
    sorted.binary_search(&x).is_ok()
}

/// `true` iff `a ∩ b ≠ ∅`; short-circuits on the first common element.
pub fn intersects(a: &[u32], b: &[u32]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() || large.is_empty() {
        return false;
    }
    if large.len() / small.len().max(1) >= GALLOP_RATIO {
        let mut lo = 0;
        for &x in small {
            match large[lo..].binary_search(&x) {
                Ok(_) => return true,
                Err(pos) => lo += pos,
            }
            if lo >= large.len() {
                return false;
            }
        }
        return false;
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Jaccard (Tanimoto) coefficient `|a∩b| / |a∪b|` of two sorted sets.
/// Used by the CF-kNN baseline's neighbourhood formation (§6) but kept here
/// with the other set primitives.
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_len(a, b);
    let uni = a.len() + b.len() - inter;
    inter as f64 / uni as f64
}

fn gallop_intersection_len(small: &[u32], large: &[u32]) -> usize {
    let mut n = 0;
    let mut lo = 0;
    for &x in small {
        match gallop_search(&large[lo..], x) {
            Ok(pos) => {
                n += 1;
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= large.len() {
            break;
        }
    }
    n
}

fn gallop_intersection_into(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
    let mut lo = 0;
    for &x in small {
        match gallop_search(&large[lo..], x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= large.len() {
            break;
        }
    }
}

/// Exponential probe followed by binary search, like `slice::binary_search`
/// but starting from the front — O(log d) where d is the distance to the
/// target, which makes sequential probes over an increasing needle list
/// linear overall.
fn gallop_search(s: &[u32], x: u32) -> Result<usize, usize> {
    let mut hi = 1;
    while hi < s.len() && s[hi] < x {
        hi *= 2;
    }
    // s[hi/2] < x ≤ s[hi] (when in range), so search the half-open window
    // [hi/2, hi+1) — hi itself may hold the exact match.
    let lo = hi / 2;
    let hi = (hi + 1).min(s.len());
    match s[lo..hi].binary_search(&x) {
        Ok(p) => Ok(lo + p),
        Err(p) => Err(lo + p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn strictly_sorted_detection() {
        assert!(is_strictly_sorted(&[]));
        assert!(is_strictly_sorted(&[5]));
        assert!(is_strictly_sorted(&[1, 2, 9]));
        assert!(!is_strictly_sorted(&[1, 1]));
        assert!(!is_strictly_sorted(&[2, 1]));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = vec![5, 3, 5, 1, 3];
        normalize(&mut v);
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn intersection_basic() {
        assert_eq!(intersection(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(intersection_len(&[1, 3, 5, 7], &[3, 4, 5, 8]), 2);
    }

    #[test]
    fn intersection_disjoint_and_empty() {
        assert!(intersection(&[1, 2], &[3, 4]).is_empty());
        assert!(intersection(&[], &[1]).is_empty());
        assert!(intersection(&[1], &[]).is_empty());
        assert_eq!(intersection_len(&[], &[]), 0);
    }

    #[test]
    fn intersection_triggers_gallop_path() {
        // large/small ratio >= 16 forces the galloping branch.
        let small = vec![0, 500, 999];
        let large: Vec<u32> = (0..1000).collect();
        assert_eq!(intersection(&small, &large), small);
        assert_eq!(intersection_len(&small, &large), 3);
        let misses = vec![1001, 2002];
        assert!(intersection(&misses, &large).is_empty());
    }

    #[test]
    fn difference_basic() {
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(difference_len(&[1, 2, 3, 4], &[2, 4]), 2);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
        assert!(difference(&[], &[1, 2]).is_empty());
    }

    #[test]
    fn difference_exhausts_b_then_copies_tail() {
        assert_eq!(difference(&[1, 5, 9, 12], &[1, 2]), vec![5, 9, 12]);
    }

    #[test]
    fn union_basic() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[7]), vec![7]);
        assert_eq!(union(&[7], &[]), vec![7]);
    }

    #[test]
    fn union_many_merges_all() {
        let sets: Vec<&[u32]> = vec![&[1, 4], &[2, 4], &[0, 9]];
        assert_eq!(union_many(sets), vec![0, 1, 2, 4, 9]);
        assert!(union_many(std::iter::empty::<&[u32]>()).is_empty());
    }

    #[test]
    fn contains_and_intersects() {
        assert!(contains(&[1, 3, 5], 3));
        assert!(!contains(&[1, 3, 5], 4));
        assert!(intersects(&[1, 9], &[9, 10]));
        assert!(!intersects(&[1, 2], &[3, 4]));
        assert!(!intersects(&[], &[1]));
        // gallop branch of intersects
        let large: Vec<u32> = (0..1000).map(|x| x * 2).collect();
        assert!(intersects(&[998], &large));
        assert!(!intersects(&[999], &large));
    }

    #[test]
    fn jaccard_values() {
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 0.0);
    }

    #[test]
    fn reusable_buffers() {
        let mut buf = vec![99, 98]; // stale content must be cleared
        intersection_into(&[1, 2, 3], &[2, 3, 4], &mut buf);
        assert_eq!(buf, vec![2, 3]);
        difference_into(&[1, 2, 3], &[2], &mut buf);
        assert_eq!(buf, vec![1, 3]);
        let sets: Vec<&[u32]> = vec![&[1, 4], &[2, 4]];
        union_many_into(sets, &mut buf);
        assert_eq!(buf, vec![1, 2, 4]);
    }

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..5000, 0..300)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn prop_intersection_matches_btreeset(a in sorted_set(), b in sorted_set()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.intersection(&sb).copied().collect();
            prop_assert_eq!(intersection(&a, &b), expect.clone());
            prop_assert_eq!(intersection_len(&a, &b), expect.len());
            prop_assert_eq!(intersects(&a, &b), !expect.is_empty());
        }

        #[test]
        fn prop_difference_matches_btreeset(a in sorted_set(), b in sorted_set()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.difference(&sb).copied().collect();
            prop_assert_eq!(difference(&a, &b), expect.clone());
            prop_assert_eq!(difference_len(&a, &b), expect.len());
        }

        #[test]
        fn prop_union_matches_btreeset(a in sorted_set(), b in sorted_set()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.union(&sb).copied().collect();
            prop_assert_eq!(union(&a, &b), expect);
        }

        #[test]
        fn prop_outputs_strictly_sorted(a in sorted_set(), b in sorted_set()) {
            prop_assert!(is_strictly_sorted(&intersection(&a, &b)));
            prop_assert!(is_strictly_sorted(&difference(&a, &b)));
            prop_assert!(is_strictly_sorted(&union(&a, &b)));
        }

        #[test]
        fn prop_inclusion_exclusion(a in sorted_set(), b in sorted_set()) {
            // |a ∪ b| = |a| + |b| − |a ∩ b|
            prop_assert_eq!(
                union(&a, &b).len(),
                a.len() + b.len() - intersection_len(&a, &b)
            );
            // |a − b| + |a ∩ b| = |a|
            prop_assert_eq!(difference_len(&a, &b) + intersection_len(&a, &b), a.len());
        }

        #[test]
        fn prop_gallop_search_agrees_with_binary_search(s in sorted_set(), x in 0u32..5000) {
            prop_assert_eq!(gallop_search(&s, x), s.binary_search(&x));
        }
    }
}
