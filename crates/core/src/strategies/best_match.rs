//! The Best Match strategy (§5.3, Algorithms 3–4).
//!
//! Best Match evaluates every candidate against the *whole* goal space, not
//! just the goals the candidate contributes to. It builds the goal-based
//! user profile `H⃗` (one count per goal in `GS(H)` — Algorithm 3),
//! represents each candidate action in the same feature space (Eq. 8), and
//! ranks candidates by their vector distance to the profile (Eq. 10):
//! actions whose per-goal contribution pattern mirrors the user's effort
//! pattern rank first.

use crate::activity::Activity;
use crate::distance::DistanceMetric;
use crate::ids::{ActionId, ImplId};
use crate::live::{self, AssocView, LiveRef};
use crate::model::GoalModel;
use crate::profile::goal_space_and_profile_into;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::strategies::Strategy;
use crate::topk::Scored;

/// The Best Match strategy with a configurable distance metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestMatch {
    metric: DistanceMetric,
}

impl BestMatch {
    /// Creates a Best Match strategy with the given metric.
    pub fn new(metric: DistanceMetric) -> Self {
        Self { metric }
    }

    /// The configured metric.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The [`Strategy::rank_into`] body, generic over the view so the
    /// same pass serves both a compiled model and a live overlay.
    fn rank_view_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        let h = activity.raw();
        let Scratch {
            pairs,
            space,
            profile,
            impl_space,
            candidates,
            vec,
            topk,
            out,
            phase,
            ..
        } = scratch;
        goal_space_and_profile_into(view, h, pairs, space, profile);
        if space.is_empty() {
            return 0;
        }

        // Algorithm 4: CA = AS(H) − H (action_space_into already excludes
        // H). Both the candidate pool and the per-candidate goal vector
        // live in the arena — no per-call allocations.
        live::implementation_space_into(view, h, impl_space);
        live::action_space_into(view, h, impl_space, candidates);
        let num_candidates = candidates.len();
        phase.mark(); // candidate pool complete; distance scoring next
        topk.reset(k);
        vec.reset(space);
        for &a in candidates.iter() {
            // Re-zero the workhorse vector instead of reallocating.
            vec.counts.iter_mut().for_each(|c| *c = 0.0);
            let (base, delta) = view.action_impls_parts(ActionId::new(a));
            for &p in base.iter().chain(delta) {
                vec.add(view.impl_goal(ImplId::new(p)), 1.0);
            }
            let dist = self.metric.distance(&profile.counts, &vec.counts);
            // Scores are higher-is-better across the crate; negate distance.
            topk.push(Scored::new(ActionId::new(a), -dist));
        }
        topk.drain_sorted_into(out);
        num_candidates
    }
}

impl Strategy for BestMatch {
    fn name(&self) -> &'static str {
        "BestMatch"
    }

    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored> {
        self.rank_observed(model, activity, k).0
    }

    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        with_thread_scratch(|scratch| {
            let candidates = self.rank_into(model, activity, k, scratch);
            (scratch.out().to_vec(), candidates)
        })
    }

    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        self.rank_view_into(model, activity, k, scratch)
    }

    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        match (live.delta(), live.base()) {
            (None, Some(base)) => self.rank_view_into(base, activity, k, scratch),
            (None, None) => {
                scratch.out.clear();
                0
            }
            _ => self.rank_view_into(&live, activity, k, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::example_model;

    #[test]
    fn metric_accessor_and_default() {
        assert_eq!(BestMatch::default().metric(), DistanceMetric::Cosine);
        assert_eq!(
            BestMatch::new(DistanceMetric::Manhattan).metric(),
            DistanceMetric::Manhattan
        );
    }

    #[test]
    fn paper_example_prefers_profile_aligned_action() {
        // §5.3's worked example, adapted to candidates: with H = {a2, a3}
        // the profile is (g1: 2, g5: 1). Candidate a1 contributes to g1
        // twice (p1, p2) and g5 once (p5) — direction identical to the
        // profile. Candidate a4 contributes to neither g1 nor g5 within the
        // goal space (its goals g2, g3 are outside GS(H)) — wait: a4's
        // goals are g2 (p3) and g3 (p4); GS({a2,a3}) = {g1, g5}, so a4 is
        // not even in the candidate pool here. Use a6 instead: a6
        // contributes to g5 via p5 (and g3 outside the space), a weaker
        // match than a1.
        let m = example_model();
        let h = Activity::from_raw([1, 2]); // a2, a3
        let recs = BestMatch::default().rank(&m, &h, 10);
        assert_eq!(recs[0].action, ActionId::new(0)); // a1 first
        assert!(recs[0].score > recs[1].score - 1e-12);
        // a1's vector (2,1) is parallel to the profile (2,1): distance 0.
        assert!(recs[0].score.abs() < 1e-9);
        // Candidates are exactly AS(H) − H = {a1, a6}.
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![0, 5]);
    }

    #[test]
    fn distance_is_negated_into_score() {
        let m = example_model();
        let h = Activity::from_raw([1, 2]);
        for rec in BestMatch::default().rank(&m, &h, 10) {
            assert!(rec.score <= 1e-12, "scores are negative distances");
        }
    }

    #[test]
    fn all_metrics_produce_full_candidate_ranking() {
        let m = example_model();
        let h = Activity::from_raw([0]); // a1: candidates = {a2..a6}
        for metric in DistanceMetric::ALL {
            let recs = BestMatch::new(metric).rank(&m, &h, 10);
            assert_eq!(recs.len(), 5, "metric {:?}", metric);
        }
    }

    #[test]
    fn empty_activity_and_zero_k() {
        let m = example_model();
        assert!(BestMatch::default()
            .rank(&m, &Activity::new(), 5)
            .is_empty());
        assert!(BestMatch::default()
            .rank(&m, &Activity::from_raw([0]), 0)
            .is_empty());
    }

    #[test]
    fn activity_with_no_known_actions_yields_empty() {
        let m = example_model();
        let h = Activity::from_raw([1000, 2000]);
        assert!(BestMatch::default().rank(&m, &h, 5).is_empty());
    }

    #[test]
    fn euclidean_prefers_count_matched_candidate() {
        // Euclidean, unlike cosine, is magnitude-sensitive: with profile
        // (2, 1), candidate vectors (2, 1) and (4, 2) differ.
        let m = example_model();
        let h = Activity::from_raw([1, 2]);
        let recs = BestMatch::new(DistanceMetric::Euclidean).rank(&m, &h, 10);
        assert_eq!(recs[0].action, ActionId::new(0)); // exact (2,1) match
        assert!(recs[0].score.abs() < 1e-9);
    }
}
