//! The Breadth strategy (§5.2, Algorithm 2).
//!
//! Breadth evaluates a candidate action over *all* the implementations of
//! the user's implementation space it participates in: the score of action
//! `a` is `Σ_p |A_p ∩ H|` over implementations `p = (g, A_p)` with
//! `A_p ∩ H ≠ ∅` and `a ∈ A_p` (Eq. 5–6). Actions that co-occur with many
//! of the user's actions across many implementations rise to the top,
//! keeping multiple goal "paths" open with the minimum number of extra
//! actions.
//!
//! Algorithm 2 computes all scores in a single pass over the implementation
//! space: for each associated implementation, add its overlap `|A ∩ H|` to
//! the running score of every action it contains, rather than re-scanning
//! per candidate. The ablation bench (`benches/strategies.rs`) compares
//! this against the naive per-candidate rescan.

use crate::activity::Activity;
use crate::ids::{ActionId, ImplId};
use crate::live::{self, AssocView, LiveRef};
use crate::model::GoalModel;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::setops;
use crate::strategies::Strategy;
use crate::topk::Scored;
use std::collections::HashMap;

/// The Breadth strategy. Stateless; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breadth;

impl Breadth {
    /// Runs Algorithm 2's single accumulation pass (lines 2–11) over the
    /// scratch scoreboard: after this, `scratch.touched` holds every action
    /// of `IS(H)`'s implementations and the board holds its Eq. 6 score.
    /// Performed actions are still on the board — each ranking consumer
    /// filters them out.
    fn accumulate<V: AssocView + ?Sized>(view: &V, h: &[u32], scratch: &mut Scratch) {
        scratch.begin(view.num_actions());
        // Take the buffer out so the loop can both read the implementation
        // space and mutate the scoreboard.
        let mut impl_space = std::mem::take(&mut scratch.impl_space);
        live::implementation_space_into(view, h, &mut impl_space);
        for &p in &impl_space {
            let actions = view.impl_actions(ImplId::new(p));
            let comm = setops::intersection_len(actions, h) as u64;
            debug_assert!(comm > 0, "IS(H) must only contain associated impls");
            for &a in actions {
                scratch.board_add(a, comm);
            }
        }
        scratch.impl_space = impl_space;
    }

    /// The [`Strategy::rank_into`] body, generic over the view so the
    /// same monomorphised pass serves both a compiled model and a live
    /// base ⊕ delta overlay.
    fn rank_view_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        // Hot path: the arena's epoch-stamped dense scoreboard with a dirty
        // list. The accumulation touches each candidate many times (once
        // per shared implementation), so a flat Vec beats hashing; the
        // dirty list keeps iteration proportional to the touched candidates
        // instead of |𝒜|, and the epoch stamp replaces the O(|𝒜|) re-zero
        // between requests. `benches/strategies.rs` (breadth_scoreboard
        // group) quantifies the win over the HashMap in `Self::scores`.
        let h = activity.raw();
        Self::accumulate(view, h, scratch);
        let num_candidates = scratch.touched.len();
        scratch.phase.mark(); // candidate accumulation done; top-k next
        scratch.topk.reset(k);
        let epoch = scratch.epoch;
        let Scratch {
            touched,
            board,
            topk,
            ..
        } = scratch;
        for &a in touched.iter() {
            if setops::contains(h, a) {
                continue;
            }
            let (score, stamp) = board[a as usize];
            debug_assert_eq!(stamp, epoch, "touched entries are always stamped");
            if stamp == epoch {
                topk.push(Scored::new(ActionId::new(a), score as f64));
            }
        }
        scratch.topk.drain_sorted_into(&mut scratch.out);
        num_candidates
    }

    /// Computes the full candidate→score map (Algorithm 2 lines 2–11)
    /// without the final top-k cut, as a thin wrapper over the same dense
    /// scoreboard the ranking path uses — the `HashMap` is materialised
    /// only for the caller's convenience. The independent per-candidate
    /// rescan lives in [`Breadth::scores_naive`] as the ablation reference.
    pub fn scores(model: &GoalModel, activity: &Activity) -> HashMap<u32, u64> {
        let h = activity.raw();
        with_thread_scratch(|scratch| {
            Self::accumulate(model, h, scratch);
            scratch
                .touched
                .iter()
                .filter(|&&a| !setops::contains(h, a))
                .map(|&a| (a, scratch.board_get(a)))
                .collect()
        })
    }

    /// Reference implementation scoring each candidate independently by
    /// Eq. 6 — O(|AS(H)| × connectivity). Used to cross-check Algorithm 2
    /// and in the ablation bench.
    pub fn scores_naive(model: &GoalModel, activity: &Activity) -> HashMap<u32, u64> {
        let h = activity.raw();
        let mut scores = HashMap::new();
        for a in model.action_space(h) {
            let mut sc = 0u64;
            for &p in model.action_impls(ActionId::new(a)) {
                let actions = model.impl_actions(ImplId::new(p));
                let comm = setops::intersection_len(actions, h) as u64;
                if comm > 0 {
                    sc += comm;
                }
            }
            if sc > 0 {
                scores.insert(a, sc);
            }
        }
        scores
    }
}

impl Strategy for Breadth {
    fn name(&self) -> &'static str {
        "Breadth"
    }

    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored> {
        self.rank_observed(model, activity, k).0
    }

    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        with_thread_scratch(|scratch| {
            let candidates = self.rank_into(model, activity, k, scratch);
            (scratch.out().to_vec(), candidates)
        })
    }

    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        self.rank_view_into(model, activity, k, scratch)
    }

    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        match (live.delta(), live.base()) {
            // Empty delta: the exact compiled-model pass, no parts reads.
            (None, Some(base)) => self.rank_view_into(base, activity, k, scratch),
            (None, None) => {
                scratch.out.clear();
                0
            }
            _ => self.rank_view_into(&live, activity, k, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::example_model;
    use crate::strategies::Strategy;
    use proptest::prelude::*;

    #[test]
    fn scores_on_paper_example() {
        let m = example_model();
        // H = {a1} (id 0). IS(H) = {p1, p2, p3, p5}, each with comm = 1.
        // a2 ∈ p1, p5 → 2; a3 ∈ p2 → 1; a4 ∈ p3 → 1; a5 ∈ p3 → 1;
        // a6 ∈ p5 → 1 (p4 not associated).
        let h = Activity::from_raw([0]);
        let s = Breadth::scores(&m, &h);
        assert_eq!(s.get(&1), Some(&2));
        assert_eq!(s.get(&2), Some(&1));
        assert_eq!(s.get(&3), Some(&1));
        assert_eq!(s.get(&4), Some(&1));
        assert_eq!(s.get(&5), Some(&1));
        assert_eq!(s.get(&0), None); // performed action excluded
    }

    #[test]
    fn overlap_weights_accumulate() {
        let m = example_model();
        // H = {a1, a2} (ids 0,1). comm: p1=2, p2=1, p3=1, p5=2.
        // a6 ∈ p5 → 2; a3 ∈ p2 → 1; a4, a5 ∈ p3 → 1 each.
        let h = Activity::from_raw([0, 1]);
        let s = Breadth::scores(&m, &h);
        assert_eq!(s.get(&5), Some(&2));
        assert_eq!(s.get(&2), Some(&1));
        assert_eq!(s.get(&3), Some(&1));
        assert_eq!(s.get(&4), Some(&1));
    }

    #[test]
    fn rank_orders_by_score_then_id() {
        let m = example_model();
        let h = Activity::from_raw([0]);
        let recs = Breadth.rank(&m, &h, 10);
        assert_eq!(recs[0].action, ActionId::new(1)); // a2, score 2
        assert_eq!(recs[0].score, 2.0);
        // The four score-1 actions follow in id order.
        let rest: Vec<u32> = recs[1..].iter().map(|r| r.action.raw()).collect();
        assert_eq!(rest, vec![2, 3, 4, 5]);
    }

    #[test]
    fn accumulating_matches_naive() {
        let m = example_model();
        for h in [
            Activity::from_raw([0]),
            Activity::from_raw([0, 1]),
            Activity::from_raw([3]),
            Activity::from_raw([1, 2, 5]),
        ] {
            assert_eq!(
                Breadth::scores(&m, &h),
                Breadth::scores_naive(&m, &h),
                "mismatch for H={:?}",
                h
            );
        }
    }

    #[test]
    fn empty_and_zero_k() {
        let m = example_model();
        assert!(Breadth.rank(&m, &Activity::new(), 5).is_empty());
        assert!(Breadth.rank(&m, &Activity::from_raw([0]), 0).is_empty());
    }

    #[test]
    fn activity_covering_everything_leaves_no_candidates() {
        let m = example_model();
        let h = Activity::from_raw([0, 1, 2, 3, 4, 5]);
        assert!(Breadth.rank(&m, &h, 10).is_empty());
    }

    #[test]
    fn dense_scoreboard_rank_matches_hashmap_scores() {
        let m = example_model();
        for h in [
            Activity::from_raw([0]),
            Activity::from_raw([0, 1]),
            Activity::from_raw([1, 2, 5]),
        ] {
            let via_map = crate::topk::top_k(
                Breadth::scores(&m, &h)
                    .into_iter()
                    .map(|(a, s)| crate::topk::Scored::new(ActionId::new(a), s as f64)),
                10,
            );
            assert_eq!(Breadth.rank(&m, &h, 10), via_map, "H = {h:?}");
        }
    }

    proptest! {
        /// The dense-scoreboard rank must agree with the HashMap reference
        /// on random models.
        #[test]
        fn prop_rank_matches_scores(
            impls in proptest::collection::vec(
                (0u32..8, proptest::collection::btree_set(0u32..15, 1..6)),
                1..25
            ),
            h in proptest::collection::btree_set(0u32..15, 0..8)
        ) {
            use crate::ids::GoalId;
            use crate::library::GoalLibrary;
            let lib = GoalLibrary::from_id_implementations(
                15,
                8,
                impls
                    .into_iter()
                    .map(|(g, acts)| {
                        (
                            GoalId::new(g),
                            acts.into_iter().map(ActionId::new).collect(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
            let m = crate::model::GoalModel::build(&lib).unwrap();
            let h = Activity::from_raw(h);
            let via_map = crate::topk::top_k(
                Breadth::scores(&m, &h)
                    .into_iter()
                    .map(|(a, s)| crate::topk::Scored::new(ActionId::new(a), s as f64)),
                10,
            );
            prop_assert_eq!(Breadth.rank(&m, &h, 10), via_map);
        }

        /// Algorithm 2's single-pass accumulation must equal the Eq. 6
        /// per-candidate definition on random small models.
        #[test]
        fn prop_accumulating_equals_naive(
            impls in proptest::collection::vec(
                (0u32..8, proptest::collection::btree_set(0u32..15, 1..6)),
                1..25
            ),
            h in proptest::collection::btree_set(0u32..15, 0..8)
        ) {
            use crate::ids::{ActionId, GoalId};
            use crate::library::GoalLibrary;
            let lib = GoalLibrary::from_id_implementations(
                15,
                8,
                impls
                    .into_iter()
                    .map(|(g, acts)| {
                        (
                            GoalId::new(g),
                            acts.into_iter().map(ActionId::new).collect(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
            let m = crate::model::GoalModel::build(&lib).unwrap();
            let h = Activity::from_raw(h);
            prop_assert_eq!(Breadth::scores(&m, &h), Breadth::scores_naive(&m, &h));
        }
    }
}
