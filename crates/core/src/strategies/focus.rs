//! The Focus strategy (§5.1): complete one goal at a time.
//!
//! Focus examines every implementation whose goal lies in the user's goal
//! space, scores each implementation by how close the user is to completing
//! it, and emits the *remaining* actions of the best implementations until
//! the list is full. §6.1.2 C.2.2 describes the behaviour: "the Focus
//! mechanisms, after popping out all the actions of the goal implementation
//! on which they have selected to focus, move on to another goal
//! implementation".
//!
//! Two measures rank the implementations (Eq. 3–4):
//!
//! * **completeness** `|A ∩ H| / |A|` — fraction already performed
//!   (`Focus_cmp`);
//! * **closeness** `1 / |A − H|` — inverse of the number of actions still
//!   missing (`Focus_cl`).

use crate::activity::Activity;
use crate::ids::{ActionId, GoalId, ImplId};
use crate::live::{self, AssocView, LiveRef};
use crate::model::GoalModel;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::setops;
use crate::strategies::Strategy;
use crate::topk::Scored;

/// Which implementation measure drives the ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FocusVariant {
    /// `Focus_cmp`: completeness `|A ∩ H| / |A|` (Eq. 3).
    Completeness,
    /// `Focus_cl`: closeness `1 / |A − H|` (Eq. 4).
    Closeness,
}

/// The Focus strategy. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Focus {
    variant: FocusVariant,
}

impl Focus {
    /// Creates a Focus strategy with the given measure.
    pub fn new(variant: FocusVariant) -> Self {
        Self { variant }
    }

    /// The configured measure.
    pub fn variant(&self) -> FocusVariant {
        self.variant
    }

    /// Scores one implementation against the activity, returning `None` for
    /// implementations that are already complete (`A ⊆ H`) — they have no
    /// action left to recommend.
    pub(crate) fn score_impl(&self, actions: &[u32], h: &[u32]) -> Option<f64> {
        let inter = setops::intersection_len(actions, h);
        let remaining = actions.len() - inter;
        if remaining == 0 {
            return None;
        }
        Some(match self.variant {
            FocusVariant::Completeness => inter as f64 / actions.len() as f64,
            FocusVariant::Closeness => 1.0 / remaining as f64,
        })
    }

    /// Candidate implementations: every implementation of every goal in
    /// `GS(H)` (§5.1 considers action sets of implementations `(g, A)` with
    /// `g ∈ GS(H)` — a superset of the directly-associated `IS(H)`, which
    /// lets Focus "extend to a few more [implementations] to complete the
    /// recommendation list"). Assembled in the caller's buffers:
    /// `IS(H)` → `GS(H)` → ∪ goal_impls, all cleared first.
    pub(crate) fn candidate_impls_into<V: AssocView + ?Sized>(
        view: &V,
        h: &[u32],
        impl_space: &mut Vec<u32>,
        goal_space: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        live::implementation_space_into(view, h, impl_space);
        live::goals_of_impls_into(view, impl_space, goal_space);
        setops::union_many_into(
            goal_space.iter().flat_map(|&g| {
                let (base, delta) = view.goal_impls_parts(GoalId::new(g));
                [base, delta]
            }),
            out,
        );
    }

    /// The implementation-ranking half of [`Strategy::rank_into`]: finds
    /// and scores the candidate implementations, leaving them sorted by
    /// the measure (tie-break: ascending implementation id) in
    /// [`Scratch::scored_impls`], and returns how many were scored.
    ///
    /// The scatter-gather layer calls this per shard and replays the fill
    /// loop over a k-way merge of the per-shard rankings, which is what
    /// keeps sharded Focus bit-identical to the unsharded path.
    pub fn rank_impls_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        scratch: &mut Scratch,
    ) {
        let h = activity.raw();
        let Scratch {
            impl_space,
            space,
            candidates,
            scored_impls,
            ..
        } = scratch;
        Self::candidate_impls_into(view, h, impl_space, space, candidates);

        // Rank candidate implementations by the measure; deterministic
        // tie-break by implementation id (the comparator is total — scores
        // are never NaN — so the allocation-free unstable sort produces
        // the same order as a stable one).
        scored_impls.clear();
        scored_impls.extend(candidates.iter().filter_map(|&p| {
            self.score_impl(view.impl_actions(ImplId::new(p)), h)
                .map(|s| (s, p))
        }));
        scored_impls.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
    }

    /// The [`Strategy::rank_into`] body, generic over the view so the
    /// same pass serves both a compiled model and a live overlay.
    fn rank_view_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        let h = activity.raw();
        self.rank_impls_into(view, activity, scratch);
        let Scratch {
            scored_impls,
            seen,
            remaining,
            out,
            phase,
            ..
        } = scratch;
        // Focus scores implementations, not actions: report those.
        let num_candidates = scored_impls.len();
        phase.mark(); // implementations ranked; fill loop next

        // Pop the remaining actions of each implementation in rank order.
        seen.clear();
        seen.extend_from_slice(h); // sorted set of excluded actions
        'fill: for &(score, p) in scored_impls.iter() {
            setops::difference_into(view.impl_actions(ImplId::new(p)), seen, remaining);
            for &a in remaining.iter() {
                out.push(Scored::new(ActionId::new(a), score));
                if let Err(pos) = seen.binary_search(&a) {
                    seen.insert(pos, a);
                }
                if out.len() == k {
                    break 'fill;
                }
            }
        }
        num_candidates
    }
}

impl Strategy for Focus {
    fn name(&self) -> &'static str {
        match self.variant {
            FocusVariant::Completeness => "Focus_cmp",
            FocusVariant::Closeness => "Focus_cl",
        }
    }

    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored> {
        self.rank_observed(model, activity, k).0
    }

    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        with_thread_scratch(|scratch| {
            let candidates = self.rank_into(model, activity, k, scratch);
            (scratch.out().to_vec(), candidates)
        })
    }

    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        self.rank_view_into(model, activity, k, scratch)
    }

    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        match (live.delta(), live.base()) {
            (None, Some(base)) => self.rank_view_into(base, activity, k, scratch),
            (None, None) => {
                scratch.out.clear();
                0
            }
            _ => self.rank_view_into(&live, activity, k, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::example_model;

    #[test]
    fn names() {
        assert_eq!(Focus::new(FocusVariant::Completeness).name(), "Focus_cmp");
        assert_eq!(Focus::new(FocusVariant::Closeness).name(), "Focus_cl");
        assert_eq!(
            Focus::new(FocusVariant::Closeness).variant(),
            FocusVariant::Closeness
        );
    }

    #[test]
    fn completeness_prefers_mostly_done_implementation() {
        let m = example_model();
        // H = {a1, a2} (ids 0,1): p1 fully complete (skipped), p5={a1,a2,a6}
        // at 2/3, p2={a1,a3} at 1/2, p3={a1,a4,a5} at 1/3, p4 at 0.
        let h = Activity::from_raw([0, 1]);
        let recs = Focus::new(FocusVariant::Completeness).rank(&m, &h, 10);
        // First recommendation comes from p5 → a6 (id 5) at score 2/3.
        assert_eq!(recs[0].action, ActionId::new(5));
        assert!((recs[0].score - 2.0 / 3.0).abs() < 1e-12);
        // Then p2 → a3 (id 2) at 1/2.
        assert_eq!(recs[1].action, ActionId::new(2));
        assert!((recs[1].score - 0.5).abs() < 1e-12);
        // Then p3 → a4, a5 (ids 3,4) at 1/3.
        assert_eq!(recs[2].action, ActionId::new(3));
        assert_eq!(recs[3].action, ActionId::new(4));
        assert_eq!(recs.len(), 4);
    }

    #[test]
    fn closeness_prefers_fewest_missing_actions() {
        let m = example_model();
        // H = {a1, a2}: p5 missing 1 (a6) → 1.0; p2 missing 1 (a3) → 1.0;
        // p3 missing 2 → 0.5; p4 missing 2 → 0.5 (goal g3 enters GS(H)? g3
        // only via p4={a4,a6}, no overlap with H, and its goal is not in
        // GS(H) since no action of H contributes to g3 — excluded).
        let h = Activity::from_raw([0, 1]);
        let recs = Focus::new(FocusVariant::Closeness).rank(&m, &h, 10);
        // Tie between p2 and p5 at 1.0 → impl id order: p2 (id 1) first → a3.
        assert_eq!(recs[0].action, ActionId::new(2));
        assert_eq!(recs[0].score, 1.0);
        assert_eq!(recs[1].action, ActionId::new(5)); // a6 from p5
        assert_eq!(recs[1].score, 1.0);
        // Then p3's two missing actions at 0.5.
        assert_eq!(recs[2].action, ActionId::new(3));
        assert_eq!(recs[3].action, ActionId::new(4));
        assert_eq!(recs.len(), 4);
    }

    #[test]
    fn complete_implementations_are_skipped() {
        let m = example_model();
        // H = everything in p1: p1 contributes no candidates.
        let h = Activity::from_raw([0, 1]);
        for variant in [FocusVariant::Completeness, FocusVariant::Closeness] {
            let recs = Focus::new(variant).rank(&m, &h, 10);
            assert!(recs.iter().all(|r| r.action != ActionId::new(0)));
            assert!(recs.iter().all(|r| r.action != ActionId::new(1)));
        }
    }

    #[test]
    fn zero_overlap_impls_of_shared_goals_can_fill_the_list() {
        let m = example_model();
        // H = {a3} (id 2): GS = {g1} via p2. g1's impls: p1 {a1,a2} (no
        // overlap, completeness 0) and p2 {a1,a3} (1/2). Focus_cmp emits
        // p2's missing a1 first, then p1's remaining a2.
        let h = Activity::from_raw([2]);
        let recs = Focus::new(FocusVariant::Completeness).rank(&m, &h, 10);
        let actions: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(actions, vec![0, 1]);
        assert_eq!(recs[1].score, 0.0);
    }

    #[test]
    fn respects_k_cutoff_mid_implementation() {
        let m = example_model();
        let h = Activity::from_raw([0, 1]);
        let recs = Focus::new(FocusVariant::Completeness).rank(&m, &h, 3);
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn empty_activity_or_zero_k() {
        let m = example_model();
        assert!(Focus::new(FocusVariant::Completeness)
            .rank(&m, &Activity::new(), 5)
            .is_empty());
        assert!(Focus::new(FocusVariant::Closeness)
            .rank(&m, &Activity::from_raw([0]), 0)
            .is_empty());
    }

    #[test]
    fn no_duplicate_actions_across_implementations() {
        let m = example_model();
        let h = Activity::from_raw([0]); // a1 alone: many impls share actions
        let recs = Focus::new(FocusVariant::Completeness).rank(&m, &h, 10);
        let mut ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
