//! The goal-based recommendation strategies (§5).
//!
//! Each strategy implements a different policy for prioritising the goals in
//! the user's goal space and converting them into a ranked action list:
//!
//! * [`Focus`] (§5.1) — complete one goal at a time; variants
//!   [`FocusVariant::Completeness`] and [`FocusVariant::Closeness`].
//! * [`Breadth`] (§5.2) — favour actions strongly associated with the user
//!   activity across many implementations at once.
//! * [`BestMatch`] (§5.3) — match candidates against a goal-space user
//!   profile by vector distance.

mod best_match;
mod breadth;
mod focus;
mod weighted;
mod weights;

pub use best_match::BestMatch;
pub use breadth::Breadth;
pub use focus::{Focus, FocusVariant};
pub use weighted::{WeightedBestMatch, WeightedBreadth, WeightedFocus};
pub use weights::GoalWeights;

use crate::activity::Activity;
use crate::live::LiveRef;
use crate::model::GoalModel;
use crate::scratch::Scratch;
use crate::topk::Scored;

/// A ranking strategy over the association-based goal model.
///
/// Implementations must be deterministic: the same `(model, activity, k)`
/// always yields the same list. Scores are oriented so that **higher is
/// better** regardless of the strategy's internal measure (distance-based
/// strategies negate).
pub trait Strategy: Send + Sync {
    /// Short stable name used in experiment reports (e.g. `"Focus_cmp"`).
    fn name(&self) -> &'static str;

    /// Ranks candidate actions (actions not in `activity`) and returns the
    /// top `k`, best first.
    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored>;

    /// Like [`Strategy::rank`], additionally reporting the number of
    /// candidates the strategy scored *before* top-k truncation — actions
    /// for Best Match and Breadth, implementations for Focus. The
    /// observability layer feeds this into the per-strategy
    /// `strategy.<name>.candidates` histogram.
    ///
    /// The default falls back to the truncated result length; strategies
    /// override it where the true candidate count is available for free.
    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        let ranked = self.rank(model, activity, k);
        let candidates = ranked.len();
        (ranked, candidates)
    }

    /// The allocation-free form of [`Strategy::rank_observed`]: ranks into
    /// `scratch`'s buffers, leaving the top-k list best-first in
    /// [`Scratch::out`] and returning the pre-truncation candidate count.
    ///
    /// A warm `scratch` reused across calls makes the built-in strategies'
    /// steady-state requests heap-allocation-free (see
    /// `tests/alloc_counting.rs`); callers that do not hold an arena can
    /// keep using `rank`/`rank_observed`, which route through a
    /// thread-local one. The default implementation delegates to
    /// `rank_observed` and copies the result — correct for any strategy,
    /// allocation-free only for those that override it.
    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        let (ranked, candidates) = self.rank_observed(model, activity, k);
        scratch.out.clear();
        scratch.out.extend_from_slice(&ranked);
        candidates
    }

    /// Like [`Strategy::rank_into`], but over a live base ⊕ delta overlay
    /// ([`LiveRef`]) instead of a compiled model. Results must be
    /// bit-identical to `rank_into` on a full rebuild of the merged
    /// library (pinned for the built-ins by `tests/live_overlay.rs`).
    ///
    /// With an empty (or absent) delta this MUST behave exactly like
    /// `rank_into` on the base — the default does precisely that, so the
    /// serving hot path stays allocation-free. With a non-empty delta the
    /// default falls back to compiling the merged model and ranking it —
    /// correct for any strategy but allocating; the built-ins override
    /// this with a direct overlay read. A vacant view ranks nothing.
    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        if live.delta().is_none() {
            return match live.base() {
                Some(base) => self.rank_into(base, activity, k, scratch),
                None => {
                    scratch.out.clear();
                    0
                }
            };
        }
        match live.to_model() {
            Ok(merged) => self.rank_into(&merged, activity, k, scratch),
            Err(_) => {
                scratch.out.clear();
                0
            }
        }
    }
}

/// The paper's four goal-based mechanisms with default settings, in the
/// order the evaluation tables list them: Best Match, Focus_cmp, Focus_cl,
/// Breadth.
pub fn default_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(BestMatch::default()),
        Box::new(Focus::new(FocusVariant::Completeness)),
        Box::new(Focus::new(FocusVariant::Closeness)),
        Box::new(Breadth),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::library::LibraryBuilder;
    use crate::model::GoalModel;

    /// Example 3.2 / Figure 1 model.
    ///
    /// Ids: actions a1..a6 → 0..5; goals g1,g2,g3,g5 → 0..3;
    /// impls p1..p5 → 0..4 with
    /// p1=(g1,{a1,a2}) p2=(g1,{a1,a3}) p3=(g2,{a1,a4,a5})
    /// p4=(g3,{a4,a6}) p5=(g5,{a1,a2,a6}).
    pub fn example_model() -> GoalModel {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        GoalModel::build(&b.build().unwrap()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;

    #[test]
    fn default_strategies_order_and_names() {
        let names: Vec<_> = default_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["BestMatch", "Focus_cmp", "Focus_cl", "Breadth"]);
    }

    #[test]
    fn all_strategies_empty_on_empty_activity() {
        let m = testutil::example_model();
        let h = Activity::new();
        for s in default_strategies() {
            assert!(s.rank(&m, &h, 10).is_empty(), "{} not empty", s.name());
        }
    }

    #[test]
    fn all_strategies_never_recommend_performed_actions() {
        let m = testutil::example_model();
        let h = Activity::from_raw([0, 1]); // a1, a2
        for s in default_strategies() {
            for rec in s.rank(&m, &h, 10) {
                assert!(
                    !h.contains(rec.action),
                    "{} recommended performed action {}",
                    s.name(),
                    rec.action
                );
            }
        }
    }

    #[test]
    fn all_strategies_respect_k() {
        let m = testutil::example_model();
        let h = Activity::from_raw([0]);
        for s in default_strategies() {
            assert!(s.rank(&m, &h, 2).len() <= 2);
            assert!(s.rank(&m, &h, 0).is_empty());
        }
    }

    #[test]
    fn all_strategies_rank_into_matches_rank_with_dirty_scratch() {
        let m = testutil::example_model();
        let mut scratch = crate::scratch::Scratch::new();
        // Reuse one arena across every strategy and activity: results must
        // be independent of whatever the previous call left behind.
        for s in default_strategies() {
            for h in [
                Activity::from_raw([0]),
                Activity::from_raw([0, 5]),
                Activity::from_raw([1, 2, 5]),
                Activity::new(),
            ] {
                let (expect, expect_n) = s.rank_observed(&m, &h, 3);
                let n = s.rank_into(&m, &h, 3, &mut scratch);
                assert_eq!(scratch.out(), &expect[..], "{} H={:?}", s.name(), h);
                assert_eq!(n, expect_n, "{} H={:?}", s.name(), h);
            }
        }
    }

    #[test]
    fn all_strategies_are_deterministic() {
        let m = testutil::example_model();
        let h = Activity::from_raw([0, 5]);
        for s in default_strategies() {
            let a = s.rank(&m, &h, 5);
            let b = s.rank(&m, &h, 5);
            assert_eq!(a, b, "{} nondeterministic", s.name());
        }
    }
}
