//! Goal-prioritised variants of the three strategies.
//!
//! Each wrapper applies a [`GoalWeights`] multiplier to the goal-derived
//! quantities of its base strategy (see the [`super::weights`] module
//! docs for the exact semantics). With empty weights every wrapper is
//! score-for-score identical to its base strategy — pinned by the
//! equivalence tests below.

use crate::activity::Activity;
use crate::distance::DistanceMetric;
use crate::ids::{ActionId, GoalId, ImplId};
use crate::live::{self, AssocView, LiveRef};
use crate::model::GoalModel;
use crate::profile::goal_space_and_profile_into;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::setops;
use crate::strategies::weights::GoalWeights;
use crate::strategies::{Focus, FocusVariant, Strategy};
use crate::topk::Scored;

/// Focus with goal priorities: an implementation's completeness/closeness
/// score is multiplied by its goal's weight before ranking.
#[derive(Debug, Clone)]
pub struct WeightedFocus {
    base: Focus,
    weights: GoalWeights,
}

impl WeightedFocus {
    /// Creates a prioritised Focus strategy.
    pub fn new(variant: FocusVariant, weights: GoalWeights) -> Self {
        Self {
            base: Focus::new(variant),
            weights,
        }
    }

    fn rank_view_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        let h = activity.raw();
        let Scratch {
            impl_space,
            space,
            candidates,
            scored_impls,
            seen,
            remaining,
            out,
            ..
        } = scratch;
        // Candidate implementations as in Focus, assembled in the arena.
        Focus::candidate_impls_into(view, h, impl_space, space, candidates);
        scored_impls.clear();
        scored_impls.extend(candidates.iter().filter_map(|&p| {
            let pid = ImplId::new(p);
            let w = self.weights.get(view.impl_goal(pid));
            if w == 0.0 {
                return None;
            }
            self.base
                .score_impl(view.impl_actions(pid), h)
                .map(|s| (s * w, p))
        }));
        scored_impls.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        // Like Focus: the strategy scores implementations, so report those.
        let num_candidates = scored_impls.len();

        seen.clear();
        seen.extend_from_slice(h);
        'fill: for &(score, p) in scored_impls.iter() {
            setops::difference_into(view.impl_actions(ImplId::new(p)), seen, remaining);
            for &a in remaining.iter() {
                out.push(Scored::new(ActionId::new(a), score));
                if let Err(pos) = seen.binary_search(&a) {
                    seen.insert(pos, a);
                }
                if out.len() == k {
                    break 'fill;
                }
            }
        }
        num_candidates
    }
}

impl Strategy for WeightedFocus {
    fn name(&self) -> &'static str {
        match self.base.variant() {
            FocusVariant::Completeness => "WFocus_cmp",
            FocusVariant::Closeness => "WFocus_cl",
        }
    }

    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored> {
        self.rank_observed(model, activity, k).0
    }

    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        with_thread_scratch(|scratch| {
            let candidates = self.rank_into(model, activity, k, scratch);
            (scratch.out().to_vec(), candidates)
        })
    }

    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        self.rank_view_into(model, activity, k, scratch)
    }

    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        match (live.delta(), live.base()) {
            (None, Some(base)) => self.rank_view_into(base, activity, k, scratch),
            (None, None) => {
                scratch.out.clear();
                0
            }
            _ => self.rank_view_into(&live, activity, k, scratch),
        }
    }
}

/// Breadth with goal priorities: each associated implementation's
/// `|A ∩ H|` contribution is multiplied by its goal's weight.
#[derive(Debug, Clone)]
pub struct WeightedBreadth {
    weights: GoalWeights,
}

impl WeightedBreadth {
    /// Creates a prioritised Breadth strategy.
    pub fn new(weights: GoalWeights) -> Self {
        Self { weights }
    }

    fn rank_view_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        let h = activity.raw();
        // Accumulate on the float scoreboard; zero-weight implementations
        // never touch it, mirroring the unweighted accumulation pass.
        scratch.begin(view.num_actions());
        let mut impl_space = std::mem::take(&mut scratch.impl_space);
        live::implementation_space_into(view, h, &mut impl_space);
        for &p in &impl_space {
            let pid = ImplId::new(p);
            let w = self.weights.get(view.impl_goal(pid));
            if w == 0.0 {
                continue;
            }
            let actions = view.impl_actions(pid);
            let comm = setops::intersection_len(actions, h) as f64 * w;
            for &a in actions {
                scratch.fboard_add(a, comm);
            }
        }
        scratch.impl_space = impl_space;
        scratch.topk.reset(k);
        // Like Breadth: every touched candidate action counts, weighted
        // down to the ones that survive the zero-weight filter; performed
        // actions are excluded from both the count and the ranking.
        let mut num_candidates = 0;
        for i in 0..scratch.touched.len() {
            let a = scratch.touched[i];
            if setops::contains(h, a) {
                continue;
            }
            num_candidates += 1;
            let score = scratch.fboard_get(a);
            scratch.topk.push(Scored::new(ActionId::new(a), score));
        }
        scratch.topk.drain_sorted_into(&mut scratch.out);
        num_candidates
    }
}

impl Strategy for WeightedBreadth {
    fn name(&self) -> &'static str {
        "WBreadth"
    }

    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored> {
        self.rank_observed(model, activity, k).0
    }

    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        with_thread_scratch(|scratch| {
            let candidates = self.rank_into(model, activity, k, scratch);
            (scratch.out().to_vec(), candidates)
        })
    }

    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        self.rank_view_into(model, activity, k, scratch)
    }

    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        match (live.delta(), live.base()) {
            (None, Some(base)) => self.rank_view_into(base, activity, k, scratch),
            (None, None) => {
                scratch.out.clear();
                0
            }
            _ => self.rank_view_into(&live, activity, k, scratch),
        }
    }
}

/// Best Match with goal priorities: both the user profile and candidate
/// vectors live in a weighted goal feature space.
#[derive(Debug, Clone)]
pub struct WeightedBestMatch {
    metric: DistanceMetric,
    weights: GoalWeights,
}

impl WeightedBestMatch {
    /// Creates a prioritised Best Match strategy.
    pub fn new(metric: DistanceMetric, weights: GoalWeights) -> Self {
        Self { metric, weights }
    }

    fn rank_view_into<V: AssocView + ?Sized>(
        &self,
        view: &V,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        let h = activity.raw();
        let Scratch {
            pairs,
            space,
            profile,
            impl_space,
            candidates,
            vec,
            weights_buf,
            topk,
            out,
            ..
        } = scratch;
        goal_space_and_profile_into(view, h, pairs, space, profile);
        if space.is_empty() {
            return 0;
        }
        weights_buf.clear();
        weights_buf.extend(space.iter().map(|&g| self.weights.get(GoalId::new(g))));
        for (c, w) in profile.counts.iter_mut().zip(weights_buf.iter()) {
            *c *= w;
        }

        // Like Best Match: candidates are the full action space of H.
        live::implementation_space_into(view, h, impl_space);
        live::action_space_into(view, h, impl_space, candidates);
        let num_candidates = candidates.len();
        topk.reset(k);
        vec.reset(space);
        for &a in candidates.iter() {
            vec.counts.iter_mut().for_each(|c| *c = 0.0);
            let (base, delta) = view.action_impls_parts(ActionId::new(a));
            for &p in base.iter().chain(delta) {
                vec.add(view.impl_goal(ImplId::new(p)), 1.0);
            }
            for (c, w) in vec.counts.iter_mut().zip(weights_buf.iter()) {
                *c *= w;
            }
            let dist = self.metric.distance(&profile.counts, &vec.counts);
            topk.push(Scored::new(ActionId::new(a), -dist));
        }
        topk.drain_sorted_into(out);
        num_candidates
    }
}

impl Strategy for WeightedBestMatch {
    fn name(&self) -> &'static str {
        "WBestMatch"
    }

    fn rank(&self, model: &GoalModel, activity: &Activity, k: usize) -> Vec<Scored> {
        self.rank_observed(model, activity, k).0
    }

    fn rank_observed(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        with_thread_scratch(|scratch| {
            let candidates = self.rank_into(model, activity, k, scratch);
            (scratch.out().to_vec(), candidates)
        })
    }

    fn rank_into(
        &self,
        model: &GoalModel,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        self.rank_view_into(model, activity, k, scratch)
    }

    fn rank_live_into(
        &self,
        live: LiveRef<'_>,
        activity: &Activity,
        k: usize,
        scratch: &mut Scratch,
    ) -> usize {
        match (live.delta(), live.base()) {
            (None, Some(base)) => self.rank_view_into(base, activity, k, scratch),
            (None, None) => {
                scratch.out.clear();
                0
            }
            _ => self.rank_view_into(&live, activity, k, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::example_model;
    use crate::strategies::{BestMatch, Breadth};

    fn empty() -> GoalWeights {
        GoalWeights::new()
    }

    #[test]
    fn empty_weights_reproduce_base_strategies() {
        let m = example_model();
        for h in [
            Activity::from_raw([0]),
            Activity::from_raw([0, 1]),
            Activity::from_raw([1, 2, 5]),
        ] {
            for variant in [FocusVariant::Completeness, FocusVariant::Closeness] {
                assert_eq!(
                    WeightedFocus::new(variant, empty()).rank(&m, &h, 10),
                    Focus::new(variant).rank(&m, &h, 10),
                    "focus {variant:?}"
                );
            }
            assert_eq!(
                WeightedBreadth::new(empty()).rank(&m, &h, 10),
                Breadth.rank(&m, &h, 10)
            );
            assert_eq!(
                WeightedBestMatch::new(DistanceMetric::Cosine, empty()).rank(&m, &h, 10),
                BestMatch::default().rank(&m, &h, 10)
            );
        }
    }

    #[test]
    fn zero_weight_excludes_a_goal_everywhere() {
        let m = example_model();
        // H = {a1} (id 0); zero out g1 (id 0, served by p1 and p2).
        let w = GoalWeights::new().with(GoalId::new(0), 0.0);
        let h = Activity::from_raw([0]);

        // Focus: no recommendation may come from p1/p2 exclusively — a3
        // (id 2) only appears in p2, so it must vanish.
        let recs = WeightedFocus::new(FocusVariant::Completeness, w.clone()).rank(&m, &h, 10);
        assert!(
            recs.iter().all(|r| r.action != ActionId::new(2)),
            "{recs:?}"
        );

        // Breadth: a3's only contribution path is p2 → absent.
        let recs = WeightedBreadth::new(w.clone()).rank(&m, &h, 10);
        assert!(
            recs.iter().all(|r| r.action != ActionId::new(2)),
            "{recs:?}"
        );
    }

    #[test]
    fn heavy_weight_promotes_a_goals_actions() {
        let m = example_model();
        // H = {a1}: unweighted Breadth ranks a2 first (score 2). Boosting
        // g2 (id 1, impl p3 = {a1,a4,a5}) by 10 must lift a4/a5 above a2.
        let w = GoalWeights::new().with(GoalId::new(1), 10.0);
        let recs = WeightedBreadth::new(w).rank(&m, &Activity::from_raw([0]), 2);
        let ids: Vec<u32> = recs.iter().map(|r| r.action.raw()).collect();
        assert_eq!(ids, vec![3, 4], "{recs:?}");
    }

    #[test]
    fn weighted_focus_reorders_implementations() {
        let m = example_model();
        // H = {a1, a2}: base Focus_cmp picks p5's a6 first. Boost g1 so p2
        // (missing a3) outranks p5.
        let w = GoalWeights::new().with(GoalId::new(0), 5.0);
        let recs = WeightedFocus::new(FocusVariant::Completeness, w).rank(
            &m,
            &Activity::from_raw([0, 1]),
            1,
        );
        assert_eq!(recs[0].action, ActionId::new(2)); // a3 from p2
    }

    #[test]
    fn weighted_best_match_shifts_toward_boosted_goal() {
        let m = example_model();
        // H = {a2, a3} (profile g1:2, g5:1). Unweighted winner is a1
        // (pattern (2,1)). Zeroing g1 makes the space effectively
        // one-dimensional on g5, where a6's (0,1) pattern matches the
        // profile direction as well as a1's.
        let w = GoalWeights::new().with(GoalId::new(0), 0.0);
        let recs = WeightedBestMatch::new(DistanceMetric::Cosine, w).rank(
            &m,
            &Activity::from_raw([1, 2]),
            2,
        );
        // Both candidates now have distance 0 on the surviving axis; the
        // tie breaks by id → a1 (0) then a6 (5), both at score ≈ 0.
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.score.abs() < 1e-9), "{recs:?}");
    }

    #[test]
    fn rank_observed_matches_rank_and_reports_candidates() {
        let m = example_model();
        let h = Activity::from_raw([0]);
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(WeightedFocus::new(FocusVariant::Completeness, empty())),
            Box::new(WeightedBreadth::new(empty())),
            Box::new(WeightedBestMatch::new(DistanceMetric::Cosine, empty())),
        ];
        for s in strategies {
            let (ranked, candidates) = s.rank_observed(&m, &h, 3);
            assert_eq!(ranked, s.rank(&m, &h, 3), "{}", s.name());
            assert!(candidates >= ranked.len(), "{}", s.name());
        }
    }

    #[test]
    fn names_and_edge_cases() {
        let m = example_model();
        assert_eq!(
            WeightedFocus::new(FocusVariant::Completeness, empty()).name(),
            "WFocus_cmp"
        );
        assert_eq!(
            WeightedFocus::new(FocusVariant::Closeness, empty()).name(),
            "WFocus_cl"
        );
        assert_eq!(WeightedBreadth::new(empty()).name(), "WBreadth");
        assert_eq!(
            WeightedBestMatch::new(DistanceMetric::Cosine, empty()).name(),
            "WBestMatch"
        );
        for s in [
            Box::new(WeightedBreadth::new(empty())) as Box<dyn Strategy>,
            Box::new(WeightedFocus::new(FocusVariant::Closeness, empty())),
            Box::new(WeightedBestMatch::new(DistanceMetric::Cosine, empty())),
        ] {
            assert!(s.rank(&m, &Activity::new(), 5).is_empty());
            assert!(s.rank(&m, &Activity::from_raw([0]), 0).is_empty());
        }
    }
}
