//! Goal priorities.
//!
//! §3 of the paper observes that "users have to reason on the priorities
//! between the goals they try to achieve", but its strategies treat every
//! goal in the goal space equally. [`GoalWeights`] operationalises
//! priorities: a sparse per-goal multiplier applied to each strategy's
//! goal-derived quantities —
//!
//! * Focus: an implementation's score is multiplied by its goal's weight;
//! * Breadth: each implementation's `|A ∩ H|` contribution is multiplied
//!   by its goal's weight;
//! * Best Match: the goal-space coordinates of both the user profile and
//!   the candidate vectors are scaled by the weight (a weighted feature
//!   space).
//!
//! A weight of `0` removes a goal from consideration entirely; the
//! default weight is `1`, so an empty [`GoalWeights`] reproduces the
//! unweighted strategies exactly (pinned by tests in each strategy
//! module).

use crate::ids::GoalId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sparse per-goal priority multipliers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GoalWeights {
    weights: HashMap<u32, f64>,
}

impl GoalWeights {
    /// Creates an empty weighting (every goal at 1.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the weight of one goal.
    ///
    /// # Panics
    /// Panics on negative or non-finite weights.
    pub fn set(&mut self, goal: GoalId, weight: f64) -> &mut Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "goal weights must be finite and non-negative"
        );
        self.weights.insert(goal.raw(), weight);
        self
    }

    /// Builder-style [`GoalWeights::set`].
    pub fn with(mut self, goal: GoalId, weight: f64) -> Self {
        self.set(goal, weight);
        self
    }

    /// The weight of a goal (1.0 unless set).
    #[inline]
    pub fn get(&self, goal: GoalId) -> f64 {
        self.weights.get(&goal.raw()).copied().unwrap_or(1.0)
    }

    /// Whether any non-default weight is present.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of explicitly weighted goals.
    pub fn len(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_one() {
        let w = GoalWeights::new();
        assert!(w.is_empty());
        assert_eq!(w.get(GoalId::new(5)), 1.0);
    }

    #[test]
    fn set_and_get() {
        let w = GoalWeights::new()
            .with(GoalId::new(1), 2.5)
            .with(GoalId::new(2), 0.0);
        assert_eq!(w.get(GoalId::new(1)), 2.5);
        assert_eq!(w.get(GoalId::new(2)), 0.0);
        assert_eq!(w.get(GoalId::new(3)), 1.0);
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        GoalWeights::new().with(GoalId::new(0), -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_rejected() {
        GoalWeights::new().with(GoalId::new(0), f64::NAN);
    }
}
