//! Bounded top-k selection with deterministic tie-breaking.
//!
//! Every strategy ends by ranking a candidate pool and returning the best
//! `k` (Algorithms 1, 2 and 4 all end with "rank R on score and return the
//! top k"). A bounded binary heap keeps that step `O(n log k)` instead of a
//! full `O(n log n)` sort; the ablation bench `benches/topk.rs` measures the
//! difference.
//!
//! Ties are broken by ascending id so that identical inputs always produce
//! identical lists — the overlap experiments (Tables 2 and 6) compare lists
//! across methods and would be noise without deterministic output.

use crate::ids::ActionId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored item. Higher `score` means more recommendable for every
/// strategy in this crate (distance-based strategies negate their distance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scored {
    /// The recommended action.
    pub action: ActionId,
    /// The strategy-specific score; higher is better.
    pub score: f64,
}

impl Scored {
    /// Convenience constructor.
    pub fn new(action: ActionId, score: f64) -> Self {
        Self { action, score }
    }
}

/// Total order used for ranking: score descending, then id ascending.
/// NaN scores sort last (treated as −∞), so a pathological distance
/// computation can never crowd out real candidates.
///
/// Public because the scatter-gather layer (`goalrec-shard`) must merge
/// per-shard rankings under the *same* total order to stay bit-identical
/// with the unsharded path.
pub fn rank_cmp(a: &Scored, b: &Scored) -> Ordering {
    let sa = if a.score.is_nan() {
        f64::NEG_INFINITY
    } else {
        a.score
    };
    let sb = if b.score.is_nan() {
        f64::NEG_INFINITY
    } else {
        b.score
    };
    sb.partial_cmp(&sa)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.action.cmp(&b.action))
}

/// Min-heap wrapper: the *worst* of the kept k sits on top.
struct HeapItem(Scored);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        rank_cmp(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap and rank_cmp orders best-first (Less =
        // better), so using rank_cmp directly puts the rank-worst item on
        // top, which is exactly the eviction candidate.
        rank_cmp(&self.0, &other.0)
    }
}

/// Bounded top-k accumulator.
#[derive(Default)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapItem>,
}

impl TopK {
    /// Creates an accumulator keeping the best `k` items.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers one candidate.
    pub fn push(&mut self, item: Scored) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapItem(item));
            return;
        }
        // Full: replace the current worst if the newcomer ranks better.
        if let Some(worst) = self.heap.peek() {
            if rank_cmp(&item, &worst.0) == Ordering::Less {
                self.heap.pop();
                self.heap.push(HeapItem(item));
            }
        }
    }

    /// Finalises into a list sorted best-first.
    pub fn into_sorted(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|h| h.0).collect();
        // rank_cmp is a total order with an id tie-break, so the unstable
        // sort is deterministic and avoids the temporary buffer a stable
        // sort would allocate.
        v.sort_unstable_by(rank_cmp);
        v
    }

    /// Re-arms a reused accumulator for a new query, keeping the heap's
    /// backing allocation. Part of the allocation-free hot path: a
    /// [`crate::Scratch`]-owned `TopK` is reset per request instead of
    /// being rebuilt.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        let want = k.saturating_add(1);
        if self.heap.capacity() < want {
            self.heap.reserve(want - self.heap.capacity());
        }
    }

    /// Drains the kept items into `out` (cleared first), sorted best-first,
    /// leaving the accumulator empty but its allocation intact.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Scored>) {
        out.clear();
        out.extend(self.heap.drain().map(|h| h.0));
        out.sort_unstable_by(rank_cmp);
    }

    /// Number of items currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Ranks a full candidate vector (used by the sort-based ablation and by
/// callers that already own a Vec).
pub fn rank_full(mut items: Vec<Scored>, k: usize) -> Vec<Scored> {
    items.sort_by(rank_cmp);
    items.truncate(k);
    items
}

/// Selects top-k from an iterator via the bounded heap.
pub fn top_k<I: IntoIterator<Item = Scored>>(items: I, k: usize) -> Vec<Scored> {
    let mut acc = TopK::new(k);
    for it in items {
        acc.push(it);
    }
    acc.into_sorted()
}

/// Allocation-free k-way merge step over `n` already-sorted streams.
///
/// `heads[i]` is the cursor into stream `i`; `peek(i, heads[i])` returns
/// the element the cursor points at, or `None` when stream `i` is
/// exhausted. One call finds the stream whose head is smallest under
/// `cmp`, advances that cursor, and returns the stream index — `None`
/// once every stream is dry.
///
/// The closure-based shape avoids materialising a `Vec<&[T]>` per merge:
/// the scatter-gather layer calls this with cursors into per-shard
/// scratch buffers, so the steady state touches no allocator. A linear
/// scan over `n` streams is deliberate — shard counts are small (≤ 16)
/// and a loser tree would cost more in bookkeeping than it saves.
pub fn kway_next<T, P, C>(n: usize, heads: &mut [usize], peek: P, mut cmp: C) -> Option<usize>
where
    P: Fn(usize, usize) -> Option<T>,
    C: FnMut(&T, &T) -> Ordering,
{
    let mut best: Option<(usize, T)> = None;
    for (stream, &head) in heads.iter().enumerate().take(n) {
        let Some(item) = peek(stream, head) else {
            continue;
        };
        match &best {
            Some((_, incumbent)) if cmp(&item, incumbent) != Ordering::Less => {}
            _ => best = Some((stream, item)),
        }
    }
    let (stream, _) = best?;
    heads[stream] += 1;
    Some(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(a: u32, sc: f64) -> Scored {
        Scored::new(ActionId::new(a), sc)
    }

    #[test]
    fn keeps_best_k_sorted() {
        let got = top_k(vec![s(1, 0.5), s(2, 0.9), s(3, 0.1), s(4, 0.7)], 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].action, ActionId::new(2));
        assert_eq!(got[1].action, ActionId::new(4));
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let got = top_k(vec![s(9, 1.0), s(3, 1.0), s(5, 1.0)], 2);
        assert_eq!(got[0].action, ActionId::new(3));
        assert_eq!(got[1].action, ActionId::new(5));
    }

    #[test]
    fn fewer_items_than_k() {
        let got = top_k(vec![s(1, 0.2)], 10);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn k_zero_yields_empty() {
        let got = top_k(vec![s(1, 0.2), s(2, 0.8)], 0);
        assert!(got.is_empty());
    }

    #[test]
    fn nan_scores_rank_last() {
        let got = top_k(vec![s(1, f64::NAN), s(2, 0.1), s(3, 0.2)], 2);
        assert_eq!(got[0].action, ActionId::new(3));
        assert_eq!(got[1].action, ActionId::new(2));
    }

    #[test]
    fn accumulator_len_tracking() {
        let mut t = TopK::new(2);
        assert!(t.is_empty());
        t.push(s(1, 1.0));
        t.push(s(2, 2.0));
        t.push(s(3, 3.0));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn reset_and_drain_reuse_the_accumulator() {
        let mut t = TopK::new(1);
        t.push(s(1, 1.0));
        let mut out = vec![s(9, 9.0)]; // stale content must vanish
        t.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].action, ActionId::new(1));
        assert!(t.is_empty());
        // Re-arm with a different k; results match a fresh accumulator.
        t.reset(2);
        for it in [s(1, 0.5), s(2, 0.9), s(3, 0.1), s(4, 0.7)] {
            t.push(it);
        }
        t.drain_sorted_into(&mut out);
        let fresh = top_k(vec![s(1, 0.5), s(2, 0.9), s(3, 0.1), s(4, 0.7)], 2);
        assert_eq!(out, fresh);
        // reset(0) keeps nothing.
        t.reset(0);
        t.push(s(5, 5.0));
        assert!(t.is_empty());
    }

    #[test]
    fn rank_full_agrees_on_small_input() {
        let items = vec![s(1, 0.5), s(2, 0.9), s(3, 0.5)];
        let a = rank_full(items.clone(), 2);
        let b = top_k(items, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn kway_next_merges_sorted_streams_in_order() {
        let streams: Vec<Vec<u32>> = vec![vec![1, 4, 7], vec![2, 3, 9], vec![], vec![5]];
        let mut heads = vec![0usize; streams.len()];
        let mut merged = Vec::new();
        while let Some(s) = kway_next(
            streams.len(),
            &mut heads,
            |i, h| streams[i].get(h).copied(),
            |a, b| a.cmp(b),
        ) {
            merged.push(streams[s][heads[s] - 1]);
        }
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 7, 9]);
    }

    #[test]
    fn kway_next_breaks_ties_by_lowest_stream() {
        let streams = [vec![1u32, 1], vec![1u32]];
        let mut heads = [0usize; 2];
        let order: Vec<usize> = std::iter::from_fn(|| {
            kway_next(
                2,
                &mut heads,
                |i, h| streams[i].get(h).copied(),
                |a, b| a.cmp(b),
            )
        })
        .collect();
        assert_eq!(order, vec![0, 0, 1]);
    }

    #[test]
    fn kway_next_on_empty_streams_is_none() {
        let mut heads = [0usize; 3];
        assert_eq!(
            kway_next(3, &mut heads, |_, _| None::<u32>, |a: &u32, b| a.cmp(b)),
            None
        );
    }

    proptest! {
        #[test]
        fn prop_kway_merge_equals_global_sort(
            chunks in proptest::collection::vec(
                proptest::collection::vec(0u32..100, 0..20), 1..6)
        ) {
            let streams: Vec<Vec<u32>> = chunks
                .into_iter()
                .map(|mut c| {
                    c.sort_unstable();
                    c
                })
                .collect();
            let mut heads = vec![0usize; streams.len()];
            let mut merged = Vec::new();
            while let Some(s) = kway_next(
                streams.len(),
                &mut heads,
                |i, h| streams[i].get(h).copied(),
                |a, b| a.cmp(b),
            ) {
                merged.push(streams[s][heads[s] - 1]);
            }
            let mut expect: Vec<u32> = streams.iter().flatten().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(merged, expect);
        }

        #[test]
        fn prop_heap_equals_full_sort(
            scores in proptest::collection::vec((0u32..200, -100.0f64..100.0), 0..200),
            k in 0usize..20
        ) {
            let items: Vec<Scored> = scores.iter().map(|&(a, sc)| s(a, sc)).collect();
            let heap = top_k(items.clone(), k);
            let sorted = rank_full(items, k);
            prop_assert_eq!(heap, sorted);
        }

        #[test]
        fn prop_output_is_rank_sorted(
            scores in proptest::collection::vec((0u32..200, -100.0f64..100.0), 0..200),
            k in 1usize..20
        ) {
            let items: Vec<Scored> = scores.iter().map(|&(a, sc)| s(a, sc)).collect();
            let got = top_k(items, k);
            for w in got.windows(2) {
                prop_assert!(rank_cmp(&w[0], &w[1]) != Ordering::Greater);
            }
        }
    }
}
