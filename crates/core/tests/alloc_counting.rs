//! Counting-allocator proof of the zero-allocation hot path.
//!
//! A global allocator wrapper counts every `alloc`/`realloc`; after two
//! warm-up calls per (strategy, activity) pair have sized the arena's
//! buffers, a steady-state `rank_into` — and the full `recommend_into`
//! facade — must perform exactly zero heap allocations.
//!
//! Deliberately a single `#[test]`: the counter is process-global, so a
//! second concurrent test would pollute the measurement.

use goalrec_core::strategies::default_strategies;
use goalrec_core::{Activity, GoalModel, GoalRecommender, LibraryBuilder, Scratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A library big enough that sloppy per-request allocation would show up
/// (dozens of goals, overlapping action sets).
fn library_builder() -> LibraryBuilder {
    let mut b = LibraryBuilder::new();
    for g in 0..24u32 {
        for v in 0..3u32 {
            let actions: Vec<String> = (0..4u32)
                .map(|i| format!("a{}", (g * 7 + v * 13 + i * 5) % 40))
                .collect();
            let refs: Vec<&str> = actions.iter().map(String::as_str).collect();
            b.add_impl(&format!("g{g}"), refs).unwrap();
        }
    }
    b
}

#[test]
fn steady_state_rank_into_performs_zero_heap_allocations() {
    let lib = library_builder().build().unwrap();
    let model = Arc::new(GoalModel::build(&lib).unwrap());
    let activities: Vec<Activity> = vec![
        Activity::from_raw([0]),
        Activity::from_raw([1, 5, 9]),
        Activity::from_raw([2, 3, 17, 30]),
    ];
    let mut scratch = Scratch::new();

    // Warm-up: two rounds per (strategy, activity) pair grow every arena
    // buffer to its steady-state capacity.
    let strategies = default_strategies();
    for _ in 0..2 {
        for s in &strategies {
            for h in &activities {
                s.rank_into(&model, h, 10, &mut scratch);
            }
        }
    }

    for s in &strategies {
        for h in &activities {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let n = s.rank_into(&model, h, 10, &mut scratch);
            let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert_eq!(
                delta,
                0,
                "{} allocated {delta} time(s) on a steady-state rank_into (H={:?})",
                s.name(),
                h
            );
            assert!(
                n > 0,
                "{} found no candidates — vacuous measurement",
                s.name()
            );
            assert!(!scratch.out().is_empty());
        }
    }

    // The serving facade stays allocation-free too: metrics are atomics
    // and the result is a borrow of the arena's output buffer.
    let rec = GoalRecommender::new(Arc::clone(&model), Box::new(goalrec_core::Breadth));
    for _ in 0..2 {
        rec.recommend_into(&activities[1], 10, &mut scratch);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let ranked = rec.recommend_into(&activities[1], 10, &mut scratch);
    assert!(!ranked.is_empty());
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "recommend_into allocated {delta} time(s) on the steady-state path"
    );

    // With tracing ENABLED the path must stay allocation-free too: spans
    // land in the trace's fixed array and the phase marks are plain clock
    // reads. This is the guarantee that lets the server trace every
    // request by default.
    let mut trace = goalrec_obs::TraceContext::new(true);
    for _ in 0..2 {
        trace.begin(goalrec_obs::TraceId(7), std::time::Instant::now());
        rec.recommend_into_traced(&activities[1], 10, &mut scratch, &mut trace);
        trace.finish(200);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    trace.begin(goalrec_obs::TraceId(8), std::time::Instant::now());
    let ranked = rec.recommend_into_traced(&activities[1], 10, &mut scratch, &mut trace);
    assert!(!ranked.is_empty());
    trace.finish(200);
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "recommend_into_traced with an enabled trace allocated {delta} time(s)"
    );
    assert!(
        trace
            .spans()
            .iter()
            .any(|s| s.name == goalrec_obs::names::SPAN_RANK),
        "the traced call must actually record a rank span"
    );

    // The live-mutation hot path with an EMPTY delta — what the server
    // serves between appends — must be exactly as allocation-free as the
    // plain path: `LiveRef::overlay` drops an empty delta, so every
    // strategy's `rank_live_into` dispatches straight to the compiled
    // base with no per-request overlay bookkeeping.
    let empty_delta = goalrec_core::DeltaSegment::for_base(&model);
    let live = goalrec_core::LiveRef::overlay(&model, &empty_delta);
    assert!(
        live.delta().is_none(),
        "an empty delta must vanish from the read path"
    );
    for s in &strategies {
        for h in &activities {
            for _ in 0..2 {
                s.rank_live_into(live, h, 10, &mut scratch);
            }
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let n = s.rank_live_into(live, h, 10, &mut scratch);
            let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert_eq!(
                delta,
                0,
                "{} allocated {delta} time(s) on an empty-delta rank_live_into (H={:?})",
                s.name(),
                h
            );
            assert!(n > 0, "{} found no candidates on the live path", s.name());
        }
    }
}
