//! CSR equivalence properties.
//!
//! The flattened index layout (one `offsets` + `data` pair per index) must
//! be observationally identical to the per-row boxed layout it replaced:
//! for any library, every accessor row, every space operator, and every
//! strategy's full ranking must match a reference computed directly from
//! the library with per-row `Box<[u32]>` posting lists — bit for bit.

use goalrec_core::strategies::default_strategies;
use goalrec_core::{ActionId, Activity, GoalId, GoalLibrary, GoalModel, ImplId, Scratch};
use proptest::prelude::*;

const MAX_ACTIONS: u32 = 18;
const MAX_GOALS: u32 = 7;

/// The pre-CSR layout, rebuilt naively from the library: one boxed sorted
/// row per implementation / goal / action.
struct BoxedIndexes {
    impl_actions: Vec<Box<[u32]>>,
    impl_goal: Vec<u32>,
    goal_impls: Vec<Box<[u32]>>,
    action_impls: Vec<Box<[u32]>>,
}

impl BoxedIndexes {
    fn build(lib: &GoalLibrary) -> Self {
        let num_actions = lib.num_actions();
        let num_goals = lib.num_goals();
        let mut impl_actions = Vec::new();
        let mut impl_goal = Vec::new();
        let mut goal_impls = vec![Vec::new(); num_goals];
        let mut action_impls = vec![Vec::new(); num_actions];
        for (i, imp) in lib.implementations().iter().enumerate() {
            let row: Vec<u32> = imp.actions.iter().map(|a| a.raw()).collect();
            for &a in &row {
                action_impls[a as usize].push(i as u32);
            }
            goal_impls[imp.goal.raw() as usize].push(i as u32);
            impl_actions.push(row.into_boxed_slice());
            impl_goal.push(imp.goal.raw());
        }
        BoxedIndexes {
            impl_actions,
            impl_goal,
            goal_impls: goal_impls.into_iter().map(Vec::into_boxed_slice).collect(),
            action_impls: action_impls
                .into_iter()
                .map(Vec::into_boxed_slice)
                .collect(),
        }
    }

    /// `IS(H)`: union of `action_impls` rows, sorted and deduplicated.
    fn implementation_space(&self, h: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = h
            .iter()
            .filter(|&&a| (a as usize) < self.action_impls.len())
            .flat_map(|&a| self.action_impls[a as usize].iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `GS(H)`: goals of `IS(H)`, sorted and deduplicated.
    fn goal_space(&self, h: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .implementation_space(h)
            .iter()
            .map(|&p| self.impl_goal[p as usize])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `AS(H)`: actions of `IS(H)` minus the performed set.
    fn action_space(&self, h: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .implementation_space(h)
            .iter()
            .flat_map(|&p| self.impl_actions[p as usize].iter().copied())
            .filter(|a| h.binary_search(a).is_err())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn library_and_activity() -> impl Strategy<Value = (GoalLibrary, Activity)> {
    (
        proptest::collection::vec(
            (
                0..MAX_GOALS,
                proptest::collection::btree_set(0..MAX_ACTIONS, 1..6),
            ),
            1..25,
        ),
        proptest::collection::btree_set(0..MAX_ACTIONS, 0..7),
    )
        .prop_map(|(impls, h)| {
            let lib = GoalLibrary::from_id_implementations(
                MAX_ACTIONS,
                MAX_GOALS,
                impls
                    .into_iter()
                    .map(|(g, acts)| {
                        (
                            GoalId::new(g),
                            acts.into_iter().map(ActionId::new).collect(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
            (lib, Activity::from_raw(h))
        })
}

proptest! {
    /// Every accessor row of the CSR model equals the boxed-layout row.
    #[test]
    fn csr_rows_match_boxed_layout((lib, _h) in library_and_activity()) {
        let m = GoalModel::build(&lib).unwrap();
        let r = BoxedIndexes::build(&lib);
        prop_assert_eq!(m.num_impls(), r.impl_actions.len());
        for i in 0..m.num_impls() {
            let p = ImplId::new(i as u32);
            prop_assert_eq!(m.impl_actions(p), &r.impl_actions[i][..], "impl_actions[{}]", i);
            prop_assert_eq!(m.impl_goal(p).raw(), r.impl_goal[i], "impl_goal[{}]", i);
        }
        for g in 0..m.num_goals() {
            prop_assert_eq!(
                m.goal_impls(GoalId::new(g as u32)),
                &r.goal_impls[g][..],
                "goal_impls[{}]", g
            );
        }
        for a in 0..m.num_actions() {
            prop_assert_eq!(
                m.action_impls(ActionId::new(a as u32)),
                &r.action_impls[a][..],
                "action_impls[{}]", a
            );
        }
        m.validate().unwrap();
    }

    /// The three §4 space operators match the boxed-layout references.
    #[test]
    fn space_operators_match_boxed_layout((lib, h) in library_and_activity()) {
        let m = GoalModel::build(&lib).unwrap();
        let r = BoxedIndexes::build(&lib);
        let h = h.raw();
        prop_assert_eq!(m.implementation_space(h), r.implementation_space(h));
        prop_assert_eq!(m.goal_space(h), r.goal_space(h));
        prop_assert_eq!(m.action_space(h), r.action_space(h));
    }

    /// Every strategy's arena-based ranking equals its allocating ranking
    /// bit for bit — including scores — with a dirty, reused scratch.
    #[test]
    fn rank_into_matches_rank_bit_for_bit(
        cases in proptest::collection::vec((library_and_activity(), 0usize..12), 1..4)
    ) {
        // One arena across every case, model, and strategy: carried-over
        // stamps, buffers, and epoch state must never leak into results.
        let mut scratch = Scratch::new();
        for ((lib, h), k) in &cases {
            let m = GoalModel::build(lib).unwrap();
            for s in default_strategies() {
                let expect = s.rank(&m, h, *k);
                let n = s.rank_into(&m, h, *k, &mut scratch);
                prop_assert_eq!(
                    scratch.out(), &expect[..],
                    "{} k={} H={:?}", s.name(), k, h
                );
                let (expect_list, expect_n) = s.rank_observed(&m, h, *k);
                prop_assert_eq!(scratch.out(), &expect_list[..], "{}", s.name());
                prop_assert_eq!(n, expect_n, "{} candidate count", s.name());
            }
        }
    }
}
