//! Property tests for the incremental model: a random interleaving of
//! add/remove operations must leave [`DynamicGoalModel`] equivalent to a
//! naive reference (a plain map of live implementations).

use goalrec_core::{ActionId, DynamicGoalModel, GoalId, ImplId};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Add an implementation for `goal` over the action set.
    Add(u32, Vec<u32>),
    /// Remove the `n`-th previously added implementation (mod count).
    Remove(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (
                0u32..6,
                proptest::collection::btree_set(0u32..15, 1..5)
            )
                .prop_map(|(g, acts)| Op::Add(g, acts.into_iter().collect())),
            1 => (0usize..64).prop_map(Op::Remove),
        ],
        1..40,
    )
}

/// Naive reference: live implementations by id.
#[derive(Default)]
struct Reference {
    live: BTreeMap<u32, (u32, Vec<u32>)>,
    next_id: u32,
}

impl Reference {
    fn add(&mut self, goal: u32, actions: Vec<u32>) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (goal, actions));
        id
    }

    fn remove(&mut self, id: u32) {
        self.live.remove(&id);
    }

    fn action_impls(&self, a: u32) -> Vec<u32> {
        self.live
            .iter()
            .filter(|(_, (_, acts))| acts.contains(&a))
            .map(|(&id, _)| id)
            .collect()
    }

    fn goal_impls(&self, g: u32) -> Vec<u32> {
        self.live
            .iter()
            .filter(|(_, (goal, _))| *goal == g)
            .map(|(&id, _)| id)
            .collect()
    }

    fn goal_space(&self, h: &[u32]) -> Vec<u32> {
        let mut goals: Vec<u32> = self
            .live
            .values()
            .filter(|(_, acts)| acts.iter().any(|a| h.contains(a)))
            .map(|(g, _)| *g)
            .collect();
        goals.sort_unstable();
        goals.dedup();
        goals
    }
}

proptest! {
    #[test]
    fn dynamic_model_matches_reference(ops in ops(), probe in 0u32..15) {
        let mut dm = DynamicGoalModel::new();
        let mut reference = Reference::default();
        let mut added: Vec<u32> = Vec::new();

        for op in ops {
            match op {
                Op::Add(goal, actions) => {
                    let id = dm
                        .add_implementation(
                            GoalId::new(goal),
                            actions.iter().map(|&a| ActionId::new(a)).collect(),
                        )
                        .unwrap();
                    let ref_id = reference.add(goal, actions);
                    prop_assert_eq!(id.raw(), ref_id);
                    added.push(ref_id);
                }
                Op::Remove(n) => {
                    if added.is_empty() {
                        continue;
                    }
                    let id = added[n % added.len()];
                    dm.remove_implementation(ImplId::new(id)).unwrap();
                    reference.remove(id);
                }
            }
        }

        prop_assert_eq!(dm.len(), reference.live.len());
        prop_assert_eq!(
            dm.action_impls(ActionId::new(probe)).to_vec(),
            reference.action_impls(probe)
        );
        for g in 0..6u32 {
            prop_assert_eq!(
                dm.goal_impls(GoalId::new(g)).to_vec(),
                reference.goal_impls(g),
                "goal {}", g
            );
        }
        prop_assert_eq!(dm.goal_space(&[probe]), reference.goal_space(&[probe]));

        // The snapshot compiles iff something is live, and preserves the
        // live multiset of (goal, actions) pairs.
        match dm.compile() {
            Ok(model) => {
                prop_assert_eq!(model.num_impls(), reference.live.len());
                let mut snap: Vec<(u32, Vec<u32>)> = (0..model.num_impls() as u32)
                    .map(|p| {
                        (
                            model.impl_goal(ImplId::new(p)).raw(),
                            model.impl_actions(ImplId::new(p)).to_vec(),
                        )
                    })
                    .collect();
                let mut expect: Vec<(u32, Vec<u32>)> =
                    reference.live.values().cloned().collect();
                snap.sort();
                expect.sort();
                prop_assert_eq!(snap, expect);
            }
            Err(_) => prop_assert!(reference.live.is_empty()),
        }
    }
}
