//! Property proof of the live overlay exactness contract.
//!
//! For random base libraries and random append sequences, ranking through
//! `Strategy::rank_live_into` on a base ⊕ delta overlay must be
//! **bit-for-bit identical** — action ids, `f64` score bits, tie-break
//! order, candidate counts — to compiling the merged library with
//! `GoalModel::build` and ranking with the plain `rank_into`, for every
//! built-in strategy (weighted variants included). This is what lets the
//! server admit appends into the delta and keep serving from the old
//! compiled base without any answer changing relative to an immediate
//! full rebuild.
//!
//! The exactness argument (also in `goalrec_core::live`'s module docs):
//! staged implementation ids form a dense suffix after the base ids, so
//! every merged posting row is `base_row ⧺ delta_row` — already sorted —
//! and all strategy arithmetic is either integer-exact (Breadth), a total
//! order on (score, id) (Focus), or computed coordinate-wise from the
//! same counts (Best Match).

use goalrec_core::ids::{ActionId, GoalId};
use goalrec_core::strategies::{
    BestMatch, Breadth, Focus, FocusVariant, GoalWeights, Strategy, WeightedBestMatch,
    WeightedBreadth, WeightedFocus,
};
use goalrec_core::topk::Scored;
use goalrec_core::{
    Activity, DeltaSegment, DistanceMetric, GoalLibrary, GoalModel, LiveRef, Scratch,
};
use proptest::prelude::*;

/// Every built-in strategy family, the weighted wrappers with a
/// deliberately lopsided weighting so the multiplier actually bites.
fn all_strategies() -> Vec<Box<dyn Strategy>> {
    let w = GoalWeights::new()
        .with(GoalId::new(0), 2.5)
        .with(GoalId::new(3), 0.25)
        .with(GoalId::new(7), 1.75);
    vec![
        Box::new(Breadth),
        Box::new(Focus::new(FocusVariant::Completeness)),
        Box::new(Focus::new(FocusVariant::Closeness)),
        Box::new(BestMatch::default()),
        Box::new(WeightedBreadth::new(w.clone())),
        Box::new(WeightedFocus::new(FocusVariant::Completeness, w.clone())),
        Box::new(WeightedBestMatch::new(DistanceMetric::Euclidean, w)),
    ]
}

/// The merged library the compactor would persist: base implementations
/// in id order, then the appends in acceptance order.
fn merged_library(base: &GoalLibrary, appends: &[(u32, Vec<u32>)]) -> GoalLibrary {
    let mut num_actions = u32::try_from(base.num_actions()).unwrap();
    let mut num_goals = u32::try_from(base.num_goals()).unwrap();
    let mut impls: Vec<(GoalId, Vec<ActionId>)> = base
        .implementations()
        .iter()
        .map(|imp| (imp.goal, imp.actions.clone()))
        .collect();
    for (g, actions) in appends {
        num_goals = num_goals.max(*g + 1);
        for &a in actions {
            num_actions = num_actions.max(a + 1);
        }
        impls.push((
            GoalId::new(*g),
            actions.iter().copied().map(ActionId::new).collect(),
        ));
    }
    GoalLibrary::from_id_implementations(num_actions, num_goals, impls).unwrap()
}

fn assert_identical(got: &[Scored], expect: &[Scored], ctx: &str) {
    assert_eq!(got.len(), expect.len(), "length mismatch {ctx}");
    for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
        assert_eq!(g.action, e.action, "action #{i} differs {ctx}");
        assert_eq!(
            g.score.to_bits(),
            e.score.to_bits(),
            "score bits #{i} differ {ctx}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: random base, random appends (including
    /// brand-new goals and actions beyond the base id spaces), every
    /// strategy, bit-identical to the merged rebuild.
    #[test]
    fn live_overlay_is_bit_identical_to_merged_rebuild(
        base_impls in proptest::collection::vec(
            (0u32..8, proptest::collection::btree_set(0u32..15, 1..6)),
            1..20
        ),
        appends_set in proptest::collection::vec(
            (0u32..12, proptest::collection::btree_set(0u32..20, 1..6)),
            1..12
        ),
        h in proptest::collection::btree_set(0u32..20, 0..8),
        k in 1usize..12
    ) {
        let appends: Vec<(u32, Vec<u32>)> = appends_set
            .into_iter()
            .map(|(g, acts)| (g, acts.into_iter().collect()))
            .collect();
        let base = GoalLibrary::from_id_implementations(
            15,
            8,
            base_impls
                .into_iter()
                .map(|(g, acts)| {
                    (GoalId::new(g), acts.into_iter().map(ActionId::new).collect())
                })
                .collect(),
        )
        .unwrap();
        let base_model = GoalModel::build(&base).unwrap();
        let mut delta = DeltaSegment::for_base(&base_model);
        for (g, actions) in &appends {
            delta
                .append(
                    GoalId::new(*g),
                    actions.iter().copied().map(ActionId::new).collect(),
                )
                .unwrap();
        }
        let merged_model = GoalModel::build(&merged_library(&base, &appends)).unwrap();
        let live = LiveRef::overlay(&base_model, &delta);

        let mut scratch = Scratch::default();
        for s in all_strategies() {
            let n_full = s.rank_into(&merged_model, &h_activity(&h), k, &mut scratch);
            let expect = scratch.out().to_vec();
            let n_live = s.rank_live_into(live, &h_activity(&h), k, &mut scratch);
            let ctx = format!("{} k={k} h={h:?}", s.name());
            assert_identical(scratch.out(), &expect, &ctx);
            prop_assert_eq!(n_live, n_full, "candidate counts differ {}", ctx);
        }
    }
}

fn h_activity(h: &std::collections::BTreeSet<u32>) -> Activity {
    Activity::from_raw(h.iter().copied())
}

/// A tombstoned staged implementation must rank exactly like a merged
/// rebuild that never contained it: gap-vs-dense implementation ids
/// preserve the relative (score, id) order every strategy relies on.
#[test]
fn tombstoned_staged_impl_matches_a_rebuild_without_it() {
    let base = GoalLibrary::from_id_implementations(
        4,
        2,
        vec![
            (GoalId::new(0), vec![ActionId::new(0), ActionId::new(1)]),
            (GoalId::new(1), vec![ActionId::new(1), ActionId::new(2)]),
        ],
    )
    .unwrap();
    let base_model = GoalModel::build(&base).unwrap();
    let mut delta = DeltaSegment::for_base(&base_model);
    delta
        .append(GoalId::new(0), vec![ActionId::new(2), ActionId::new(3)])
        .unwrap();
    let doomed = delta
        .append(GoalId::new(1), vec![ActionId::new(0), ActionId::new(3)])
        .unwrap();
    delta
        .append(GoalId::new(2), vec![ActionId::new(1), ActionId::new(3)])
        .unwrap();
    delta.remove(doomed).unwrap();

    // The rebuild only ever sees the two surviving appends.
    let appends = vec![(0u32, vec![2u32, 3u32]), (2u32, vec![1u32, 3u32])];
    let merged_model = GoalModel::build(&merged_library(&base, &appends)).unwrap();
    let live = LiveRef::overlay(&base_model, &delta);

    let mut scratch = Scratch::default();
    for s in all_strategies() {
        for h in [
            Activity::from_raw([0]),
            Activity::from_raw([1, 3]),
            Activity::from_raw([0, 2]),
        ] {
            let n_full = s.rank_into(&merged_model, &h, 10, &mut scratch);
            let expect = scratch.out().to_vec();
            let n_live = s.rank_live_into(live, &h, 10, &mut scratch);
            assert_identical(scratch.out(), &expect, s.name());
            assert_eq!(n_live, n_full, "{}", s.name());
        }
    }
    // Sanity: the doomed id is really gone from the overlay.
    assert_eq!(delta.len(), 2);
}
