//! Property tests for the association-based goal model: the structural
//! invariants of §4 must hold for *any* library, not just the worked
//! examples.

use goalrec_core::{ActionId, GoalId, GoalLibrary, GoalModel, ImplId};
use proptest::prelude::*;

const MAX_ACTIONS: u32 = 20;
const MAX_GOALS: u32 = 8;

/// Random small libraries: 1–30 implementations over bounded id spaces.
fn library() -> impl Strategy<Value = GoalLibrary> {
    proptest::collection::vec(
        (
            0..MAX_GOALS,
            proptest::collection::btree_set(0..MAX_ACTIONS, 1..6),
        ),
        1..30,
    )
    .prop_map(|impls| {
        GoalLibrary::from_id_implementations(
            MAX_ACTIONS,
            MAX_GOALS,
            impls
                .into_iter()
                .map(|(g, acts)| {
                    (
                        GoalId::new(g),
                        acts.into_iter().map(ActionId::new).collect(),
                    )
                })
                .collect(),
        )
        .expect("generator emits valid libraries")
    })
}

proptest! {
    /// A-GI-idx is the exact inverse of GI-A-idx: `p ∈ IS(a) ⟺ a ∈ A_p`.
    #[test]
    fn action_impls_inverts_impl_actions(lib in library()) {
        let m = GoalModel::build(&lib).unwrap();
        for a in 0..m.num_actions() as u32 {
            for &p in m.action_impls(ActionId::new(a)) {
                prop_assert!(m.impl_actions(ImplId::new(p)).binary_search(&a).is_ok());
            }
        }
        for p in 0..m.num_impls() as u32 {
            for &a in m.impl_actions(ImplId::new(p)) {
                prop_assert!(m.action_impls(ActionId::new(a)).binary_search(&p).is_ok());
            }
        }
    }

    /// The inverse goal index partitions the implementation ids.
    #[test]
    fn goal_impls_partition_implementations(lib in library()) {
        let m = GoalModel::build(&lib).unwrap();
        let mut seen = vec![false; m.num_impls()];
        for g in 0..m.num_goals() as u32 {
            for &p in m.goal_impls(GoalId::new(g)) {
                prop_assert_eq!(m.impl_goal(ImplId::new(p)), GoalId::new(g));
                prop_assert!(!seen[p as usize], "impl listed under two goals");
                seen[p as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Co-contribution is symmetric: `a' ∈ AS(a) ⟺ a ∈ AS(a')`.
    #[test]
    fn action_space_symmetry(lib in library()) {
        let m = GoalModel::build(&lib).unwrap();
        for a in 0..m.num_actions() as u32 {
            for b in m.action_space_of_action(ActionId::new(a)) {
                let back = m.action_space_of_action(ActionId::new(b));
                prop_assert!(back.binary_search(&a).is_ok(), "{a} ∈ AS({b}) missing");
            }
        }
    }

    /// Set-extension laws (Eq. 1–2): the spaces of an activity are the
    /// unions of the single-action spaces.
    #[test]
    fn activity_spaces_are_unions(
        lib in library(),
        h in proptest::collection::btree_set(0..MAX_ACTIONS, 0..6)
    ) {
        let m = GoalModel::build(&lib).unwrap();
        let h: Vec<u32> = h.into_iter().collect();

        let mut union_is: Vec<u32> = Vec::new();
        let mut union_gs: Vec<u32> = Vec::new();
        let mut union_as: Vec<u32> = Vec::new();
        for &a in &h {
            union_is.extend_from_slice(m.action_impls(ActionId::new(a)));
            union_gs.extend(m.goal_space_of_action(ActionId::new(a)));
            union_as.extend(m.action_space_of_action(ActionId::new(a)));
        }
        goalrec_core::setops::normalize(&mut union_is);
        goalrec_core::setops::normalize(&mut union_gs);
        goalrec_core::setops::normalize(&mut union_as);
        // AS(A) additionally removes the activity's own actions.
        let union_as = goalrec_core::setops::difference(&union_as, &h);

        prop_assert_eq!(m.implementation_space(&h), union_is);
        prop_assert_eq!(m.goal_space(&h), union_gs);
        prop_assert_eq!(m.action_space(&h), union_as);
    }

    /// Goal completeness is monotone in the activity and bounded in [0,1];
    /// a full activity completes every associated goal.
    #[test]
    fn completeness_monotone_and_bounded(
        lib in library(),
        h in proptest::collection::btree_set(0..MAX_ACTIONS, 0..6),
        extra in 0..MAX_ACTIONS
    ) {
        let m = GoalModel::build(&lib).unwrap();
        let h: Vec<u32> = h.into_iter().collect();
        let mut h2 = h.clone();
        h2.push(extra);
        goalrec_core::setops::normalize(&mut h2);

        for g in 0..m.num_goals() as u32 {
            let c1 = m.goal_completeness(GoalId::new(g), &h);
            let c2 = m.goal_completeness(GoalId::new(g), &h2);
            prop_assert!((0.0..=1.0).contains(&c1));
            prop_assert!(c2 >= c1 - 1e-12, "completeness decreased: {c1} → {c2}");
        }

        let all: Vec<u32> = (0..MAX_ACTIONS).collect();
        for g in 0..m.num_goals() as u32 {
            let gid = GoalId::new(g);
            let c = m.goal_completeness(gid, &all);
            if m.goal_impls(gid).is_empty() {
                prop_assert_eq!(c, 0.0);
            } else {
                prop_assert!((c - 1.0).abs() < 1e-12);
            }
        }
    }

    /// Model compilation is stable: building twice yields identical
    /// answers for every query surface.
    #[test]
    fn build_is_deterministic(lib in library()) {
        let m1 = GoalModel::build(&lib).unwrap();
        let m2 = GoalModel::build(&lib).unwrap();
        for a in 0..m1.num_actions() as u32 {
            prop_assert_eq!(
                m1.action_impls(ActionId::new(a)),
                m2.action_impls(ActionId::new(a))
            );
        }
        for g in 0..m1.num_goals() as u32 {
            prop_assert_eq!(m1.goal_impls(GoalId::new(g)), m2.goal_impls(GoalId::new(g)));
        }
    }
}
