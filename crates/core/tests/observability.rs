//! End-to-end checks that the metrics layer observes model builds,
//! per-strategy serving, and the batch driver.
//!
//! The registry is process-global and tests share one process, so every
//! assertion is monotone (`>=`, presence) rather than exact.

use goalrec_core::activity::Activity;
use goalrec_core::batch::{recommend_batch, recommend_batch_actions};
use goalrec_core::library::LibraryBuilder;
use goalrec_core::model::GoalModel;
use goalrec_core::recommend::{GoalRecommender, Recommender};
use goalrec_obs as obs;
use std::sync::Arc;

fn model() -> GoalModel {
    let mut b = LibraryBuilder::new();
    b.add_impl("g1", ["a1", "a2"]).unwrap();
    b.add_impl("g1", ["a1", "a3"]).unwrap();
    b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
    b.add_impl("g3", ["a4", "a6"]).unwrap();
    b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
    GoalModel::build(&b.build().unwrap()).unwrap()
}

#[test]
fn build_records_all_five_index_spans() {
    let _m = model();
    let report = obs::snapshot();
    for span in [
        "model.build.a_idx",
        "model.build.g_idx",
        "model.build.gi_a_idx",
        "model.build.gi_g_idx",
        "model.build.a_gi_idx",
        "model.build.total",
    ] {
        let h = report
            .histogram(span)
            .unwrap_or_else(|| panic!("span {span} missing"));
        assert!(h.count >= 1, "span {span} never recorded");
        assert!(h.max > 0, "span {span} recorded a zero time");
    }
    assert!(report.counter("model.builds").unwrap_or(0) >= 1);
    assert_eq!(report.gauge("model.impls"), Some(5.0));
}

#[test]
fn strategies_record_requests_latency_and_candidates() {
    let model = Arc::new(model());
    let h = Activity::from_raw([0]);
    for rec in GoalRecommender::all_strategies(Arc::clone(&model)) {
        let name = rec.name();
        let before = obs::snapshot()
            .counter(&format!("strategy.{name}.requests"))
            .unwrap_or(0);
        let ranked = rec.recommend(&h, 3);
        let report = obs::snapshot();
        assert_eq!(
            report.counter(&format!("strategy.{name}.requests")),
            Some(before + 1)
        );
        let latency = report
            .histogram(&format!("strategy.{name}.latency"))
            .expect("latency histogram");
        assert!(latency.count >= 1);
        assert!(latency.max > 0);
        let candidates = report
            .histogram(&format!("strategy.{name}.candidates"))
            .expect("candidates histogram");
        assert!(candidates.count >= 1);
        // All strategies see candidates on this connected example.
        assert!(candidates.max >= ranked.len() as u64);
        assert!(!ranked.is_empty());
    }
}

#[test]
fn batch_records_wall_clock_and_per_request_latency() {
    let model = Arc::new(model());
    let rec = &GoalRecommender::all_strategies(model)[3]; // Breadth
    let activities: Vec<Activity> = (0..32).map(|i| Activity::from_raw([i % 6])).collect();
    let requests_before = obs::snapshot().counter("batch.requests").unwrap_or(0);
    let scored = recommend_batch(rec, &activities, 5);
    let ids = recommend_batch_actions(rec, &activities, 5);
    assert_eq!(scored.len(), 32);
    assert_eq!(ids.len(), 32);

    let report = obs::snapshot();
    assert_eq!(report.counter("batch.requests"), Some(requests_before + 64));
    let wall = report
        .histogram("batch.Breadth.wall")
        .expect("wall histogram");
    assert!(wall.count >= 2, "one wall span per batch call");
    let latency = report
        .histogram("batch.latency")
        .expect("per-request latency");
    assert!(latency.count >= 64);
    assert!(report.gauge("batch.throughput_rps").unwrap_or(0.0) > 0.0);
}
