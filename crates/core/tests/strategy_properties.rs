//! Property tests for the recommendation strategies: the §5 contracts
//! must hold for any library and any activity.

use goalrec_core::strategies::default_strategies;
use goalrec_core::{ActionId, Activity, GoalId, GoalLibrary, GoalModel, ImplId, Scored};
use proptest::prelude::*;

const MAX_ACTIONS: u32 = 18;
const MAX_GOALS: u32 = 7;

fn model_and_activity() -> impl Strategy<Value = (GoalModel, Activity)> {
    (
        proptest::collection::vec(
            (
                0..MAX_GOALS,
                proptest::collection::btree_set(0..MAX_ACTIONS, 1..6),
            ),
            1..25,
        ),
        proptest::collection::btree_set(0..MAX_ACTIONS, 0..7),
    )
        .prop_map(|(impls, h)| {
            let lib = GoalLibrary::from_id_implementations(
                MAX_ACTIONS,
                MAX_GOALS,
                impls
                    .into_iter()
                    .map(|(g, acts)| {
                        (
                            GoalId::new(g),
                            acts.into_iter().map(ActionId::new).collect(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
            (GoalModel::build(&lib).unwrap(), Activity::from_raw(h))
        })
}

/// Scores must never increase down the list. For the heap-ranked
/// strategies ties additionally break by ascending action id; Focus
/// instead emits whole implementations in rank order (§6.1.2: it "pops
/// out all the actions of the goal implementation on which it has
/// selected to focus"), so equal-scored actions follow implementation
/// order there.
fn assert_ranked(list: &[Scored], strict_ties: bool) {
    for w in list.windows(2) {
        let ok = if strict_ties {
            w[0].score > w[1].score || (w[0].score == w[1].score && w[0].action < w[1].action)
        } else {
            w[0].score >= w[1].score
        };
        assert!(ok, "not rank-sorted: {w:?}");
    }
}

proptest! {
    /// Universal strategy contract: bounded by k, candidates only, unique,
    /// rank-sorted, prefix-consistent, and every candidate is in AS(H).
    #[test]
    fn strategy_contract((m, h) in model_and_activity(), k in 0usize..12) {
        let action_space = m.action_space(h.raw());
        for s in default_strategies() {
            let list = s.rank(&m, &h, k);
            prop_assert!(list.len() <= k, "{}", s.name());
            assert_ranked(&list, !s.name().starts_with("Focus"));

            let mut ids: Vec<u32> = list.iter().map(|r| r.action.raw()).collect();
            let n = ids.len();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n, "{} produced duplicates", s.name());

            for r in &list {
                prop_assert!(!h.contains(r.action), "{} recommended performed", s.name());
                prop_assert!(
                    action_space.binary_search(&r.action.raw()).is_ok()
                        || s.name().starts_with("Focus"),
                    "{} went outside AS(H)", s.name()
                );
                // Focus may leave AS(H) (implementations of shared goals
                // with zero overlap), but never outside the action space of
                // the goal space's implementations — checked below.
            }

            // Prefix property: smaller k is a prefix of larger k.
            if k >= 2 {
                let shorter = s.rank(&m, &h, k - 1);
                prop_assert_eq!(&list[..shorter.len()], &shorter[..], "{} prefix", s.name());
            }
        }
    }

    /// Focus candidates always come from implementations whose goal is in
    /// the user's goal space.
    #[test]
    fn focus_stays_within_goal_space((m, h) in model_and_activity()) {
        use goalrec_core::{Focus, FocusVariant, Strategy as _};
        let gs = m.goal_space(h.raw());
        for variant in [FocusVariant::Completeness, FocusVariant::Closeness] {
            for r in Focus::new(variant).rank(&m, &h, 12) {
                // The recommended action must appear in some implementation
                // of a goal-space goal.
                let ok = m.action_impls(r.action).iter().any(|&p| {
                    gs.binary_search(&m.impl_goal(ImplId::new(p)).raw()).is_ok()
                });
                prop_assert!(ok, "{variant:?} left the goal space");
            }
        }
    }

    /// Breadth's score for the top recommendation never exceeds
    /// `|IS(H)| × |H|` (every associated implementation contributing the
    /// maximum possible overlap).
    #[test]
    fn breadth_score_upper_bound((m, h) in model_and_activity()) {
        use goalrec_core::{Breadth, Strategy as _};
        let bound = (m.implementation_space(h.raw()).len() * h.len()) as f64;
        for r in Breadth.rank(&m, &h, 12) {
            prop_assert!(r.score <= bound + 1e-9);
            prop_assert!(r.score >= 1.0 - 1e-9, "scores are positive overlap sums");
        }
    }

    /// Best Match scores are negated distances: within [-max_distance, 0]
    /// for every metric.
    #[test]
    fn best_match_score_ranges((m, h) in model_and_activity()) {
        use goalrec_core::{BestMatch, DistanceMetric, Strategy as _};
        for metric in DistanceMetric::ALL {
            for r in BestMatch::new(metric).rank(&m, &h, 12) {
                prop_assert!(r.score <= 1e-9, "{metric:?}");
                if metric == DistanceMetric::Cosine {
                    prop_assert!(r.score >= -1.0 - 1e-9, "cosine bounded");
                }
            }
        }
    }

    /// Extending the activity with one of its recommendations never makes
    /// that same action reappear (stability of the candidate exclusion).
    #[test]
    fn following_a_recommendation_consumes_it((m, h) in model_and_activity()) {
        for s in default_strategies() {
            if let Some(first) = s.rank(&m, &h, 5).first().copied() {
                let extended = h.extended([first.action]);
                let again = s.rank(&m, &extended, 10);
                prop_assert!(
                    again.iter().all(|r| r.action != first.action),
                    "{} re-recommended a performed action", s.name()
                );
            }
        }
    }
}
