//! Compact binary library format.
//!
//! JSON-lines (see [`crate::io`]) is the friendly interchange format, but
//! at Fig. 7 scale (millions of implementations) it parses slowly and
//! triples the size. This module defines `GRLB` ("goalrec library"), a
//! little-endian binary format:
//!
//! ```text
//! magic   b"GRLB"        4 bytes
//! version u32            currently 1
//! actions u32            |𝒜|
//! goals   u32            |𝒢|
//! impls   u32            |L|
//! per implementation: goal u32, len u32, len × action u32
//! checksum u64           FNV-1a over everything after the magic
//! ```
//!
//! The trailing checksum catches truncation and corruption; names are not
//! stored (use the JSON sidecar of `goalrec-cli extract` when names
//! matter).

use goalrec_core::{ActionId, GoalId, GoalLibrary};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GRLB";
const VERSION: u32 = 1;

/// FNV-1a, the classic 64-bit variant — cheap, order-sensitive, good
/// enough for corruption (not adversary) detection.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

struct CountingWriter<W: Write> {
    inner: W,
    hash: Fnv,
}

impl<W: Write> CountingWriter<W> {
    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        let b = v.to_le_bytes();
        self.hash.update(&b);
        self.inner.write_all(&b)
    }
}

/// Writes a library in `GRLB` format.
pub fn write_library_binary(library: &GoalLibrary, path: &Path) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut w = CountingWriter {
        inner: file,
        hash: Fnv::new(),
    };
    w.inner.write_all(MAGIC)?;
    w.put_u32(VERSION)?;
    w.put_u32(library.num_actions() as u32)?;
    w.put_u32(library.num_goals() as u32)?;
    w.put_u32(library.len() as u32)?;
    for imp in library.implementations() {
        w.put_u32(imp.goal.raw())?;
        w.put_u32(imp.actions.len() as u32)?;
        for a in &imp.actions {
            w.put_u32(a.raw())?;
        }
    }
    let digest = w.hash.0;
    w.inner.write_all(&digest.to_le_bytes())?;
    w.inner.flush()
}

struct CountingReader<R: Read> {
    inner: R,
    hash: Fnv,
}

impl<R: Read> CountingReader<R> {
    fn get_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        self.hash.update(&b);
        Ok(u32::from_le_bytes(b))
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Reads a `GRLB` library, validating magic, version and checksum.
pub fn read_library_binary(path: &Path) -> io::Result<GoalLibrary> {
    let file = BufReader::new(File::open(path)?);
    let mut r = CountingReader {
        inner: file,
        hash: Fnv::new(),
    };
    let mut magic = [0u8; 4];
    r.inner.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not a GRLB file (bad magic)"));
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(invalid("unsupported GRLB version"));
    }
    let num_actions = r.get_u32()?;
    let num_goals = r.get_u32()?;
    let num_impls = r.get_u32()?;

    let mut impls = Vec::with_capacity(num_impls as usize);
    for _ in 0..num_impls {
        let goal = r.get_u32()?;
        let len = r.get_u32()?;
        if len as usize > num_actions as usize {
            return Err(invalid("implementation longer than the action universe"));
        }
        let mut actions = Vec::with_capacity(len as usize);
        for _ in 0..len {
            actions.push(ActionId::new(r.get_u32()?));
        }
        impls.push((GoalId::new(goal), actions));
    }

    let expected = r.hash.0;
    let mut tail = [0u8; 8];
    r.inner.read_exact(&mut tail)?;
    if u64::from_le_bytes(tail) != expected {
        return Err(invalid("checksum mismatch (file corrupted or truncated)"));
    }
    // Reject trailing garbage.
    let mut extra = [0u8; 1];
    if r.inner.read(&mut extra)? != 0 {
        return Err(invalid("trailing bytes after checksum"));
    }

    GoalLibrary::from_id_implementations(num_actions, num_goals, impls)
        .map_err(|e| invalid(&e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foodmart::{FoodMart, FoodMartConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("goalrec-binary-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_implementations() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("lib.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let back = read_library_binary(&path).unwrap();
        assert_eq!(back.implementations(), fm.library.implementations());
        assert_eq!(back.num_actions(), fm.library.num_actions());
        assert_eq!(back.num_goals(), fm.library.num_goals());
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let bin = tmp("size.grlb");
        let jsonl = tmp("size.jsonl");
        write_library_binary(&fm.library, &bin).unwrap();
        crate::io::write_library_jsonl(&fm.library, &jsonl).unwrap();
        let bin_len = std::fs::metadata(&bin).unwrap().len();
        let jsonl_len = std::fs::metadata(&jsonl).unwrap().len();
        // At test scale ids are 1–3 text digits, so the margin is modest;
        // it grows with id width at Fig. 7 scale.
        assert!(bin_len < jsonl_len, "binary {bin_len} vs jsonl {jsonl_len}");
    }

    #[test]
    fn detects_corruption() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("corrupt.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_library_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn detects_truncation_and_bad_magic() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("trunc.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_library_binary(&path).is_err());

        let bad = tmp("magic.grlb");
        std::fs::write(&bad, b"NOPE").unwrap();
        let err = read_library_binary(&bad).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("trail.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_library_binary(&path).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn reloaded_library_recommends_identically() {
        use goalrec_core::{Activity, GoalRecommender, Recommender};
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("rec.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let back = read_library_binary(&path).unwrap();
        let a =
            GoalRecommender::from_library(&fm.library, Box::new(goalrec_core::Breadth)).unwrap();
        let b = GoalRecommender::from_library(&back, Box::new(goalrec_core::Breadth)).unwrap();
        for cart in fm.carts.iter().take(10) {
            assert_eq!(a.recommend(cart, 10), b.recommend(cart, 10));
        }
        let _ = Activity::new();
    }
}
