//! Compact binary library format.
//!
//! JSON-lines (see [`crate::io`]) is the friendly interchange format, but
//! at Fig. 7 scale (millions of implementations) it parses slowly and
//! triples the size. This module defines `GRLB` ("goalrec library"), a
//! little-endian binary format:
//!
//! ```text
//! magic   b"GRLB"        4 bytes
//! version u32            currently 1
//! actions u32            |𝒜|
//! goals   u32            |𝒢|
//! impls   u32            |L|
//! per implementation: goal u32, len u32, len × action u32
//! checksum u64           FNV-1a over everything after the magic
//! ```
//!
//! The trailing checksum catches truncation and corruption; names are not
//! stored (use the JSON sidecar of `goalrec-cli extract` when names
//! matter).

use goalrec_core::{ActionId, GoalId, GoalLibrary, GoalModel};
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GRLB";
const VERSION: u32 = 1;

/// FNV-1a, the classic 64-bit variant — cheap, order-sensitive, good
/// enough for corruption (not adversary) detection. Shared with the v2
/// format ([`crate::grlb2`]), which checksums sections with the same hash.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

struct CountingWriter<W: Write> {
    inner: W,
    hash: Fnv,
}

impl<W: Write> CountingWriter<W> {
    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        let b = v.to_le_bytes();
        self.hash.update(&b);
        self.inner.write_all(&b)
    }
}

/// Writes a library in `GRLB` format, crash-safely (temp file + fsync +
/// atomic rename, via [`crate::io::atomic_write`]).
pub fn write_library_binary(library: &GoalLibrary, path: &Path) -> io::Result<()> {
    crate::io::atomic_write(path, |out| {
        let mut w = CountingWriter {
            inner: out,
            hash: Fnv::new(),
        };
        w.inner.write_all(MAGIC)?;
        w.put_u32(VERSION)?;
        w.put_u32(library.num_actions() as u32)?;
        w.put_u32(library.num_goals() as u32)?;
        w.put_u32(library.len() as u32)?;
        for imp in library.implementations() {
            w.put_u32(imp.goal.raw())?;
            w.put_u32(imp.actions.len() as u32)?;
            for a in &imp.actions {
                w.put_u32(a.raw())?;
            }
        }
        let digest = w.hash.0;
        w.inner.write_all(&digest.to_le_bytes())
    })
}

struct CountingReader<R: Read> {
    inner: R,
    hash: Fnv,
}

impl<R: Read> CountingReader<R> {
    fn get_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        self.hash.update(&b);
        Ok(u32::from_le_bytes(b))
    }
}

pub(crate) fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Cap on speculative pre-allocation from length fields read off disk: a
/// corrupted count must not translate into a multi-gigabyte allocation
/// before the checksum gets a chance to reject the file.
const PREALLOC_CAP: usize = 1 << 16;

/// The fixed-size `GRLB` header fields (after magic + version).
struct GrlbHeader {
    num_actions: u32,
    num_goals: u32,
    num_impls: u32,
}

/// Opens `path` (through `goalrec-faults`, so chaos plans can fail, stall
/// or truncate this read path on demand) and validates magic + version.
type GrlbReader = CountingReader<BufReader<goalrec_faults::FaultyRead<File>>>;

fn open_grlb(path: &Path) -> io::Result<(GrlbReader, GrlbHeader)> {
    let file = BufReader::new(goalrec_faults::read_wrap(path, File::open(path)?));
    let mut r = CountingReader {
        inner: file,
        hash: Fnv::new(),
    };
    let mut magic = [0u8; 4];
    r.inner.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not a GRLB file (bad magic)"));
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(invalid(&format!(
            "unsupported GRLB version {version} (this reader supports version {VERSION})"
        )));
    }
    let header = GrlbHeader {
        num_actions: r.get_u32()?,
        num_goals: r.get_u32()?,
        num_impls: r.get_u32()?,
    };
    Ok((r, header))
}

/// Consumes the trailer: the FNV checksum must match everything hashed so
/// far, and nothing may follow it.
fn finish_grlb<R: Read>(r: &mut CountingReader<R>) -> io::Result<()> {
    let expected = r.hash.0;
    let mut tail = [0u8; 8];
    r.inner.read_exact(&mut tail)?;
    if u64::from_le_bytes(tail) != expected {
        return Err(invalid("checksum mismatch (file corrupted or truncated)"));
    }
    // Reject trailing garbage.
    let mut extra = [0u8; 1];
    if r.inner.read(&mut extra)? != 0 {
        return Err(invalid("trailing bytes after checksum"));
    }
    Ok(())
}

/// Peeks at the magic + version of a `GRLB` file (through the fault
/// layer), so [`crate::io::read_library_auto`] and the server boot path
/// can dispatch between the v1 stream reader and the v2 mapped reader
/// without trusting the file extension. Bad magic is rejected here; an
/// unknown version is returned as-is and rejected (with the found version
/// named) by whichever reader the caller picks.
pub fn sniff_version(path: &Path) -> io::Result<u32> {
    let mut f = goalrec_faults::read_wrap(path, File::open(path)?);
    let mut head = [0u8; 8];
    f.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(invalid("not a GRLB file (bad magic)"));
    }
    Ok(u32::from_le_bytes([head[4], head[5], head[6], head[7]]))
}

/// Maps core build errors onto io errors, treating an empty library as the
/// shared "empty library" condition of [`crate::io`].
pub(crate) fn core_to_io(path: &Path, e: goalrec_core::Error) -> io::Error {
    match e {
        goalrec_core::Error::EmptyLibrary => crate::io::empty_library(path),
        other => invalid(&other.to_string()),
    }
}

/// Reads a `GRLB` library, validating magic, version and checksum.
pub fn read_library_binary(path: &Path) -> io::Result<GoalLibrary> {
    let (mut r, header) = open_grlb(path)?;
    let mut impls = Vec::with_capacity((header.num_impls as usize).min(PREALLOC_CAP));
    for _ in 0..header.num_impls {
        let goal = r.get_u32()?;
        let len = r.get_u32()?;
        if len as usize > header.num_actions as usize {
            return Err(invalid("implementation longer than the action universe"));
        }
        let mut actions = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
        for _ in 0..len {
            actions.push(ActionId::new(r.get_u32()?));
        }
        impls.push((GoalId::new(goal), actions));
    }
    finish_grlb(&mut r)?;

    GoalLibrary::from_id_implementations(header.num_actions, header.num_goals, impls)
        .map_err(|e| core_to_io(path, e))
}

/// Reads a `GRLB` file straight into a compiled [`GoalModel`], skipping
/// the intermediate [`GoalLibrary`].
///
/// The per-implementation records land verbatim in the model's forward
/// CSR arrays (`offsets` + flat `data`, one goal id per row), so loading
/// performs exactly one pass over the file with three flat allocations —
/// no per-implementation `Vec`s — and the build only has to invert the
/// index. Content validation (per-row sortedness, id bounds) happens in
/// [`GoalModel::from_csr_parts`] after the checksum has vouched for the
/// bytes.
pub fn read_model_binary(path: &Path) -> io::Result<GoalModel> {
    let (mut r, header) = open_grlb(path)?;
    let mut impl_goal = Vec::with_capacity((header.num_impls as usize).min(PREALLOC_CAP));
    let mut offsets = Vec::with_capacity((header.num_impls as usize + 1).min(PREALLOC_CAP));
    let mut data = Vec::with_capacity((header.num_impls as usize).min(PREALLOC_CAP));
    offsets.push(0u32);
    for _ in 0..header.num_impls {
        let goal = r.get_u32()?;
        let len = r.get_u32()?;
        if len as usize > header.num_actions as usize {
            return Err(invalid("implementation longer than the action universe"));
        }
        impl_goal.push(goal);
        for _ in 0..len {
            data.push(r.get_u32()?);
        }
        let end = u32::try_from(data.len())
            .map_err(|_| invalid("library exceeds the u32 posting capacity"))?;
        offsets.push(end);
    }
    finish_grlb(&mut r)?;

    GoalModel::from_csr_parts(
        header.num_actions as usize,
        header.num_goals as usize,
        impl_goal,
        offsets,
        data,
    )
    .map_err(|e| core_to_io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foodmart::{FoodMart, FoodMartConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("goalrec-binary-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_implementations() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("lib.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let back = read_library_binary(&path).unwrap();
        assert_eq!(back.implementations(), fm.library.implementations());
        assert_eq!(back.num_actions(), fm.library.num_actions());
        assert_eq!(back.num_goals(), fm.library.num_goals());
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let bin = tmp("size.grlb");
        let jsonl = tmp("size.jsonl");
        write_library_binary(&fm.library, &bin).unwrap();
        crate::io::write_library_jsonl(&fm.library, &jsonl).unwrap();
        let bin_len = std::fs::metadata(&bin).unwrap().len();
        let jsonl_len = std::fs::metadata(&jsonl).unwrap().len();
        // At test scale ids are 1–3 text digits, so the margin is modest;
        // it grows with id width at Fig. 7 scale.
        assert!(bin_len < jsonl_len, "binary {bin_len} vs jsonl {jsonl_len}");
    }

    #[test]
    fn detects_corruption() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("corrupt.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_library_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn detects_truncation_and_bad_magic() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("trunc.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_library_binary(&path).is_err());

        let bad = tmp("magic.grlb");
        std::fs::write(&bad, b"NOPE").unwrap();
        let err = read_library_binary(&bad).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn version_mismatch_reports_the_found_version() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("version.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The version field sits right after the 4-byte magic.
        bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_library_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("version 7") && msg.contains("supports version 1"),
            "error must name the found version: {msg}"
        );
    }

    /// A small, irregular library for the byte-level property tests.
    fn tiny_library() -> GoalLibrary {
        use goalrec_core::LibraryBuilder;
        let mut b = LibraryBuilder::new();
        b.add_impl("salad", ["potatoes", "carrots", "pickles"])
            .unwrap();
        b.add_impl("mash", ["potatoes", "butter"]).unwrap();
        b.add_impl("soup", ["peas", "carrots", "onion", "salt"])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn every_truncation_prefix_is_an_error_never_a_panic() {
        let path = tmp("prefix.grlb");
        write_library_binary(&tiny_library(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let trunc = tmp("prefix-cut.grlb");
        for cut in 0..bytes.len() {
            std::fs::write(&trunc, &bytes[..cut]).unwrap();
            assert!(
                read_library_binary(&trunc).is_err(),
                "prefix of {cut}/{} bytes parsed as Ok",
                bytes.len()
            );
        }
        // The untruncated file still parses, so the loop above proved
        // something about truncation, not about the fixture being broken.
        std::fs::write(&trunc, &bytes).unwrap();
        assert!(read_library_binary(&trunc).is_ok());
    }

    #[test]
    fn every_single_bit_flip_in_the_body_is_caught() {
        let path = tmp("bitflip.grlb");
        write_library_binary(&tiny_library(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let flipped = tmp("bitflip-mut.grlb");
        // The body: everything after magic+header, checksum included —
        // the FNV checksum (or a bounds check it feeds) must catch every
        // single-bit corruption.
        for byte_idx in 4..bytes.len() {
            for bit in 0..8 {
                let mut copy = bytes.clone();
                copy[byte_idx] ^= 1 << bit;
                std::fs::write(&flipped, &copy).unwrap();
                assert!(
                    read_library_binary(&flipped).is_err(),
                    "bit {bit} of byte {byte_idx} flipped and the file still parsed"
                );
            }
        }
    }

    #[test]
    fn corrupted_count_fields_do_not_preallocate_gigabytes() {
        let path = tmp("hugecount.grlb");
        write_library_binary(&tiny_library(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // impls count is the 4th u32 after the magic (magic, version,
        // actions, goals, impls): offset 4 + 3*4 = 16.
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        // Must fail fast on EOF/checksum, not abort allocating 4Gi entries.
        assert!(read_library_binary(&path).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("trail.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_library_binary(&path).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn read_model_binary_matches_build_from_library() {
        use goalrec_core::{GoalRecommender, Recommender};
        use std::sync::Arc;
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("model.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let direct = read_model_binary(&path).unwrap();
        let via_library = GoalModel::build(&read_library_binary(&path).unwrap()).unwrap();
        direct.validate().unwrap();
        assert_eq!(direct.num_impls(), via_library.num_impls());
        assert_eq!(direct.num_actions(), via_library.num_actions());
        assert_eq!(direct.num_goals(), via_library.num_goals());
        assert_eq!(direct.memory_bytes(), via_library.memory_bytes());
        for rec_pair in GoalRecommender::all_strategies(Arc::new(direct))
            .into_iter()
            .zip(GoalRecommender::all_strategies(Arc::new(via_library)))
        {
            let (a, b) = rec_pair;
            for cart in fm.carts.iter().take(10) {
                assert_eq!(a.recommend(cart, 10), b.recommend(cart, 10), "{}", a.name());
            }
        }
    }

    /// Hand-assembles a GRLB byte stream (with a valid checksum) from raw
    /// implementation records, so tests can express content corruption the
    /// writer cannot produce.
    fn raw_grlb(num_actions: u32, num_goals: u32, impls: &[(u32, &[u32])]) -> Vec<u8> {
        let mut body: Vec<u8> = Vec::new();
        for v in [VERSION, num_actions, num_goals, impls.len() as u32] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        for &(goal, actions) in impls {
            body.extend_from_slice(&goal.to_le_bytes());
            body.extend_from_slice(&(actions.len() as u32).to_le_bytes());
            for &a in actions {
                body.extend_from_slice(&a.to_le_bytes());
            }
        }
        let mut hash = Fnv::new();
        hash.update(&body);
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&hash.0.to_le_bytes());
        bytes
    }

    #[test]
    fn read_model_binary_rejects_invalid_content_after_checksum_passes() {
        // Each file checksums fine; the CSR content validation must still
        // reject it: unsorted row, duplicate actions, out-of-range action,
        // out-of-range goal, empty implementation.
        type Impls<'a> = &'a [(u32, &'a [u32])];
        let cases: [(&str, u32, u32, Impls<'_>); 5] = [
            ("unsorted row", 4, 2, &[(0, &[2, 1][..])]),
            ("duplicate actions", 4, 2, &[(0, &[1, 1][..])]),
            ("action out of range", 2, 2, &[(0, &[0, 5][..])]),
            ("goal out of range", 4, 1, &[(3, &[0, 1][..])]),
            ("empty implementation", 4, 2, &[(0, &[][..])]),
        ];
        for (name, num_actions, num_goals, impls) in cases {
            let path = tmp("badcontent.grlb");
            std::fs::write(&path, raw_grlb(num_actions, num_goals, impls)).unwrap();
            let err = read_model_binary(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}: {err}");
        }
    }

    #[test]
    fn read_model_binary_rejects_corruption_and_truncation() {
        let path = tmp("modelcorrupt.grlb");
        write_library_binary(&tiny_library(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(read_model_binary(&path).is_err());

        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_model_binary(&path).is_err());

        std::fs::write(&path, &bytes).unwrap();
        assert!(read_model_binary(&path).is_ok());
    }

    #[test]
    fn reloaded_library_recommends_identically() {
        use goalrec_core::{Activity, GoalRecommender, Recommender};
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("rec.grlb");
        write_library_binary(&fm.library, &path).unwrap();
        let back = read_library_binary(&path).unwrap();
        let a =
            GoalRecommender::from_library(&fm.library, Box::new(goalrec_core::Breadth)).unwrap();
        let b = GoalRecommender::from_library(&back, Box::new(goalrec_core::Breadth)).unwrap();
        for cart in fm.carts.iter().take(10) {
            assert_eq!(a.recommend(cart, 10), b.recommend(cart, 10));
        }
        let _ = Activity::new();
    }
}
