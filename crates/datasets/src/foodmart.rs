//! Synthetic FoodMart: the grocery scenario of §6, dataset (a).
//!
//! The paper pairs an open FoodMart purchase log (1 560 products organised
//! in 128 (sub)categories, 20 500 carts, at most 3 carts per customer) with
//! 56 500 recipes from a food ontology, yielding a goal implementation
//! library whose actions have a *very high* connectivity (an ingredient
//! participates in ≈1.2k recipes on average). Neither source is available
//! any more, so this module generates a synthetic equivalent calibrated to
//! every statistic the paper reports; see DESIGN.md §3 for the substitution
//! rationale.
//!
//! Structure of the generated world:
//!
//! * products get a (class, subcategory) pair — the domain features the
//!   content-based baseline and the Table 5 similarity study use;
//! * recipes (goals) draw Zipf-skewed ingredient sets, so staples appear in
//!   thousands of recipes while tail products are rare — matching the
//!   connectivity skew Figures 5–6 depend on;
//! * carts belong to users (≤3 carts each); a cart is assembled from
//!   partial ingredient lists of the user's *intended dishes* plus noise,
//!   which gives the goal-based methods a recoverable signal and the CF
//!   baselines genuine co-occurrence structure.

use crate::zipf::{sample_weighted, Zipf};
use goalrec_core::{ActionId, Activity, GoalId, GoalLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generation parameters. [`FoodMartConfig::paper_scale`] matches the
/// paper; [`FoodMartConfig::test_scale`] is a fast miniature with the same
/// shape for unit tests and examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoodMartConfig {
    /// Number of products (actions). Paper: 1 560.
    pub num_products: usize,
    /// Number of product subcategories ("baking goods", "seafood", …).
    /// Paper: 128.
    pub num_subcategories: usize,
    /// Number of top-level classes grouping subcategories.
    pub num_classes: usize,
    /// Number of recipes (goal implementations). Paper: 56 500.
    pub num_recipes: usize,
    /// Number of carts (input activities). Paper: 20 500.
    pub num_carts: usize,
    /// Maximum carts per customer. Paper: "no more than 3".
    pub max_carts_per_user: usize,
    /// Recipe ingredient count is uniform in this inclusive range. The
    /// default range centres on ≈33, which reproduces the paper's mean
    /// action connectivity of ≈1.2k at full scale
    /// (56 500 × 33 / 1 560 ≈ 1 195).
    pub recipe_len: (usize, usize),
    /// Cart size is uniform in this inclusive range.
    pub cart_len: (usize, usize),
    /// Zipf exponent for ingredient popularity across recipes.
    pub ingredient_skew: f64,
    /// Number of cuisines. Recipes draw most ingredients from their
    /// cuisine's product pool, which keeps different carts' recommendation
    /// pools distinct (real recipes cluster by cuisine; fully independent
    /// Zipf draws would let a handful of staples dominate every list).
    pub num_cuisines: usize,
    /// Probability that a recipe ingredient comes from the cuisine pool
    /// rather than the global staple distribution.
    pub cuisine_affinity: f64,
    /// Zipf exponent for cart *noise* items. Noticeably higher than
    /// `ingredient_skew`: customers buy the popular staples on most trips,
    /// so the globally popular products are usually already in the cart —
    /// the mechanism behind the paper's negative popularity correlations
    /// (Table 3).
    pub noise_skew: f64,
    /// Probability that a recipe is an *alternative implementation* of the
    /// previous recipe's dish instead of a new dish — the model's
    /// several-implementations-per-goal case (Definition 3.1) exercised at
    /// dataset scale.
    pub alt_impl_probability: f64,
    /// Zipf exponent for dish popularity across users.
    pub dish_skew: f64,
    /// Number of intended dishes per user, inclusive range.
    pub dishes_per_user: (usize, usize),
    /// Fraction of each intended dish's ingredients already in a cart.
    pub dish_coverage: f64,
    /// Fraction of cart items that are noise (not from intended dishes).
    pub noise_fraction: f64,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
}

impl FoodMartConfig {
    /// Full paper-scale configuration.
    pub fn paper_scale() -> Self {
        Self {
            num_products: 1_560,
            num_subcategories: 128,
            num_classes: 16,
            num_recipes: 56_500,
            num_carts: 20_500,
            max_carts_per_user: 3,
            recipe_len: (8, 58),
            cart_len: (5, 25),
            ingredient_skew: 0.75,
            num_cuisines: 16,
            cuisine_affinity: 0.6,
            noise_skew: 1.45,
            alt_impl_probability: 0.15,
            dish_skew: 0.9,
            dishes_per_user: (2, 5),
            dish_coverage: 0.55,
            noise_fraction: 0.25,
            seed: 0xF00D,
        }
    }

    /// Miniature configuration (same shape, ~100× smaller) for tests.
    pub fn test_scale() -> Self {
        Self {
            num_products: 120,
            num_subcategories: 16,
            num_classes: 4,
            num_recipes: 400,
            num_carts: 150,
            max_carts_per_user: 3,
            recipe_len: (4, 12),
            cart_len: (3, 10),
            ingredient_skew: 0.75,
            num_cuisines: 4,
            cuisine_affinity: 0.6,
            noise_skew: 1.45,
            alt_impl_probability: 0.15,
            dish_skew: 0.9,
            dishes_per_user: (2, 4),
            dish_coverage: 0.55,
            noise_fraction: 0.25,
            seed: 0xF00D,
        }
    }

    /// Scales recipe/cart counts by `factor` (products and categories stay
    /// fixed, as in the paper's scalability sweep which varies the library).
    pub fn with_scale(mut self, factor: f64) -> Self {
        self.num_recipes = ((self.num_recipes as f64 * factor) as usize).max(1);
        self.num_carts = ((self.num_carts as f64 * factor) as usize).max(1);
        self
    }
}

/// The generated grocery world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoodMart {
    /// The recipe library (goal = dish, actions = ingredient purchases).
    pub library: GoalLibrary,
    /// Per-product subcategory id (`0..num_subcategories`).
    pub product_subcategory: Vec<u32>,
    /// Per-subcategory class id (`0..num_classes`).
    pub subcategory_class: Vec<u32>,
    /// The carts, each a purchase activity.
    pub carts: Vec<Activity>,
    /// Cart → user id.
    pub cart_user: Vec<u32>,
    /// Number of distinct users.
    pub num_users: usize,
}

impl FoodMart {
    /// Generates the dataset from a configuration.
    pub fn generate(cfg: &FoodMartConfig) -> Self {
        assert!(cfg.num_products > 0 && cfg.num_recipes > 0 && cfg.num_carts > 0);
        assert!(cfg.recipe_len.0 >= 1 && cfg.recipe_len.0 <= cfg.recipe_len.1);
        assert!(cfg.recipe_len.1 <= cfg.num_products);
        assert!(cfg.cart_len.0 >= 1 && cfg.cart_len.0 <= cfg.cart_len.1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Products: subcategory via Zipf (category sizes are skewed in the
        // real FoodMart), class derived uniformly over subcategories.
        let subcat_dist = Zipf::new(cfg.num_subcategories, 0.6);
        let product_subcategory: Vec<u32> = (0..cfg.num_products)
            .map(|_| subcat_dist.sample(&mut rng) as u32)
            .collect();
        let subcategory_class: Vec<u32> = (0..cfg.num_subcategories)
            .map(|i| (i % cfg.num_classes) as u32)
            .collect();

        // Recipes: each recipe is one implementation of a distinct dish.
        // A recipe belongs to a cuisine and draws `cuisine_affinity` of its
        // ingredients from the cuisine's product pool (Zipf within the
        // pool), the rest from the global staple distribution.
        let ingredient_dist = Zipf::new(cfg.num_products, cfg.ingredient_skew);
        let cuisine_pools: Vec<Vec<u32>> = (0..cfg.num_cuisines)
            .map(|c| {
                (0..cfg.num_products)
                    .filter(|p| p % cfg.num_cuisines == c)
                    .map(|p| p as u32)
                    .collect()
            })
            .collect();
        let pool_dists: Vec<Zipf> = cuisine_pools
            .iter()
            .map(|pool| Zipf::new(pool.len().max(1), cfg.ingredient_skew))
            .collect();
        let mut impls: Vec<(GoalId, Vec<ActionId>)> = Vec::with_capacity(cfg.num_recipes);
        let mut next_dish = 0u32;
        let mut last_cuisine = 0usize;
        for r in 0..cfg.num_recipes {
            // Either a brand-new dish, or an alternative implementation of
            // the previous one (sharing its goal and cuisine).
            let is_variant = r > 0 && rng.gen::<f64>() < cfg.alt_impl_probability;
            let dish = if is_variant {
                impls[r - 1].0
            } else {
                let d = next_dish;
                next_dish += 1;
                GoalId::new(d)
            };
            let len = rng.gen_range(cfg.recipe_len.0..=cfg.recipe_len.1);
            let cuisine = if is_variant {
                last_cuisine
            } else {
                rng.gen_range(0..cfg.num_cuisines)
            };
            last_cuisine = cuisine;
            let pool = &cuisine_pools[cuisine];
            let mut ingredients: Vec<u32> = Vec::with_capacity(len);
            let mut guard = 0;
            while ingredients.len() < len && guard < 50 * len + 50 {
                guard += 1;
                let p = if rng.gen::<f64>() < cfg.cuisine_affinity {
                    pool[pool_dists[cuisine].sample(&mut rng)]
                } else {
                    ingredient_dist.sample(&mut rng) as u32
                };
                if !ingredients.contains(&p) {
                    ingredients.push(p);
                }
            }
            impls.push((
                dish,
                ingredients
                    .into_iter()
                    .map(ActionId::new)
                    .collect::<Vec<_>>(),
            ));
        }
        let library =
            GoalLibrary::from_id_implementations(cfg.num_products as u32, next_dish.max(1), impls)
                // goalrec-lint:allow(no-panic-paths): the generator mints ids below the bounds it passes; a failure here is a generator bug, not user input
                .expect("generator produces valid implementations");

        // Users and carts. Noise items follow a steeper popularity curve
        // than recipe membership: staples land in most carts.
        let noise_dist = Zipf::new(cfg.num_products, cfg.noise_skew);
        let dish_dist = Zipf::new(cfg.num_recipes, cfg.dish_skew);
        let mut carts = Vec::with_capacity(cfg.num_carts);
        let mut cart_user = Vec::with_capacity(cfg.num_carts);
        let mut user = 0u32;
        let mut produced = 0usize;
        while produced < cfg.num_carts {
            // Cart-count weights 1:2:3 ≈ 40/35/25 keeps the average under 2,
            // matching "no more than 3 carts per user".
            let n_carts = (sample_weighted(&mut rng, &[0.40, 0.35, 0.25]) + 1)
                .min(cfg.max_carts_per_user)
                .min(cfg.num_carts - produced);
            let n_dishes = rng.gen_range(cfg.dishes_per_user.0..=cfg.dishes_per_user.1);
            let dishes = dish_dist.sample_distinct(&mut rng, n_dishes);
            for _ in 0..n_carts.max(1) {
                let cart = Self::make_cart(cfg, &library, &dishes, &noise_dist, &mut rng);
                carts.push(cart);
                cart_user.push(user);
                produced += 1;
                if produced == cfg.num_carts {
                    break;
                }
            }
            user += 1;
        }

        Self {
            library,
            product_subcategory,
            subcategory_class,
            carts,
            cart_user,
            num_users: user as usize,
        }
    }

    fn make_cart(
        cfg: &FoodMartConfig,
        library: &GoalLibrary,
        user_dishes: &[usize],
        noise_dist: &Zipf,
        rng: &mut StdRng,
    ) -> Activity {
        let target = rng.gen_range(cfg.cart_len.0..=cfg.cart_len.1);
        let mut items: Vec<u32> = Vec::with_capacity(target + 8);

        // Shop for one or two of the intended dishes per trip.
        let trips = rng.gen_range(1..=2.min(user_dishes.len()));
        let mut order: Vec<usize> = user_dishes.to_vec();
        partial_shuffle(&mut order, rng);
        for &dish in order.iter().take(trips) {
            let recipe = &library.implementations()[dish];
            for a in &recipe.actions {
                if rng.gen::<f64>() < cfg.dish_coverage {
                    items.push(a.raw());
                }
            }
        }

        // Trim to leave room for noise, then top up with noise items.
        let noise_target = ((target as f64) * cfg.noise_fraction).round() as usize;
        partial_shuffle(&mut items, rng);
        items.truncate(target.saturating_sub(noise_target).max(1));
        while items.len() < target {
            items.push(noise_dist.sample(rng) as u32);
        }
        Activity::from_raw(items)
    }

    /// Sparse domain-feature vector per product: weight 1 on the
    /// subcategory dimension, 0.5 on the class dimension (dimensions
    /// `0..num_subcategories` are subcategories, the rest classes). Feeds
    /// the content-based baseline and the Table 5 similarity metric.
    pub fn product_feature_vectors(&self) -> Vec<Vec<(u32, f64)>> {
        let n_sub = self.subcategory_class.len() as u32;
        self.product_subcategory
            .iter()
            .map(|&sub| {
                vec![
                    (sub, 1.0),
                    (n_sub + self.subcategory_class[sub as usize], 0.5),
                ]
            })
            .collect()
    }

    /// Carts grouped by user: `user → cart indexes`.
    pub fn user_carts(&self) -> Vec<Vec<usize>> {
        let mut by_user = vec![Vec::new(); self.num_users];
        for (cart, &u) in self.cart_user.iter().enumerate() {
            by_user[u as usize].push(cart);
        }
        by_user
    }
}

/// Fisher–Yates shuffle; `rand`'s `SliceRandom` is avoided to keep the
/// generated sequences stable across `rand` minor versions.
fn partial_shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FoodMart {
        FoodMart::generate(&FoodMartConfig::test_scale())
    }

    #[test]
    fn respects_configured_counts() {
        let cfg = FoodMartConfig::test_scale();
        let fm = small();
        assert_eq!(fm.library.len(), cfg.num_recipes);
        assert_eq!(fm.library.num_actions(), cfg.num_products);
        assert_eq!(fm.carts.len(), cfg.num_carts);
        assert_eq!(fm.cart_user.len(), cfg.num_carts);
        assert_eq!(fm.product_subcategory.len(), cfg.num_products);
        assert_eq!(fm.subcategory_class.len(), cfg.num_subcategories);
    }

    #[test]
    fn recipe_lengths_within_bounds() {
        let cfg = FoodMartConfig::test_scale();
        let fm = small();
        for imp in fm.library.implementations() {
            assert!(imp.len() >= cfg.recipe_len.0 && imp.len() <= cfg.recipe_len.1);
        }
    }

    #[test]
    fn cart_sizes_within_bounds() {
        let cfg = FoodMartConfig::test_scale();
        let fm = small();
        for cart in &fm.carts {
            assert!(!cart.is_empty());
            assert!(cart.len() <= cfg.cart_len.1);
        }
    }

    #[test]
    fn carts_reference_valid_products() {
        let cfg = FoodMartConfig::test_scale();
        let fm = small();
        for cart in &fm.carts {
            for a in cart.iter() {
                assert!(a.index() < cfg.num_products);
            }
        }
    }

    #[test]
    fn users_have_at_most_max_carts() {
        let cfg = FoodMartConfig::test_scale();
        let fm = small();
        for carts in fm.user_carts() {
            assert!(!carts.is_empty());
            assert!(carts.len() <= cfg.max_carts_per_user);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.carts, b.carts);
        assert_eq!(a.library.implementations(), b.library.implementations());
        assert_eq!(a.product_subcategory, b.product_subcategory);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = FoodMartConfig::test_scale();
        cfg.seed = 1;
        let a = FoodMart::generate(&cfg);
        cfg.seed = 2;
        let b = FoodMart::generate(&cfg);
        assert_ne!(a.carts, b.carts);
    }

    #[test]
    fn connectivity_matches_configured_shape() {
        // connectivity ≈ num_recipes × mean_len / num_products.
        let cfg = FoodMartConfig::test_scale();
        let fm = small();
        let stats = fm.library.stats();
        let expected = cfg.num_recipes as f64 * (cfg.recipe_len.0 + cfg.recipe_len.1) as f64
            / 2.0
            / cfg.num_products as f64;
        assert!(
            (stats.connectivity - expected).abs() / expected < 0.25,
            "connectivity {} vs expected {expected}",
            stats.connectivity
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let fm = small();
        let m = goalrec_core::GoalModel::build(&fm.library).unwrap();
        let head = m.connectivity(ActionId::new(0));
        let tail = m.connectivity(ActionId::new((fm.library.num_actions() - 1) as u32));
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn feature_vectors_have_subcategory_and_class() {
        let fm = small();
        let feats = fm.product_feature_vectors();
        assert_eq!(feats.len(), fm.library.num_actions());
        for (p, f) in feats.iter().enumerate() {
            assert_eq!(f.len(), 2);
            assert_eq!(f[0].0, fm.product_subcategory[p]);
            assert_eq!(f[0].1, 1.0);
            assert_eq!(f[1].1, 0.5);
        }
    }

    #[test]
    fn some_dishes_have_alternative_implementations() {
        let fm = small();
        let mut per_goal = std::collections::HashMap::new();
        for imp in fm.library.implementations() {
            *per_goal.entry(imp.goal).or_insert(0usize) += 1;
        }
        let with_variants = per_goal.values().filter(|&&c| c > 1).count();
        // ~15% of recipes are variants, so a healthy number of dishes have
        // more than one implementation.
        assert!(
            with_variants > 10,
            "only {with_variants} dishes with variants"
        );
        // Goal ids are dense: every goal below num_goals() has an impl.
        assert_eq!(per_goal.len(), fm.library.num_goals());
    }

    #[test]
    fn with_scale_shrinks_library_and_carts() {
        let cfg = FoodMartConfig::test_scale().with_scale(0.5);
        assert_eq!(cfg.num_recipes, 200);
        assert_eq!(cfg.num_carts, 75);
    }
}
