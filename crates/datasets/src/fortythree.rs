//! Synthetic 43Things: the life-goal scenario of §6, dataset (b).
//!
//! The paper extracted 18 047 goal implementations (3 747 goals, 5 456
//! actions) from the now-defunct 43Things goal-setting platform, and
//! evaluated on 8 071 users whose goal counts follow the reported
//! distribution (5 047 pursue one goal, 1 806 two, 623 three, 595 more).
//! In contrast to FoodMart, actions here are useful only within a narrow
//! *family* of related goals, giving a very low action connectivity
//! (reported as 3.84/3.85).
//!
//! The generator reproduces that structure: goals are grouped into
//! families, every family owns a pool of actions, and implementations draw
//! almost exclusively from their family pool (with a small leak
//! probability), so connectivity stays low and the goal spaces of a user's
//! actions overlap exactly when the goals are related.
//!
//! A note on the connectivity statistic: the paper's reported counts
//! (18 047 implementations over 5 456 actions with multi-action
//! implementations) are only consistent with connectivity 3.84 when read as
//! *distinct goals per action*; the generator therefore targets ≈3.8
//! distinct goals per action and reports both readings in
//! [`FortyThings::goal_connectivity`].

use crate::zipf::{sample_weighted, Zipf};
use goalrec_core::{ActionId, Activity, GoalId, GoalLibrary, ImplId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generation parameters for the 43Things-like dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FortyThingsConfig {
    /// Number of life goals. Paper: 3 747.
    pub num_goals: usize,
    /// Number of distinct actions. Paper: 5 456.
    pub num_actions: usize,
    /// Number of goal implementations. Paper: 18 047.
    pub num_impls: usize,
    /// Number of users. Paper: 8 071.
    pub num_users: usize,
    /// Number of goal families (thematic clusters).
    pub num_families: usize,
    /// Implementation length, inclusive range.
    pub impl_len: (usize, usize),
    /// Probability that one action of an implementation is drawn from the
    /// global pool instead of the goal's family pool.
    pub family_leak: f64,
    /// Weights for a user pursuing 1, 2, 3 or >3 goals.
    /// Paper: 5 047 / 1 806 / 623 / 595.
    pub goal_count_weights: [f64; 4],
    /// When a user pursues ">3" goals, the count is uniform in this range.
    pub many_goals: (usize, usize),
    /// Zipf exponent for goal popularity across users.
    pub goal_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FortyThingsConfig {
    /// Full paper-scale configuration.
    pub fn paper_scale() -> Self {
        Self {
            num_goals: 3_747,
            num_actions: 5_456,
            num_impls: 18_047,
            num_users: 8_071,
            num_families: 400,
            impl_len: (2, 9),
            family_leak: 0.05,
            goal_count_weights: [5_047.0, 1_806.0, 623.0, 595.0],
            many_goals: (4, 8),
            goal_skew: 0.8,
            seed: 0x43,
        }
    }

    /// Miniature configuration for tests.
    pub fn test_scale() -> Self {
        Self {
            num_goals: 120,
            num_actions: 180,
            num_impls: 600,
            num_users: 250,
            num_families: 15,
            impl_len: (2, 7),
            family_leak: 0.05,
            goal_count_weights: [5_047.0, 1_806.0, 623.0, 595.0],
            many_goals: (4, 6),
            goal_skew: 0.8,
            seed: 0x43,
        }
    }
}

/// The generated life-goal world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FortyThings {
    /// The goal implementation library.
    pub library: GoalLibrary,
    /// Goal → family id.
    pub goal_family: Vec<u32>,
    /// Per-user: the goals the user pursues.
    pub user_goals: Vec<Vec<GoalId>>,
    /// Per-user: the implementation chosen for each pursued goal.
    pub user_impls: Vec<Vec<ImplId>>,
    /// Per-user: the *full* activity — every action the user performed to
    /// fulfil all their goals (Table 1's concatenated vector, before
    /// hiding).
    pub full_activities: Vec<Activity>,
}

impl FortyThings {
    /// Generates the dataset from a configuration.
    pub fn generate(cfg: &FortyThingsConfig) -> Self {
        assert!(cfg.num_goals > 0 && cfg.num_actions > 0 && cfg.num_impls >= cfg.num_goals);
        assert!(cfg.num_families > 0 && cfg.num_families <= cfg.num_goals);
        assert!(cfg.impl_len.0 >= 1 && cfg.impl_len.0 <= cfg.impl_len.1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Families: goals round-robin, actions round-robin, so every family
        // owns ~num_actions/num_families actions.
        let goal_family: Vec<u32> = (0..cfg.num_goals)
            .map(|g| (g % cfg.num_families) as u32)
            .collect();
        let mut family_actions: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_families];
        for a in 0..cfg.num_actions {
            family_actions[a % cfg.num_families].push(a as u32);
        }

        // Implementations: every goal gets at least one; the remainder
        // follow a Zipf over goals (popular goals collect many alternative
        // implementations — "lose weight" had many success stories).
        let goal_pop = Zipf::new(cfg.num_goals, 0.9);
        let mut impl_goal: Vec<u32> = (0..cfg.num_goals as u32).collect();
        while impl_goal.len() < cfg.num_impls {
            impl_goal.push(goal_pop.sample(&mut rng) as u32);
        }

        let mut impls = Vec::with_capacity(cfg.num_impls);
        for &g in &impl_goal {
            let family = goal_family[g as usize] as usize;
            let pool = &family_actions[family];
            let len = rng
                .gen_range(cfg.impl_len.0..=cfg.impl_len.1)
                .min(pool.len().max(1));
            let mut actions: Vec<u32> = Vec::with_capacity(len);
            let mut guard = 0;
            while actions.len() < len && guard < 50 * len + 50 {
                guard += 1;
                let a = if rng.gen::<f64>() < cfg.family_leak {
                    rng.gen_range(0..cfg.num_actions) as u32
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if !actions.contains(&a) {
                    actions.push(a);
                }
            }
            impls.push((
                GoalId::new(g),
                actions.into_iter().map(ActionId::new).collect::<Vec<_>>(),
            ));
        }
        let library = GoalLibrary::from_id_implementations(
            cfg.num_actions as u32,
            cfg.num_goals as u32,
            impls,
        )
        // goalrec-lint:allow(no-panic-paths): the generator mints ids below the bounds it passes; a failure here is a generator bug, not user input
        .expect("generator produces valid implementations");

        // Goal → implementation ids (for picking a user's chosen way).
        let mut goal_impls: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_goals];
        for (pid, imp) in library.implementations().iter().enumerate() {
            goal_impls[imp.goal.index()].push(pid as u32);
        }

        // Users.
        let goal_dist = Zipf::new(cfg.num_goals, cfg.goal_skew);
        let mut user_goals = Vec::with_capacity(cfg.num_users);
        let mut user_impls = Vec::with_capacity(cfg.num_users);
        let mut full_activities = Vec::with_capacity(cfg.num_users);
        for _ in 0..cfg.num_users {
            let bucket = sample_weighted(&mut rng, &cfg.goal_count_weights);
            let n_goals = match bucket {
                0..=2 => bucket + 1,
                _ => rng.gen_range(cfg.many_goals.0..=cfg.many_goals.1),
            }
            .min(cfg.num_goals);
            let goals: Vec<GoalId> = goal_dist
                .sample_distinct(&mut rng, n_goals)
                .into_iter()
                .map(|g| GoalId::new(g as u32))
                .collect();
            let impls: Vec<ImplId> = goals
                .iter()
                .map(|g| {
                    let choices = &goal_impls[g.index()];
                    ImplId::new(choices[rng.gen_range(0..choices.len())])
                })
                .collect();
            let mut actions: Vec<u32> = Vec::new();
            for p in &impls {
                actions.extend(
                    library.implementations()[p.index()]
                        .actions
                        .iter()
                        .map(|a| a.raw()),
                );
            }
            full_activities.push(Activity::from_raw(actions));
            user_goals.push(goals);
            user_impls.push(impls);
        }

        Self {
            library,
            goal_family,
            user_goals,
            user_impls,
            full_activities,
        }
    }

    /// Mean number of *distinct goals* an action contributes to — the
    /// reading of the paper's "connectivity 3.84" statistic this generator
    /// targets (see module docs).
    pub fn goal_connectivity(&self) -> f64 {
        let n_actions = self.library.num_actions();
        let mut goals_per_action: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); n_actions];
        for imp in self.library.implementations() {
            for a in &imp.actions {
                goals_per_action[a.index()].insert(imp.goal.raw());
            }
        }
        let used: Vec<usize> = goals_per_action
            .iter()
            .map(|s| s.len())
            .filter(|&n| n > 0)
            .collect();
        used.iter().sum::<usize>() as f64 / used.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FortyThings {
        FortyThings::generate(&FortyThingsConfig::test_scale())
    }

    #[test]
    fn respects_configured_counts() {
        let cfg = FortyThingsConfig::test_scale();
        let ft = small();
        assert_eq!(ft.library.len(), cfg.num_impls);
        assert_eq!(ft.library.num_goals(), cfg.num_goals);
        assert_eq!(ft.library.num_actions(), cfg.num_actions);
        assert_eq!(ft.user_goals.len(), cfg.num_users);
        assert_eq!(ft.full_activities.len(), cfg.num_users);
    }

    #[test]
    fn every_goal_has_an_implementation() {
        let ft = small();
        let mut covered = vec![false; ft.library.num_goals()];
        for imp in ft.library.implementations() {
            covered[imp.goal.index()] = true;
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn user_goal_counts_follow_buckets() {
        let cfg = FortyThingsConfig::test_scale();
        let ft = small();
        let mut ones = 0usize;
        for (goals, impls) in ft.user_goals.iter().zip(&ft.user_impls) {
            assert!(!goals.is_empty());
            assert_eq!(goals.len(), impls.len());
            assert!(goals.len() <= cfg.many_goals.1);
            if goals.len() == 1 {
                ones += 1;
            }
        }
        // ≈62.5% of users pursue a single goal per the paper's weights.
        let frac = ones as f64 / cfg.num_users as f64;
        assert!((0.5..0.75).contains(&frac), "single-goal fraction {frac}");
    }

    #[test]
    fn full_activity_unions_chosen_implementations() {
        let ft = small();
        for (u, impls) in ft.user_impls.iter().enumerate() {
            let mut expect: Vec<u32> = Vec::new();
            for p in impls {
                expect.extend(
                    ft.library.implementations()[p.index()]
                        .actions
                        .iter()
                        .map(|a| a.raw()),
                );
            }
            let expect = Activity::from_raw(expect);
            assert_eq!(ft.full_activities[u], expect);
        }
    }

    #[test]
    fn chosen_impls_implement_the_user_goals() {
        let ft = small();
        for (goals, impls) in ft.user_goals.iter().zip(&ft.user_impls) {
            for (g, p) in goals.iter().zip(impls) {
                assert_eq!(ft.library.implementations()[p.index()].goal, *g);
            }
        }
    }

    #[test]
    fn connectivity_is_low_like_the_paper() {
        let ft = small();
        let gc = ft.goal_connectivity();
        // Family locality keeps distinct-goal connectivity in the single
        // digits (the paper reports 3.84 at full scale).
        assert!(gc < 12.0, "goal connectivity {gc}");
        assert!(gc >= 1.0);
    }

    #[test]
    fn family_locality_holds() {
        let ft = small();
        let cfg = FortyThingsConfig::test_scale();
        // Count in-family action draws; must dominate given 5% leak.
        let mut in_family = 0usize;
        let mut total = 0usize;
        for imp in ft.library.implementations() {
            let fam = ft.goal_family[imp.goal.index()];
            for a in &imp.actions {
                total += 1;
                if a.index() % cfg.num_families == fam as usize {
                    in_family += 1;
                }
            }
        }
        let frac = in_family as f64 / total as f64;
        assert!(frac > 0.85, "in-family fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.full_activities, b.full_activities);
        assert_eq!(a.library.implementations(), b.library.implementations());
    }

    #[test]
    fn paper_scale_config_matches_reported_statistics() {
        let cfg = FortyThingsConfig::paper_scale();
        assert_eq!(cfg.num_goals, 3_747);
        assert_eq!(cfg.num_actions, 5_456);
        assert_eq!(cfg.num_impls, 18_047);
        assert_eq!(cfg.num_users, 8_071);
    }
}
