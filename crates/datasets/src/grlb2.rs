//! GRLB v2 — the servable model format: aligned, sectioned, checksummed.
//!
//! GRLB v1 ([`crate::binary`]) is a *stream* format: reading it still
//! means parsing records and building the inverted indexes. v2 instead
//! writes the compiled [`GoalModel`]'s flat arrays exactly as they sit in
//! memory, so loading is `mmap` + validate — no parse, no allocation, no
//! index inversion — and N shard workers share one physical copy through
//! the page cache. Layout (all integers little-endian):
//!
//! ```text
//! offset   0  magic    b"GRLB"                                  4 bytes
//!          4  version  u32 = 2
//!          8  actions  u64   |𝒜|
//!         16  goals    u64   |𝒢|
//!         24  impls    u64   |L|
//!         32  file_len u64   total file length in bytes
//!         40  file_fnv u64   lane-folded FNV-1a over bytes [256, file_len)
//!         48  8 section descriptors × { offset u64, words u64, fnv u64 }
//!        240  head_fnv u64   lane-folded FNV-1a over bytes [0, 240)
//!        248  zero padding to 256
//!        256  sections, each 64-byte aligned, zero-padded gaps:
//!             0 impl-goal          GI-G-idx forward labels   (impls words)
//!             1 impl-actions off   GI-A-idx offsets          (impls+1)
//!             2 impl-actions data  GI-A-idx postings
//!             3 goal-impls off     inverse GI-G-idx offsets  (goals+1)
//!             4 goal-impls data    inverse GI-G-idx postings
//!             5 action-impls off   A-GI-idx offsets          (actions+1)
//!             6 action-impls data  A-GI-idx postings
//!             7 impl-global        shard-local → global map  (0 or impls)
//! ```
//!
//! Section 7 is empty for whole models; shard snapshots use it to carry
//! the shard's local→global implementation id map, so a `--shards N`
//! server boots a whole family off mapped files with no sidecar.
//!
//! **Validate-before-trust:** a mapped file is untrusted memory. The
//! reader verifies, in order: header checksum, exact section layout
//! (alignment, ordering, bounds, cardinalities), per-section and
//! whole-file checksums, and finally [`GoalModel::from_backings`] runs the
//! full structural check (offset monotonicity, row sortedness, id ranges)
//! over the mapped words. Every failure is a typed `InvalidData` error —
//! corruption can never panic the server or read out of bounds.

use crate::binary::{core_to_io, invalid};
use crate::mmap::{mmap_supported, ModelBytes};
use goalrec_core::{GoalLibrary, GoalModel};
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GRLB";
const VERSION: u32 = 2;
/// Fixed header size; the first section starts here.
pub const HEADER_LEN: usize = 256;
/// Every section offset is a multiple of this (cache-line, and a fortiori
/// `u32`, alignment — also what keeps mapped `&[u32]` views aligned).
pub const SECTION_ALIGN: u64 = 64;
const NUM_SECTIONS: usize = 8;
/// Byte range of the header covered by the header checksum.
const HEADER_FNV_AT: usize = 240;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The v2 corruption checksum: FNV-1a run over four interleaved 64-bit
/// little-endian lanes (one 32-byte stripe per round), with the lane
/// states and any sub-stripe tail folded in byte-wise at the end. Same
/// constants and corruption-detection contract as GRLB v1's byte-wise
/// `Fnv`, but the serial xor-multiply dependency advances per lane word
/// instead of per byte and the four lanes run in parallel — which is
/// what keeps the two checksum passes over a multi-megabyte model file
/// inside the single-digit-millisecond cold-start budget. Not
/// cryptographic; detects bit flips, torn writes and truncation.
struct Fnv4 {
    lanes: [u64; 4],
    tail: [u8; 32],
    tail_len: usize,
}

impl Fnv4 {
    fn new() -> Self {
        Fnv4 {
            lanes: [FNV_OFFSET; 4],
            tail: [0; 32],
            tail_len: 0,
        }
    }

    /// One-shot convenience over a complete byte image.
    fn digest(bytes: &[u8]) -> u64 {
        let mut h = Fnv4::new();
        h.update(bytes);
        h.finish()
    }

    fn fold_stripe(&mut self, stripe: &[u8]) {
        for (lane, w) in self.lanes.iter_mut().zip(stripe.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(w);
            *lane ^= u64::from_le_bytes(b);
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }

    fn update(&mut self, mut bytes: &[u8]) {
        if self.tail_len > 0 {
            let take = (32 - self.tail_len).min(bytes.len());
            self.tail[self.tail_len..self.tail_len + take].copy_from_slice(&bytes[..take]);
            self.tail_len += take;
            bytes = &bytes[take..];
            if self.tail_len < 32 {
                return;
            }
            let stripe = self.tail;
            self.fold_stripe(&stripe);
            self.tail_len = 0;
        }
        let mut stripes = bytes.chunks_exact(32);
        for s in &mut stripes {
            self.fold_stripe(s);
        }
        let rem = stripes.remainder();
        self.tail[..rem.len()].copy_from_slice(rem);
        self.tail_len = rem.len();
    }

    fn finish(&self) -> u64 {
        let mut h = self
            .lanes
            .iter()
            .fold(FNV_OFFSET, |h, &l| (h ^ l).wrapping_mul(FNV_PRIME));
        for &b in &self.tail[..self.tail_len] {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

const SEC_IMPL_GOAL: usize = 0;
const SEC_IA_OFF: usize = 1;
const SEC_GI_OFF: usize = 3;
const SEC_AI_OFF: usize = 5;
const SEC_IMPL_GLOBAL: usize = 7;

/// Human names for error messages, in section order.
const SECTION_NAMES: [&str; NUM_SECTIONS] = [
    "impl-goal",
    "impl-actions offsets",
    "impl-actions data",
    "goal-impls offsets",
    "goal-impls data",
    "action-impls offsets",
    "action-impls data",
    "impl-global",
];

fn align_up(x: u64) -> u64 {
    (x + (SECTION_ALIGN - 1)) & !(SECTION_ALIGN - 1)
}

/// One parsed section descriptor: byte offset, length in `u32` words, and
/// the FNV-1a checksum of the section's bytes.
#[derive(Clone, Copy)]
struct Section {
    offset: u64,
    words: u64,
    fnv: u64,
}

/// The parsed, checksum-verified v2 header (layout not yet validated).
struct Header {
    num_actions: u64,
    num_goals: u64,
    num_impls: u64,
    file_len: u64,
    file_fnv: u64,
    sections: [Section; NUM_SECTIONS],
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Parses and checksum-verifies the fixed 256-byte header.
fn parse_header(h: &[u8; HEADER_LEN]) -> io::Result<Header> {
    if &h[0..4] != MAGIC {
        return Err(invalid("not a GRLB file (bad magic)"));
    }
    let version = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
    if version != VERSION {
        return Err(invalid(&format!(
            "unsupported GRLB version {version} (this reader supports version {VERSION})"
        )));
    }
    if Fnv4::digest(&h[..HEADER_FNV_AT]) != get_u64(h, HEADER_FNV_AT) {
        return Err(invalid("header checksum mismatch (corrupted header)"));
    }
    if h[HEADER_FNV_AT + 8..].iter().any(|&b| b != 0) {
        return Err(invalid("nonzero bytes in reserved header padding"));
    }
    let mut sections = [Section {
        offset: 0,
        words: 0,
        fnv: 0,
    }; NUM_SECTIONS];
    for (i, s) in sections.iter_mut().enumerate() {
        let base = 48 + i * 24;
        *s = Section {
            offset: get_u64(h, base),
            words: get_u64(h, base + 8),
            fnv: get_u64(h, base + 16),
        };
    }
    Ok(Header {
        num_actions: get_u64(h, 8),
        num_goals: get_u64(h, 16),
        num_impls: get_u64(h, 24),
        file_len: get_u64(h, 32),
        file_fnv: get_u64(h, 40),
        sections,
    })
}

/// Validates the section layout against the id-space sizes and the actual
/// file length. After this returns `Ok`, every section range is in bounds,
/// 64-byte aligned, non-overlapping, in order, and of the cardinality the
/// header promises — so handing the ranges to [`ModelBytes::section`] is
/// safe.
fn validate_layout(h: &Header, actual_len: u64) -> io::Result<()> {
    if h.file_len != actual_len {
        return Err(invalid(&format!(
            "file length mismatch (header says {} bytes, file has {actual_len} — truncated or trailing garbage)",
            h.file_len
        )));
    }
    for (what, n) in [
        ("action", h.num_actions),
        ("goal", h.num_goals),
        ("implementation", h.num_impls),
    ] {
        if n > u32::MAX as u64 {
            return Err(invalid(&format!("{what} id space exceeds u32 capacity")));
        }
    }
    // Cardinalities the header itself fixes; data-section lengths are
    // cross-checked against the offset arrays by the structural pass.
    let expected: [Option<u64>; NUM_SECTIONS] = [
        Some(h.num_impls),
        Some(h.num_impls + 1),
        None,
        Some(h.num_goals + 1),
        None,
        Some(h.num_actions + 1),
        None,
        None,
    ];
    let mut cursor = HEADER_LEN as u64;
    for i in 0..NUM_SECTIONS {
        let s = &h.sections[i];
        let name = SECTION_NAMES[i];
        if s.offset % SECTION_ALIGN != 0 {
            return Err(invalid(&format!(
                "section `{name}` misaligned (offset {} is not {SECTION_ALIGN}-byte aligned)",
                s.offset
            )));
        }
        // The writer's layout is canonical: each section starts at the
        // aligned end of the previous one. Anything else is overlap,
        // reordering, or an unexplained gap — reject all three.
        let start = align_up(cursor);
        if s.offset < start {
            return Err(invalid(&format!(
                "section `{name}` overlaps the previous section (offset {} < {start})",
                s.offset
            )));
        }
        if s.offset > start {
            return Err(invalid(&format!(
                "section `{name}` leaves a gap after the previous section (offset {} > {start})",
                s.offset
            )));
        }
        if s.words > u32::MAX as u64 {
            return Err(invalid(&format!(
                "section `{name}` exceeds the u32 posting capacity"
            )));
        }
        let end = s.offset + s.words * 4;
        if end > h.file_len {
            return Err(invalid(&format!(
                "section `{name}` runs past the end of the file ({end} > {})",
                h.file_len
            )));
        }
        if let Some(exp) = expected[i] {
            if s.words != exp {
                return Err(invalid(&format!(
                    "section `{name}` holds {} words, header cardinalities require {exp}",
                    s.words
                )));
            }
        }
        cursor = end;
    }
    if cursor != h.file_len {
        return Err(invalid(&format!(
            "trailing bytes after the last section ({cursor} < {})",
            h.file_len
        )));
    }
    let ig = h.sections[SEC_IMPL_GLOBAL].words;
    if ig != 0 && ig != h.num_impls {
        return Err(invalid(&format!(
            "impl-global section holds {ig} words; must be empty (whole model) or one per implementation ({})",
            h.num_impls
        )));
    }
    Ok(())
}

/// Verifies the per-section and whole-file checksums against the complete
/// file image. This is the single full pass over the bytes a v2 load pays.
fn verify_checksums(h: &Header, bytes: &[u8]) -> io::Result<()> {
    for (i, s) in h.sections.iter().enumerate() {
        let start = s.offset as usize;
        let end = start + s.words as usize * 4;
        if Fnv4::digest(&bytes[start..end]) != s.fnv {
            return Err(invalid(&format!(
                "section `{}` checksum mismatch (file corrupted)",
                SECTION_NAMES[i]
            )));
        }
    }
    if Fnv4::digest(&bytes[HEADER_LEN..]) != h.file_fnv {
        return Err(invalid("whole-file checksum mismatch (file corrupted)"));
    }
    Ok(())
}

/// Checksum over the little-endian bytes of `words`, also feeding `body`,
/// the running whole-file hash. Streams in 8-word (one stripe) chunks so
/// the words never need a materialized byte image.
fn hash_section(words: &[u32], body: &mut Fnv4) -> u64 {
    let mut h = Fnv4::new();
    let mut stripe = [0u8; 32];
    for chunk in words.chunks(8) {
        for (slot, w) in stripe.chunks_exact_mut(4).zip(chunk) {
            slot.copy_from_slice(&w.to_le_bytes());
        }
        let filled = &stripe[..chunk.len() * 4];
        h.update(filled);
        body.update(filled);
    }
    h.finish()
}

/// Writes the eight sections in v2 layout, crash-safely. The header is
/// assembled after hashing the in-memory arrays, so the file is written in
/// one forward streaming pass.
fn write_v2(
    num_actions: u64,
    num_goals: u64,
    sections: [&[u32]; NUM_SECTIONS],
    path: &Path,
) -> io::Result<()> {
    let num_impls = sections[SEC_IMPL_GOAL].len() as u64;
    let mut offsets = [0u64; NUM_SECTIONS];
    let mut cursor = HEADER_LEN as u64;
    for (i, sec) in sections.iter().enumerate() {
        cursor = align_up(cursor);
        offsets[i] = cursor;
        cursor += sec.len() as u64 * 4;
    }
    let file_len = cursor;

    // Hash pass: per-section FNVs plus the whole-body FNV (padding
    // included, so gap bytes are covered too).
    let mut body = Fnv4::new();
    let mut sec_fnv = [0u64; NUM_SECTIONS];
    let mut pos = HEADER_LEN as u64;
    const ZEROS: [u8; SECTION_ALIGN as usize] = [0; SECTION_ALIGN as usize];
    for (i, sec) in sections.iter().enumerate() {
        body.update(&ZEROS[..(offsets[i] - pos) as usize]);
        sec_fnv[i] = hash_section(sec, &mut body);
        pos = offsets[i] + sec.len() as u64 * 4;
    }

    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&num_actions.to_le_bytes());
    header[16..24].copy_from_slice(&num_goals.to_le_bytes());
    header[24..32].copy_from_slice(&num_impls.to_le_bytes());
    header[32..40].copy_from_slice(&file_len.to_le_bytes());
    header[40..48].copy_from_slice(&body.finish().to_le_bytes());
    for i in 0..NUM_SECTIONS {
        let base = 48 + i * 24;
        header[base..base + 8].copy_from_slice(&offsets[i].to_le_bytes());
        header[base + 8..base + 16].copy_from_slice(&(sections[i].len() as u64).to_le_bytes());
        header[base + 16..base + 24].copy_from_slice(&sec_fnv[i].to_le_bytes());
    }
    let head_hash = Fnv4::digest(&header[..HEADER_FNV_AT]);
    header[HEADER_FNV_AT..HEADER_FNV_AT + 8].copy_from_slice(&head_hash.to_le_bytes());

    crate::io::atomic_write(path, |out| {
        out.write_all(&header)?;
        let mut pos = HEADER_LEN as u64;
        for (i, sec) in sections.iter().enumerate() {
            out.write_all(&ZEROS[..(offsets[i] - pos) as usize])?;
            for &w in *sec {
                out.write_all(&w.to_le_bytes())?;
            }
            pos = offsets[i] + sec.len() as u64 * 4;
        }
        Ok(())
    })
}

/// Writes a compiled model as a whole-model v2 file (empty `impl-global`
/// section), crash-safely via [`crate::io::atomic_write`].
pub fn write_model_v2(model: &GoalModel, path: &Path) -> io::Result<()> {
    let s = model.flat_sections();
    write_v2(
        model.num_actions() as u64,
        model.num_goals() as u64,
        [s[0], s[1], s[2], s[3], s[4], s[5], s[6], &[]],
        path,
    )
}

/// Writes one shard's model plus its local→global implementation id map
/// as a shard-snapshot v2 file (`impl-global` section populated).
pub fn write_shard_v2(model: &GoalModel, impl_global: &[u32], path: &Path) -> io::Result<()> {
    if impl_global.len() != model.num_impls() {
        return Err(invalid(&format!(
            "impl-global map has {} entries for a {}-implementation shard",
            impl_global.len(),
            model.num_impls()
        )));
    }
    let s = model.flat_sections();
    write_v2(
        model.num_actions() as u64,
        model.num_goals() as u64,
        [s[0], s[1], s[2], s[3], s[4], s[5], s[6], impl_global],
        path,
    )
}

/// Opens, header-validates, acquires (map or heap-read) and
/// checksum-verifies a v2 file. `use_mmap` is threaded explicitly so tests
/// can force the heap path without mutating the process environment.
fn open_v2(path: &Path, use_mmap: bool) -> io::Result<(Header, ModelBytes)> {
    let file = File::open(path)?;
    let actual_len = file.metadata()?.len();
    // The header always goes through the fault layer (and on the heap
    // path, so does the rest of the file), so chaos plans against this
    // path fire before any mapping exists.
    let mut r = BufReader::new(goalrec_faults::read_wrap(path, file));
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("file shorter than the 256-byte GRLB v2 header")
        } else {
            e
        }
    })?;
    let h = parse_header(&header)?;
    validate_layout(&h, actual_len)?;
    let bytes = if use_mmap {
        #[cfg(all(unix, target_endian = "little"))]
        {
            drop(r);
            ModelBytes::map_file(path, h.file_len)?
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            ModelBytes::read_heap(&header, &mut r, h.file_len)?
        }
    } else {
        ModelBytes::read_heap(&header, &mut r, h.file_len)?
    };
    verify_checksums(&h, bytes.as_bytes())?;
    Ok((h, bytes))
}

/// Assembles a [`GoalModel`] over the (validated) section views; the
/// structural pass in [`GoalModel::from_backings`] is the last gate.
fn model_from(h: &Header, bytes: &ModelBytes, path: &Path) -> io::Result<GoalModel> {
    let sec = |i: usize| {
        bytes.section(
            h.sections[i].offset as usize,
            h.sections[i].words as usize,
        )
    };
    GoalModel::from_backings(
        h.num_actions as usize,
        h.num_goals as usize,
        sec(SEC_IMPL_GOAL),
        sec(SEC_IA_OFF),
        sec(SEC_IA_OFF + 1),
        sec(SEC_GI_OFF),
        sec(SEC_GI_OFF + 1),
        sec(SEC_AI_OFF),
        sec(SEC_AI_OFF + 1),
    )
    .map_err(|e| core_to_io(path, e))
}

/// Reads a whole-model v2 file, mapped in place when the platform allows
/// (see [`crate::mmap::mmap_supported`]), heap-resident otherwise.
pub fn read_model_v2(path: &Path) -> io::Result<GoalModel> {
    read_model_v2_with(path, mmap_supported())
}

/// [`read_model_v2`] with the heap fallback forced — for tests and for
/// callers that must not hold a file mapping open.
pub fn read_model_v2_heap(path: &Path) -> io::Result<GoalModel> {
    read_model_v2_with(path, false)
}

fn read_model_v2_with(path: &Path, use_mmap: bool) -> io::Result<GoalModel> {
    let (h, bytes) = open_v2(path, use_mmap)?;
    if h.sections[SEC_IMPL_GLOBAL].words != 0 {
        return Err(invalid(
            "this is a shard snapshot (impl-global section present); load it with read_shard_v2",
        ));
    }
    model_from(&h, &bytes, path)
}

/// Reads a shard-snapshot v2 file: the shard's model plus its
/// local→global implementation id map (copied out — it is tiny next to
/// the indexes, and the map is consulted per-result, not per-posting).
pub fn read_shard_v2(path: &Path) -> io::Result<(GoalModel, Vec<u32>)> {
    let (h, bytes) = open_v2(path, mmap_supported())?;
    let ig = h.sections[SEC_IMPL_GLOBAL];
    if ig.words == 0 {
        return Err(invalid(
            "not a shard snapshot (impl-global section empty); load it with read_model_v2",
        ));
    }
    let model = model_from(&h, &bytes, path)?;
    let map = bytes.section(ig.offset as usize, ig.words as usize).to_vec();
    Ok((model, map))
}

/// Reads a v2 file back as a [`GoalLibrary`] (synthetic `a{i}`/`g{i}`
/// names — v2 stores no name tables). This is what lets `repro` and other
/// library-level consumers accept `.grlb2` inputs.
pub fn read_library_v2(path: &Path) -> io::Result<GoalLibrary> {
    let model = read_model_v2(path)?;
    model.to_library().map_err(|e| core_to_io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foodmart::{FoodMart, FoodMartConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("goalrec-grlb2-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn test_model() -> GoalModel {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        GoalModel::build(&fm.library).unwrap()
    }

    /// A small, irregular model for the exhaustive byte-level sweeps
    /// (full-file bit-flipping is quadratic in file size).
    fn tiny_model() -> GoalModel {
        use goalrec_core::LibraryBuilder;
        let mut b = LibraryBuilder::new();
        b.add_impl("salad", ["potatoes", "carrots", "pickles"])
            .unwrap();
        b.add_impl("mash", ["potatoes", "butter"]).unwrap();
        b.add_impl("soup", ["peas", "carrots", "onion", "salt"])
            .unwrap();
        GoalModel::build(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical_mapped_and_heap() {
        let model = test_model();
        let path = tmp("round.grlb2");
        write_model_v2(&model, &path).unwrap();
        for (back, label) in [
            (read_model_v2(&path).unwrap(), "default"),
            (read_model_v2_heap(&path).unwrap(), "heap"),
        ] {
            assert_eq!(back.num_actions(), model.num_actions(), "{label}");
            assert_eq!(back.num_goals(), model.num_goals(), "{label}");
            for (a, b) in back.flat_sections().iter().zip(model.flat_sections()) {
                assert_eq!(*a, b, "{label}");
            }
            back.validate().unwrap();
        }
        if mmap_supported() {
            assert!(read_model_v2(&path).unwrap().is_mapped());
        }
    }

    #[test]
    fn writer_layout_is_aligned_and_deterministic() {
        let model = test_model();
        let (p1, p2) = (tmp("det1.grlb2"), tmp("det2.grlb2"));
        write_model_v2(&model, &p1).unwrap();
        write_model_v2(&model, &p2).unwrap();
        let bytes = std::fs::read(&p1).unwrap();
        assert_eq!(bytes, std::fs::read(&p2).unwrap(), "writer not deterministic");
        assert_eq!(bytes.len() % 4, 0);
        for i in 0..NUM_SECTIONS {
            let off = get_u64(&bytes, 48 + i * 24);
            assert_eq!(off % SECTION_ALIGN, 0, "section {i} misaligned");
        }
    }

    #[test]
    fn shard_roundtrip_carries_the_global_map() {
        let model = test_model();
        let map: Vec<u32> = (0..model.num_impls() as u32).map(|i| i * 2 + 1).collect();
        let path = tmp("shard.grlb2");
        write_shard_v2(&model, &map, &path).unwrap();
        let (back, back_map) = read_shard_v2(&path).unwrap();
        assert_eq!(back_map, map);
        assert_eq!(back.num_impls(), model.num_impls());
        // The two readers refuse each other's files with typed errors.
        let err = read_model_v2(&path).unwrap_err();
        assert!(err.to_string().contains("shard snapshot"), "{err}");
        let whole = tmp("whole.grlb2");
        write_model_v2(&model, &whole).unwrap();
        let err = read_shard_v2(&whole).unwrap_err();
        assert!(err.to_string().contains("not a shard snapshot"), "{err}");
        // A mis-sized map is rejected at write time.
        assert!(write_shard_v2(&model, &map[1..], &path).is_err());
    }

    #[test]
    fn every_header_field_corruption_is_caught() {
        // Exhaustive matrix: flip one bit in every byte of the header —
        // magic, version, each cardinality, file_len, every descriptor
        // field, the checksums, the reserved pad — and require a typed
        // error from both the mapped and the heap reader.
        let model = test_model();
        let path = tmp("headmatrix.grlb2");
        write_model_v2(&model, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mutant = tmp("headmatrix-mut.grlb2");
        for byte_idx in 0..HEADER_LEN {
            let mut copy = bytes.clone();
            copy[byte_idx] ^= 1 << (byte_idx % 8);
            std::fs::write(&mutant, &copy).unwrap();
            for (res, label) in [
                (read_model_v2(&mutant).err(), "mapped"),
                (read_model_v2_heap(&mutant).err(), "heap"),
            ] {
                let err = res.unwrap_or_else(|| {
                    panic!("header byte {byte_idx} corrupted and {label} read still parsed")
                });
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {byte_idx}");
            }
        }
        std::fs::write(&mutant, &bytes).unwrap();
        assert!(read_model_v2(&mutant).is_ok(), "fixture itself broken");
    }

    #[test]
    fn every_body_bit_flip_is_caught() {
        let model = tiny_model();
        let path = tmp("bodyflip.grlb2");
        write_model_v2(&model, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mutant = tmp("bodyflip-mut.grlb2");
        for byte_idx in HEADER_LEN..bytes.len() {
            for bit in 0..8 {
                let mut copy = bytes.clone();
                copy[byte_idx] ^= 1 << bit;
                std::fs::write(&mutant, &copy).unwrap();
                assert!(
                    read_model_v2(&mutant).is_err(),
                    "bit {bit} of body byte {byte_idx} flipped and the file still parsed"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_section_boundary_is_caught() {
        let model = test_model();
        let path = tmp("truncsweep.grlb2");
        write_model_v2(&model, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        let h = parse_header(&header).unwrap();
        let cut_at = tmp("truncsweep-cut.grlb2");
        // Every section boundary (start and end), the header edge, one
        // byte into each section, and one byte short of the full file.
        let mut cuts = vec![0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1];
        for s in &h.sections {
            let (start, end) = (s.offset as usize, (s.offset + s.words * 4) as usize);
            for c in [start, start + 1, end.saturating_sub(1), end] {
                if c < bytes.len() {
                    cuts.push(c);
                }
            }
        }
        for cut in cuts {
            std::fs::write(&cut_at, &bytes[..cut]).unwrap();
            for (res, label) in [
                (read_model_v2(&cut_at).err(), "mapped"),
                (read_model_v2_heap(&cut_at).err(), "heap"),
            ] {
                assert!(
                    res.is_some(),
                    "truncation to {cut}/{} bytes parsed as Ok ({label})",
                    bytes.len()
                );
            }
        }
        std::fs::write(&cut_at, &bytes).unwrap();
        assert!(read_model_v2(&cut_at).is_ok());
    }

    /// Rewrites one section descriptor field and re-seals the header
    /// checksum, so the doctored layout reaches the layout validator
    /// instead of being caught by the header FNV.
    fn with_descriptor(bytes: &[u8], section: usize, field: usize, value: u64) -> Vec<u8> {
        let mut copy = bytes.to_vec();
        let at = 48 + section * 24 + field * 8;
        copy[at..at + 8].copy_from_slice(&value.to_le_bytes());
        let hash = Fnv4::digest(&copy[..HEADER_FNV_AT]);
        copy[HEADER_FNV_AT..HEADER_FNV_AT + 8].copy_from_slice(&hash.to_le_bytes());
        copy
    }

    #[test]
    fn misaligned_overlapping_and_gapped_sections_are_rejected() {
        let model = test_model();
        let path = tmp("layout.grlb2");
        write_model_v2(&model, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let first = get_u64(&bytes, 48); // section 0 offset (= 256)
        let doctored = tmp("layout-bad.grlb2");
        let cases: [(&str, Vec<u8>, &str); 5] = [
            (
                "misaligned",
                with_descriptor(&bytes, 0, 0, first + 4),
                "misaligned",
            ),
            (
                "overlap-header",
                with_descriptor(&bytes, 0, 0, 0),
                "misaligned-or-overlap",
            ),
            (
                "overlap-previous",
                with_descriptor(&bytes, 1, 0, first),
                "overlaps",
            ),
            (
                "gap",
                with_descriptor(&bytes, 0, 0, first + 64),
                "gap",
            ),
            (
                "runs-past-eof",
                with_descriptor(&bytes, 6, 1, u32::MAX as u64),
                "past-eof-or-cardinality",
            ),
        ];
        for (name, doc, _why) in cases {
            std::fs::write(&doctored, &doc).unwrap();
            let err = read_model_v2(&doctored)
                .err()
                .unwrap_or_else(|| panic!("layout case `{name}` was accepted"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}: {err}");
        }
    }

    #[test]
    fn content_garbage_that_checksums_ok_is_rejected_by_structure() {
        // Corrupt a posting *before* sealing: write a valid file, flip a
        // word inside the impl-actions data section, then re-seal every
        // checksum. Only the structural pass can catch this.
        let model = test_model();
        let path = tmp("content.grlb2");
        write_model_v2(&model, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        let h = parse_header(&header).unwrap();
        let ia = h.sections[2];
        // Break sortedness of the first row by maxing its first action id.
        let at = ia.offset as usize;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // Re-seal section + file + header checksums.
        let sec = Fnv4::digest(&bytes[at..at + ia.words as usize * 4]);
        let desc = 48 + 2 * 24 + 16;
        bytes[desc..desc + 8].copy_from_slice(&sec.to_le_bytes());
        let body = Fnv4::digest(&bytes[HEADER_LEN..]);
        bytes[40..48].copy_from_slice(&body.to_le_bytes());
        let head = Fnv4::digest(&bytes[..HEADER_FNV_AT]);
        bytes[HEADER_FNV_AT..HEADER_FNV_AT + 8].copy_from_slice(&head.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_model_v2(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn empty_model_file_is_the_typed_empty_library_error() {
        // A sealed v2 file with zero implementations must surface the
        // shared typed empty-library error, like every other loader.
        let path = tmp("empty.grlb2");
        write_v2(
            4,
            2,
            [&[], &[0], &[], &[0, 0, 0], &[], &[0, 0, 0, 0, 0], &[], &[]],
            &path,
        )
        .unwrap();
        let err = read_model_v2(&path).unwrap_err();
        assert!(crate::io::is_empty_library(&err), "{err}");
    }

    #[test]
    fn v1_and_v2_files_cross_reject_with_named_versions() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let v1 = tmp("cross.grlb");
        crate::binary::write_library_binary(&fm.library, &v1).unwrap();
        let err = read_model_v2(&v1).unwrap_err();
        assert!(
            err.to_string().contains("version 1") && err.to_string().contains("supports version 2"),
            "{err}"
        );
        let v2 = tmp("cross.grlb2");
        write_model_v2(&GoalModel::build(&fm.library).unwrap(), &v2).unwrap();
        let err = crate::binary::read_library_binary(&v2).unwrap_err();
        assert!(
            err.to_string().contains("version 2") && err.to_string().contains("supports version 1"),
            "{err}"
        );
        assert_eq!(crate::binary::sniff_version(&v1).unwrap(), 1);
        assert_eq!(crate::binary::sniff_version(&v2).unwrap(), 2);
    }

    #[test]
    fn library_roundtrip_through_v2_preserves_structure() {
        let model = test_model();
        let path = tmp("lib.grlb2");
        write_model_v2(&model, &path).unwrap();
        let lib = read_library_v2(&path).unwrap();
        assert_eq!(lib.len(), model.num_impls());
        assert_eq!(lib.num_actions(), model.num_actions());
        assert_eq!(lib.num_goals(), model.num_goals());
        let rebuilt = GoalModel::build(&lib).unwrap();
        for (a, b) in rebuilt.flat_sections().iter().zip(model.flat_sections()) {
            assert_eq!(*a, b);
        }
    }
}
