//! Dataset persistence: JSON for whole datasets, JSON-lines for libraries.
//!
//! Generating the paper-scale worlds takes a few seconds; persisting them
//! lets examples and the `repro` harness share identical inputs across
//! runs, and gives downstream users a concrete interchange format for real
//! goal-implementation data.

use goalrec_core::{GoalLibrary, Implementation};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes any serialisable dataset as pretty JSON.
pub fn write_json<T: Serialize>(value: &T, path: &Path) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    serde_json::to_writer(&mut w, value)?;
    w.flush()
}

/// Reads a JSON dataset written by [`write_json`].
pub fn read_json<T: DeserializeOwned>(path: &Path) -> std::io::Result<T> {
    let f = BufReader::new(File::open(path)?);
    Ok(serde_json::from_reader(f)?)
}

/// Writes a library as JSON-lines: one implementation per line, so large
/// libraries stream without a giant in-memory document.
pub fn write_library_jsonl(library: &GoalLibrary, path: &Path) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for imp in library.implementations() {
        serde_json::to_writer(&mut w, imp)?;
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a library from `path`, choosing the format by extension
/// (`.grlb` binary, JSON-lines otherwise) and inferring the action/goal
/// id spaces from the data itself. This is the one-argument loader the
/// server binary and CLI share.
pub fn read_library_auto(path: &Path) -> std::io::Result<GoalLibrary> {
    if path.extension().is_some_and(|e| e == "grlb") {
        return crate::binary::read_library_binary(path);
    }
    let f = BufReader::new(File::open(path)?);
    let mut impls = Vec::new();
    let (mut max_action, mut max_goal) = (0u32, 0u32);
    for line in f.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let imp: Implementation = serde_json::from_str(&line)?;
        max_goal = max_goal.max(imp.goal.raw());
        for a in &imp.actions {
            max_action = max_action.max(a.raw());
        }
        impls.push((imp.goal, imp.actions));
    }
    GoalLibrary::from_id_implementations(max_action + 1, max_goal + 1, impls)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads implementations from a JSON-lines file and rebuilds a library.
/// `num_actions`/`num_goals` bound the id spaces (as in
/// [`GoalLibrary::from_id_implementations`]).
pub fn read_library_jsonl(
    path: &Path,
    num_actions: u32,
    num_goals: u32,
) -> std::io::Result<GoalLibrary> {
    let f = BufReader::new(File::open(path)?);
    let mut impls = Vec::new();
    for line in f.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let imp: Implementation = serde_json::from_str(&line)?;
        impls.push((imp.goal, imp.actions));
    }
    GoalLibrary::from_id_implementations(num_actions, num_goals, impls)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foodmart::{FoodMart, FoodMartConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("goalrec-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn json_roundtrip_of_full_dataset() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("foodmart.json");
        write_json(&fm, &path).unwrap();
        let mut back: FoodMart = read_json(&path).unwrap();
        back.library.rebuild_lookups();
        assert_eq!(back.carts, fm.carts);
        assert_eq!(back.library.implementations(), fm.library.implementations());
        assert_eq!(back.cart_user, fm.cart_user);
    }

    #[test]
    fn jsonl_roundtrip_of_library() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("library.jsonl");
        write_library_jsonl(&fm.library, &path).unwrap();
        let back = read_library_jsonl(
            &path,
            fm.library.num_actions() as u32,
            fm.library.num_goals() as u32,
        )
        .unwrap();
        assert_eq!(back.implementations(), fm.library.implementations());
    }

    #[test]
    fn jsonl_read_rejects_out_of_range_ids() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("library-bad.jsonl");
        write_library_jsonl(&fm.library, &path).unwrap();
        let err = read_library_jsonl(&path, 1, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_missing_file_errors() {
        let err = read_json::<FoodMart>(&tmp("does-not-exist.json")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
