//! Dataset persistence: JSON for whole datasets, JSON-lines for libraries.
//!
//! Generating the paper-scale worlds takes a few seconds; persisting them
//! lets examples and the `repro` harness share identical inputs across
//! runs, and gives downstream users a concrete interchange format for real
//! goal-implementation data.
//!
//! Two robustness properties hold for everything in this module:
//!
//! * **Crash safety** — every writer goes through [`atomic_write`]: bytes
//!   land in a same-directory temp file, are fsynced, and only then
//!   atomically renamed over the target. A crash, full disk, or injected
//!   torn write never leaves a half-written file where a good one stood.
//! * **Fault injectability** — every file handle is wrapped through
//!   `goalrec-faults`, so chaos tests can schedule IO errors, short reads,
//!   stalls and torn writes against these exact code paths. With no plan
//!   armed the wrappers are passthrough.

use goalrec_core::{ActionId, GoalId, GoalLibrary};
use serde::de::DeserializeOwned;
use serde::Serialize;
use serde_json::Value;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Typed payload of the "library file contains no implementations" load
/// error. Surfaced at load time by [`read_library_auto`] so callers (the
/// server boot path, hot reload) can answer with a precise message instead
/// of a confusing downstream model-build failure. Retrieve it through
/// [`is_empty_library`].
#[derive(Debug)]
pub struct EmptyLibraryError {
    /// The file that held no implementations.
    pub path: PathBuf,
}

impl fmt::Display for EmptyLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} contains no implementations (empty library)",
            self.path.display()
        )
    }
}

impl std::error::Error for EmptyLibraryError {}

/// Whether `err` is the typed empty-library error raised by
/// [`read_library_auto`].
pub fn is_empty_library(err: &io::Error) -> bool {
    err.get_ref().is_some_and(|e| e.is::<EmptyLibraryError>())
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temp sibling of `path`, in the same directory so the
/// final rename cannot cross filesystems.
fn tmp_sibling(path: &Path) -> PathBuf {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "library".to_owned());
    // ordering: Relaxed — only the atomicity matters: each caller gets a
    // distinct suffix; nothing is published through the counter.
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    parent.join(format!(".{name}.tmp.{}.{n}", std::process::id()))
}

/// Crash-safe file replacement: runs `write` against a same-directory
/// temp file, fsyncs it, and atomically renames it over `path`. On any
/// failure the temp file is removed and the previous contents of `path`
/// remain untouched — a reader can never observe a partially-written
/// file at the target path.
///
/// The writer handed to `write` is fault-wrapped against the *target*
/// path, so chaos plans name the file being persisted, not the temp name.
pub fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| -> io::Result<()> {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(goalrec_faults::write_wrap(path, file));
        write(&mut w)?;
        w.flush()?;
        // Durability point: the temp file's bytes must be on disk before
        // the rename makes them the library.
        w.get_ref().get_ref().sync_all()
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    // Best-effort directory sync so the rename itself survives a crash.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Opens `path` for reading through the fault-injection layer.
fn open_read(path: &Path) -> io::Result<BufReader<goalrec_faults::FaultyRead<File>>> {
    Ok(BufReader::new(goalrec_faults::read_wrap(
        path,
        File::open(path)?,
    )))
}

/// Writes any serialisable dataset as JSON, crash-safely.
pub fn write_json<T: Serialize>(value: &T, path: &Path) -> std::io::Result<()> {
    atomic_write(path, |w| {
        serde_json::to_writer(&mut *w, value)?;
        Ok(())
    })
}

/// Reads a JSON dataset written by [`write_json`].
pub fn read_json<T: DeserializeOwned>(path: &Path) -> std::io::Result<T> {
    let f = open_read(path)?;
    Ok(serde_json::from_reader(f)?)
}

/// Writes a library as JSON-lines, crash-safely: one implementation per
/// line, so large libraries stream without a giant in-memory document.
pub fn write_library_jsonl(library: &GoalLibrary, path: &Path) -> std::io::Result<()> {
    atomic_write(path, |w| {
        for imp in library.implementations() {
            serde_json::to_writer(&mut *w, imp)?;
            writeln!(w)?;
        }
        Ok(())
    })
}

/// An `InvalidData` error pinned to a 1-based line of a JSONL file.
fn invalid_line(path: &Path, line: usize, detail: impl fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}:{line}: {detail}", path.display()),
    )
}

/// Validates one implementation object — `{"goal": g, "actions": [a, ...]}`
/// — returning the raw ids, or an error that names the offending **field**
/// (not just a position), so a rejected JSONL line or append body pinpoints
/// exactly which part of the record is wrong. Unknown extra fields are
/// ignored, matching the serde-derived reader this replaces.
///
/// Shared by [`read_library_auto`], [`read_library_jsonl`], the append WAL
/// ([`crate::wal`]), and the server's live-append admission check, so a
/// record rejected at the HTTP boundary and one rejected at replay produce
/// the same message.
pub fn implementation_from_value(value: &Value) -> Result<(u32, Vec<u32>), String> {
    let fields = match value {
        Value::Object(fields) => fields,
        other => {
            return Err(format!(
                "expected an object with `goal` and `actions` fields, got {other}"
            ))
        }
    };
    let id_of = |v: &Value| v.as_u64().and_then(|n| u32::try_from(n).ok());
    let goal = match fields.iter().find(|(k, _)| k == "goal") {
        None => return Err("field `goal`: missing".to_owned()),
        Some((_, v)) => id_of(v)
            .ok_or_else(|| format!("field `goal`: expected a non-negative integer id, got {v}"))?,
    };
    let actions = match fields.iter().find(|(k, _)| k == "actions") {
        None => return Err("field `actions`: missing".to_owned()),
        Some((_, Value::Array(items))) => {
            if items.is_empty() {
                return Err("field `actions`: must list at least one action".to_owned());
            }
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                out.push(id_of(item).ok_or_else(|| {
                    format!("field `actions`[{i}]: expected a non-negative integer id, got {item}")
                })?);
            }
            out
        }
        Some((_, v)) => {
            return Err(format!(
                "field `actions`: expected an array of action ids, got {v}"
            ))
        }
    };
    Ok((goal, actions))
}

/// Parses one JSONL line as an implementation record with field-named
/// errors — the string form of [`implementation_from_value`].
pub fn parse_implementation_line(line: &str) -> Result<(u32, Vec<u32>), String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    implementation_from_value(&value)
}

/// Reads a library from `path`, choosing the format by extension
/// (`.grlb`/`.grlb2` binary, JSON-lines otherwise) and inferring the
/// action/goal id spaces from the data itself. This is the one-argument
/// loader the server binary, hot reload, and CLI share.
///
/// Binary files are dispatched on the *version stamped in the file*, not
/// the extension: a `.grlb` holding a v2 image (or a `.grlb2` holding v1)
/// still loads with the right reader, so `serve`/`repro` accept compiled
/// `.grlb2` artifacts anywhere a library path is expected.
///
/// A file with zero implementations is rejected here with the typed
/// [`EmptyLibraryError`] (see [`is_empty_library`]) instead of letting an
/// empty library surface as a confusing model-build failure downstream.
/// Parse failures report the offending line number, and schema failures
/// additionally name the offending field (see
/// [`implementation_from_value`]).
pub fn read_library_auto(path: &Path) -> std::io::Result<GoalLibrary> {
    if is_binary_library(path) {
        return if crate::binary::sniff_version(path)? == 2 {
            crate::grlb2::read_library_v2(path)
        } else {
            crate::binary::read_library_binary(path)
        };
    }
    let f = open_read(path)?;
    let mut impls = Vec::new();
    let (mut max_action, mut max_goal) = (0u32, 0u32);
    for (idx, line) in f.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (goal, actions) = parse_implementation_line(&line)
            .map_err(|detail| invalid_line(path, idx + 1, detail))?;
        max_goal = max_goal.max(goal);
        for &a in &actions {
            max_action = max_action.max(a);
        }
        impls.push((
            GoalId::new(goal),
            actions.into_iter().map(ActionId::new).collect(),
        ));
    }
    if impls.is_empty() {
        return Err(empty_library(path));
    }
    GoalLibrary::from_id_implementations(max_action + 1, max_goal + 1, impls)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Whether `path` is a binary `GRLB` family file by extension (`.grlb`
/// v1 stream or `.grlb2` mapped model). Which *reader* applies is decided
/// by [`crate::binary::sniff_version`], not the extension.
pub fn is_binary_library(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "grlb" || e == "grlb2")
}

/// The typed empty-library `InvalidData` error for `path`.
pub(crate) fn empty_library(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        EmptyLibraryError {
            path: path.to_path_buf(),
        },
    )
}

/// Reads implementations from a JSON-lines file and rebuilds a library.
/// `num_actions`/`num_goals` bound the id spaces (as in
/// [`GoalLibrary::from_id_implementations`]). Parse failures report the
/// offending line number, and schema failures name the offending field.
pub fn read_library_jsonl(
    path: &Path,
    num_actions: u32,
    num_goals: u32,
) -> std::io::Result<GoalLibrary> {
    let f = open_read(path)?;
    let mut impls = Vec::new();
    for (idx, line) in f.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (goal, actions) = parse_implementation_line(&line)
            .map_err(|detail| invalid_line(path, idx + 1, detail))?;
        impls.push((
            GoalId::new(goal),
            actions.into_iter().map(ActionId::new).collect(),
        ));
    }
    GoalLibrary::from_id_implementations(num_actions, num_goals, impls)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foodmart::{FoodMart, FoodMartConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("goalrec-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn json_roundtrip_of_full_dataset() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("foodmart.json");
        write_json(&fm, &path).unwrap();
        let mut back: FoodMart = read_json(&path).unwrap();
        back.library.rebuild_lookups();
        assert_eq!(back.carts, fm.carts);
        assert_eq!(back.library.implementations(), fm.library.implementations());
        assert_eq!(back.cart_user, fm.cart_user);
    }

    #[test]
    fn jsonl_roundtrip_of_library() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("library.jsonl");
        write_library_jsonl(&fm.library, &path).unwrap();
        let back = read_library_jsonl(
            &path,
            fm.library.num_actions() as u32,
            fm.library.num_goals() as u32,
        )
        .unwrap();
        assert_eq!(back.implementations(), fm.library.implementations());
    }

    #[test]
    fn jsonl_read_rejects_out_of_range_ids() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("library-bad.jsonl");
        write_library_jsonl(&fm.library, &path).unwrap();
        let err = read_library_jsonl(&path, 1, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_missing_file_errors() {
        let err = read_json::<FoodMart>(&tmp("does-not-exist.json")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn auto_read_rejects_empty_library_with_typed_error() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "\n  \n").unwrap();
        let err = read_library_auto(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(is_empty_library(&err), "expected typed EmptyLibraryError");
        assert!(err.to_string().contains("empty library"), "{err}");
        // A normal InvalidData error is *not* classified as empty.
        let plain = io::Error::new(io::ErrorKind::InvalidData, "other");
        assert!(!is_empty_library(&plain));
    }

    #[test]
    fn auto_read_reports_the_failing_line_number() {
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        let path = tmp("bad-line.jsonl");
        write_library_jsonl(&fm.library, &path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Corrupt the third line.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "need at least three implementations");
        let mut doctored: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        doctored[2] = "{not valid json".to_owned();
        text = doctored.join("\n");
        std::fs::write(&path, &text).unwrap();
        let err = read_library_auto(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":3:"), "no line number in: {err}");
        let err = read_library_jsonl(&path, 1000, 1000).unwrap_err();
        assert!(err.to_string().contains(":3:"), "no line number in: {err}");
    }

    #[test]
    fn jsonl_errors_name_the_offending_field() {
        let path = tmp("bad-field.jsonl");
        // Wrong type for `goal` on line 2.
        std::fs::write(
            &path,
            "{\"goal\":1,\"actions\":[2]}\n{\"goal\":\"g9\",\"actions\":[2]}\n",
        )
        .unwrap();
        let err = read_library_auto(&path).unwrap_err();
        assert!(err.to_string().contains(":2:"), "{err}");
        assert!(err.to_string().contains("field `goal`"), "{err}");
        // Missing `actions`.
        std::fs::write(&path, "{\"goal\":1}\n").unwrap();
        let err = read_library_auto(&path).unwrap_err();
        assert!(
            err.to_string().contains("field `actions`: missing"),
            "{err}"
        );
        // A bad element names its index within the field.
        std::fs::write(&path, "{\"goal\":1,\"actions\":[2,-3]}\n").unwrap();
        let err = read_library_auto(&path).unwrap_err();
        assert!(err.to_string().contains("field `actions`[1]"), "{err}");
        // Empty `actions` is rejected at the line, not at model build.
        std::fs::write(&path, "{\"goal\":1,\"actions\":[]}\n").unwrap();
        let err = read_library_auto(&path).unwrap_err();
        assert!(err.to_string().contains("at least one action"), "{err}");
        // Non-object lines are named as such.
        assert!(parse_implementation_line("[1,2]")
            .unwrap_err()
            .contains("expected an object"));
    }

    #[test]
    fn atomic_write_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join("goalrec-io-tests-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.jsonl");
        let fm = FoodMart::generate(&FoodMartConfig::test_scale());
        write_library_jsonl(&fm.library, &path).unwrap();
        // A failing writer must also clean up.
        let err = atomic_write(&dir.join("failing.json"), |_w| {
            Err(io::Error::other("writer bailed"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("writer bailed"));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }
}
