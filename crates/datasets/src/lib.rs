//! # goalrec-datasets
//!
//! Synthetic dataset generators calibrated to the two evaluation scenarios
//! of the paper (§6), the hide-split evaluation protocol, and dataset IO.
//!
//! * [`foodmart`] — the grocery scenario: high-connectivity recipe library
//!   plus customer carts.
//! * [`fortythree`] — the 43Things life-goal scenario: low-connectivity,
//!   family-local library plus user goal activities.
//! * [`split`] — the 30 %-visible / 70 %-hidden evaluation protocol.
//! * [`zipf`] — the skewed samplers both generators share.
//! * [`io`] — JSON / JSON-lines persistence; [`binary`] — the compact
//!   checksummed `GRLB` v1 stream format for large libraries; [`grlb2`] —
//!   the aligned, sectioned `GRLB` v2 model format that serves in place
//!   via [`mmap`].
//! * [`wal`] — the append-ahead log that makes live library appends
//!   durable between admission and background compaction.
//!
//! Both real sources are gone (the FoodMart mirror and food ontology, and
//! the 43Things site); DESIGN.md §3 documents how the synthetic stand-ins
//! preserve the statistics that drive the paper's results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod foodmart;
pub mod fortythree;
pub mod grlb2;
pub mod io;
pub mod mmap;
pub mod split;
pub mod wal;
pub mod zipf;

pub use foodmart::{FoodMart, FoodMartConfig};
pub use fortythree::{FortyThings, FortyThingsConfig};
pub use split::{hide_split, hide_split_all, SplitActivity};
pub use wal::AppendWal;
pub use zipf::Zipf;
