//! Zero-copy model-file bytes: `mmap(2)` via direct libc FFI, with a
//! read-into-heap fallback.
//!
//! The GRLB v2 reader ([`crate::grlb2`]) wants the file's `u32` sections
//! *in place*, not parsed — that is the whole point of the format. This
//! module supplies the buffer: [`ModelBytes`] is either a page-aligned
//! read-only file mapping (Unix, little-endian targets) or one flat heap
//! buffer the file was read into (everything else, plus tests that set
//! `GOALREC_NO_MMAP=1`). Either way, [`ModelBytes::section`] hands out
//! [`CsrBacking`] views that borrow the buffer and keep it alive through a
//! shared handle — the last view to drop releases the buffer, which for a
//! mapping is the `munmap` (the unmap-after-last-snapshot rule).
//!
//! The FFI follows the same zero-dependency pattern as the `signal(2)`
//! binding in the server's shutdown module: `std` already links libc, so
//! declaring the two entry points adds nothing to the build. Only the
//! mapping itself bypasses `goalrec-faults` — the caller reads the header
//! (and, on the fallback path, the whole file) through the fault-wrapped
//! reader first, so chaos plans still fire against v2 loads.

use goalrec_core::CsrBacking;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

#[cfg(all(unix, target_endian = "little"))]
mod ffi {
    use std::os::raw::{c_int, c_void};

    /// `PROT_READ` — pages are readable, nothing else.
    pub const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE` — copy-on-write private mapping; we never write, so
    /// this simply means the file cannot be modified through us.
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// A read-only `mmap` of a whole model file; `Drop` unmaps it. Held in an
/// `Arc` that every [`CsrBacking`] view clones, so the address range stays
/// valid until the last view (and therefore the last in-flight request
/// snapshot) is gone.
#[cfg(all(unix, target_endian = "little"))]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared memory —
// and the struct only ever reads through the pointer, so moving or sharing
// it across threads is sound.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for Mapping {}
// safety: same invariant as Send above — the memory is immutable for the
// mapping's whole lifetime, so concurrent readers cannot race.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for Mapping {}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are exactly what mmap returned, unmapped
        // exactly once (Drop), and no CsrBacking view outlives the Arc
        // that owns this Mapping.
        unsafe {
            ffi::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// The bytes of one model file, either mapped in place or heap-resident.
/// Both variants expose the same section accessors; `grlb2` never branches
/// on which one it got.
pub enum ModelBytes {
    /// A live `mmap` of the file.
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(Arc<Mapping>),
    /// The file read into one flat word buffer (fallback path). Stored as
    /// `u32` words so section views are correctly aligned by construction.
    Heap(Arc<Box<[u32]>>),
}

impl std::fmt::Debug for ModelBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = if self.is_mapped() { "Mapped" } else { "Heap" };
        write!(f, "ModelBytes::{tag}({} bytes)", self.len_bytes())
    }
}

/// Whether this build + environment can serve a model file by mapping it.
/// `GOALREC_NO_MMAP=1` forces the heap fallback, which is how the test
/// suite exercises both paths on one platform.
pub fn mmap_supported() -> bool {
    cfg!(all(unix, target_endian = "little")) && std::env::var_os("GOALREC_NO_MMAP").is_none()
}

impl ModelBytes {
    /// Maps `path` read-only. The caller has already validated the header
    /// and knows the exact file length; mapping a file whose length
    /// changed since is rejected.
    #[cfg(all(unix, target_endian = "little"))]
    pub fn map_file(path: &Path, expected_len: u64) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len != expected_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("model file changed size during open ({len} vs {expected_len} bytes)"),
            ));
        }
        let len = len as usize;
        // SAFETY: fd is a freshly opened readable file, len is its current
        // non-zero size (a v2 file is at least one 256-byte header), and
        // we request a read-only private mapping at a kernel-chosen
        // address. The fd may be closed after mmap returns; the mapping
        // persists until munmap.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ModelBytes::Mapped(Arc::new(Mapping {
            ptr: ptr as *const u8,
            len,
        })))
    }

    /// Heap fallback: drains `rest` (the fault-wrapped reader, positioned
    /// right after the already-consumed 256-byte header) and reassembles
    /// the full file image as one word buffer, header included, so section
    /// offsets stay absolute.
    pub fn read_heap(header: &[u8], rest: &mut dyn Read, expected_len: u64) -> io::Result<Self> {
        let mut bytes = Vec::with_capacity(expected_len as usize);
        bytes.extend_from_slice(header);
        rest.read_to_end(&mut bytes)?;
        if bytes.len() as u64 != expected_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "model file changed size during read ({} vs {expected_len} bytes)",
                    bytes.len()
                ),
            ));
        }
        // A v2 file is a whole number of u32 words (the header is 64 words
        // and every section is a word array); grlb2 validated that before
        // calling us.
        let words: Box<[u32]> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(ModelBytes::Heap(Arc::new(words)))
    }

    /// Whether the bytes are a live file mapping (vs the heap fallback).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            ModelBytes::Mapped(_) => true,
            ModelBytes::Heap(_) => false,
        }
    }

    /// The whole file image as bytes — what the checksum passes hash.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            ModelBytes::Mapped(m) => {
                // SAFETY: the mapping covers exactly [ptr, ptr + len) of
                // readable memory for as long as `m` is alive, and the
                // returned slice borrows `self`.
                unsafe { std::slice::from_raw_parts(m.ptr, m.len) }
            }
            ModelBytes::Heap(words) => {
                // SAFETY: any &[u32] is readable as 4× as many bytes at
                // the same address; u8 has no alignment requirement.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, words.len() * 4) }
            }
        }
    }

    /// Total length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.as_bytes().len()
    }

    /// A borrowed [`CsrBacking`] view of `words` `u32`s starting at byte
    /// offset `byte_offset`, keeping the whole buffer alive through the
    /// shared handle.
    ///
    /// The caller (the grlb2 header validator) has already proven the
    /// range is in bounds and `byte_offset` is 64-byte aligned — which on
    /// a page-aligned mapping (or a `u32`-aligned heap buffer) makes the
    /// view correctly aligned for `u32`.
    pub fn section(&self, byte_offset: usize, words: usize) -> CsrBacking {
        debug_assert!(byte_offset % 4 == 0);
        debug_assert!(byte_offset + words * 4 <= self.len_bytes());
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            ModelBytes::Mapped(m) => {
                // SAFETY: the range is inside the mapping (validated
                // bounds), the base pointer is page-aligned and the offset
                // 64-aligned so the u32 view is aligned, the mapping is
                // immutable (PROT_READ), and the target is little-endian
                // (cfg) so the on-disk words *are* the in-memory words.
                // The 'static lifetime is upheld by handing the Mapping
                // Arc to CsrBacking as the keepalive.
                unsafe {
                    let slice = std::slice::from_raw_parts(m.ptr.add(byte_offset) as *const u32, words);
                    CsrBacking::mapped(slice, Arc::clone(m) as Arc<dyn std::any::Any + Send + Sync>)
                }
            }
            ModelBytes::Heap(buf) => {
                // SAFETY: the slice borrows the Arc'd word buffer, which
                // the keepalive clone holds alive for at least as long as
                // the returned backing and all of its clones.
                unsafe {
                    let slice = std::slice::from_raw_parts(buf.as_ptr().add(byte_offset / 4), words);
                    CsrBacking::mapped(slice, Arc::clone(buf) as Arc<dyn std::any::Any + Send + Sync>)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("goalrec-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn heap_bytes_roundtrip_words() {
        let header = [0u8; 256];
        let mut body: Vec<u8> = Vec::new();
        for w in [1u32, 2, 3, 0xdead_beef] {
            body.extend_from_slice(&w.to_le_bytes());
        }
        let total = 256 + body.len() as u64;
        let mb = ModelBytes::read_heap(&header, &mut &body[..], total).unwrap();
        assert!(!mb.is_mapped());
        assert_eq!(mb.len_bytes() as u64, total);
        let sec = mb.section(256, 4);
        assert_eq!(&*sec, &[1, 2, 3, 0xdead_beef]);
        assert!(sec.is_mapped(), "heap sections still borrow the buffer");
    }

    #[test]
    fn heap_rejects_length_mismatch() {
        let header = [0u8; 256];
        let body = [0u8; 8];
        let err = ModelBytes::read_heap(&header, &mut &body[..], 512).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn mapped_bytes_match_file_and_unmap_on_drop() {
        let path = tmp("map.bin");
        let mut bytes = vec![0u8; 256];
        for w in [7u32, 8, 9] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let mb = ModelBytes::map_file(&path, bytes.len() as u64).unwrap();
        assert!(mb.is_mapped());
        assert_eq!(mb.as_bytes(), &bytes[..]);
        let sec = mb.section(256, 3);
        // The section outlives the ModelBytes handle: the keepalive Arc
        // holds the mapping.
        drop(mb);
        assert_eq!(&*sec, &[7, 8, 9]);
    }

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn map_rejects_changed_length() {
        let path = tmp("shrunk.bin");
        std::fs::write(&path, vec![0u8; 512]).unwrap();
        let err = ModelBytes::map_file(&path, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
