//! The hide-split evaluation protocol of §6 (Table 1 discussion).
//!
//! 43Things activities record *everything* a user did for their goals, so
//! before evaluating a recommender the paper concatenates the user's
//! implementation actions, shuffles, keeps 30 % as the *known* activity fed
//! to the recommender, and hides the remaining 70 % for evaluation (the Avg
//! TPR study of Fig. 4 checks how many recommended actions fall in the
//! hidden part).

use goalrec_core::{ActionId, Activity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A hide-split of one activity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitActivity {
    /// The visible 30 % — the recommender's input.
    pub visible: Activity,
    /// The hidden 70 % — ground truth for TPR-style metrics, as a sorted
    /// action set.
    pub hidden: Vec<ActionId>,
}

impl SplitActivity {
    /// Whether `a` is in the hidden part.
    pub fn is_hidden(&self, a: ActionId) -> bool {
        self.hidden.binary_search(&a).is_ok()
    }
}

/// Splits one activity: shuffle, keep `ceil(visible_fraction · n)` actions
/// visible (at least one for non-empty input), hide the rest.
pub fn hide_split(full: &Activity, visible_fraction: f64, rng: &mut StdRng) -> SplitActivity {
    assert!(
        (0.0..=1.0).contains(&visible_fraction),
        "fraction must be in [0, 1]"
    );
    let mut ids: Vec<u32> = full.raw().to_vec();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let n_visible = if full.is_empty() {
        0
    } else {
        ((full.len() as f64 * visible_fraction).ceil() as usize).clamp(1, full.len())
    };
    let visible = Activity::from_raw(ids[..n_visible].iter().copied());
    let mut hidden: Vec<ActionId> = ids[n_visible..].iter().map(|&a| ActionId::new(a)).collect();
    hidden.sort_unstable();
    SplitActivity { visible, hidden }
}

/// Splits a batch of activities with a single seed, deterministically.
pub fn hide_split_all(
    activities: &[Activity],
    visible_fraction: f64,
    seed: u64,
) -> Vec<SplitActivity> {
    let mut rng = StdRng::seed_from_u64(seed);
    activities
        .iter()
        .map(|h| hide_split(h, visible_fraction, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn partition_is_exact() {
        let full = Activity::from_raw(0..20u32);
        let split = hide_split(&full, 0.3, &mut rng());
        assert_eq!(split.visible.len(), 6); // ceil(20 × 0.3)
        assert_eq!(split.hidden.len(), 14);
        // Union restores the original set; intersection is empty.
        let mut all: Vec<u32> = split.visible.raw().to_vec();
        all.extend(split.hidden.iter().map(|a| a.raw()));
        all.sort_unstable();
        assert_eq!(all, (0..20u32).collect::<Vec<_>>());
    }

    #[test]
    fn small_activities_keep_at_least_one_visible() {
        let full = Activity::from_raw([7u32]);
        let split = hide_split(&full, 0.3, &mut rng());
        assert_eq!(split.visible.len(), 1);
        assert!(split.hidden.is_empty());
    }

    #[test]
    fn empty_activity_splits_to_empty() {
        let split = hide_split(&Activity::new(), 0.3, &mut rng());
        assert!(split.visible.is_empty());
        assert!(split.hidden.is_empty());
    }

    #[test]
    fn extreme_fractions() {
        let full = Activity::from_raw(0..10u32);
        let all_visible = hide_split(&full, 1.0, &mut rng());
        assert_eq!(all_visible.visible.len(), 10);
        let minimal = hide_split(&full, 0.0, &mut rng());
        assert_eq!(minimal.visible.len(), 1); // clamped to ≥1
        assert_eq!(minimal.hidden.len(), 9);
    }

    #[test]
    fn is_hidden_lookup() {
        let full = Activity::from_raw(0..10u32);
        let split = hide_split(&full, 0.3, &mut rng());
        for a in &split.hidden {
            assert!(split.is_hidden(*a));
        }
        for a in split.visible.iter() {
            assert!(!split.is_hidden(a));
        }
    }

    #[test]
    fn batch_split_is_deterministic() {
        let acts: Vec<Activity> = (0..30).map(|i| Activity::from_raw(i..i + 12)).collect();
        assert_eq!(hide_split_all(&acts, 0.3, 5), hide_split_all(&acts, 0.3, 5));
        assert_ne!(hide_split_all(&acts, 0.3, 5), hide_split_all(&acts, 0.3, 6));
    }

    proptest! {
        #[test]
        fn prop_split_partitions_input(
            ids in proptest::collection::btree_set(0u32..500, 0..60),
            frac in 0.0f64..1.0,
            seed in 0u64..100
        ) {
            let full = Activity::from_raw(ids.iter().copied());
            let mut r = StdRng::seed_from_u64(seed);
            let split = hide_split(&full, frac, &mut r);
            prop_assert_eq!(split.visible.len() + split.hidden.len(), full.len());
            for a in split.visible.iter() {
                prop_assert!(full.contains(a));
                prop_assert!(!split.is_hidden(a));
            }
            for &a in &split.hidden {
                prop_assert!(full.contains(a));
            }
        }
    }
}
