//! Append-ahead log for live library mutation.
//!
//! The server admits live appends into an in-memory delta segment overlaid
//! on the compiled base model (see `goalrec_core::DeltaSegment`). The delta
//! only becomes durable when a background compaction merges it into a fresh
//! library file — so between admission and compaction, accepted appends
//! exist nowhere on disk. This module closes that window: every accepted
//! batch is written to a sidecar WAL *before* the append is acknowledged,
//! and on boot the WAL is replayed into the delta so a crash loses nothing
//! that was acknowledged. A successful compaction folds the delta into the
//! library file itself and [clears](AppendWal::clear) the WAL.
//!
//! The log is plain JSONL — one `{"goal": g, "actions": [a, ...]}` record
//! per accepted implementation, the same schema as the library file — so it
//! is inspectable with standard tools and parsed by the same field-naming
//! validator ([`crate::io::parse_implementation_line`]) as every other
//! ingest path.
//!
//! Crash-model notes:
//!
//! * [`AppendWal::append_batch`] appends through the fault-injection layer
//!   and fsyncs once per batch — an acknowledged batch is on disk.
//! * A crash *mid-write* can leave a torn final record. [`AppendWal::replay`]
//!   tolerates exactly that: an unparseable record is accepted as a torn
//!   tail only if nothing but whitespace follows it; garbage in the middle
//!   of the log is real corruption and is reported as an error naming the
//!   line and offending field.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::io::parse_implementation_line;

/// One replayed WAL record: a goal id and the actions of the accepted
/// implementation.
pub type WalEntry = (u32, Vec<u32>);

/// A sidecar append-ahead log for one library file.
#[derive(Debug, Clone)]
pub struct AppendWal {
    path: PathBuf,
}

impl AppendWal {
    /// The WAL for `library`: a sibling file named `<file>.wal`, in the
    /// same directory so it shares the library's filesystem and survives
    /// with it.
    pub fn for_library(library: &Path) -> Self {
        let mut name = library
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "library".to_owned());
        name.push_str(".wal");
        let path = match library.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.join(name),
            _ => PathBuf::from(name),
        };
        Self { path }
    }

    /// A WAL at an explicit path (tests, tooling).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the log file currently exists (i.e. there may be
    /// un-compacted appends to replay).
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Durably appends a batch of accepted implementations: one JSONL
    /// record per entry, flushed and fsynced before returning, through the
    /// fault-injection layer (plans match the WAL path). On error the tail
    /// of the log may be torn, which [`AppendWal::replay`] tolerates; fully
    /// written earlier records are never disturbed.
    pub fn append_batch(&self, entries: &[WalEntry]) -> io::Result<()> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut w = BufWriter::new(goalrec_faults::write_wrap(&self.path, file));
        for (goal, actions) in entries {
            write!(w, "{{\"goal\":{goal},\"actions\":[")?;
            for (i, a) in actions.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{a}")?;
            }
            w.write_all(b"]}\n")?;
        }
        w.flush()?;
        // Durability point: the acknowledgement to the client is only
        // honest once the records are on disk.
        w.get_ref().get_ref().sync_all()
    }

    /// Replays the log into the list of accepted implementations, in
    /// append order. A missing file is an empty log. A torn final record
    /// (crash mid-append) is dropped silently; an unparseable record with
    /// real records after it is corruption, reported with the 1-based line
    /// number and the offending field.
    pub fn replay(&self) -> io::Result<Vec<WalEntry>> {
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let reader = BufReader::new(goalrec_faults::read_wrap(&self.path, file));
        let lines: Vec<String> = reader.lines().collect::<io::Result<_>>()?;
        let mut entries = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_implementation_line(line) {
                Ok(entry) => entries.push(entry),
                Err(detail) => {
                    let tail = lines[idx + 1..].iter().all(|l| l.trim().is_empty());
                    if tail {
                        // Torn final record from a crash mid-append: the
                        // batch it belonged to was never acknowledged.
                        break;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}:{}: {detail}", self.path.display(), idx + 1),
                    ));
                }
            }
        }
        Ok(entries)
    }

    /// Removes the log after a successful compaction has folded its
    /// records into the library file. A missing log is not an error.
    // goalrec-lint:allow(hot-path-alloc): compaction-side WAL truncation; name-aliases with the buffer `clear()` calls on the request read path
    pub fn clear(&self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_faults::{with_plan, FaultPlan};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("goalrec-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sibling_path_and_roundtrip() {
        let lib = tmp("lib.jsonl");
        let wal = AppendWal::for_library(&lib);
        assert_eq!(wal.path(), tmp("lib.jsonl.wal"));
        wal.clear().unwrap();
        assert!(!wal.exists());
        assert!(wal.replay().unwrap().is_empty(), "missing file is empty");

        wal.append_batch(&[(3, vec![1, 2]), (0, vec![7])]).unwrap();
        wal.append_batch(&[(5, vec![9])]).unwrap();
        assert!(wal.exists());
        assert_eq!(
            wal.replay().unwrap(),
            vec![(3, vec![1, 2]), (0, vec![7]), (5, vec![9])]
        );

        wal.clear().unwrap();
        assert!(!wal.exists());
        wal.clear().unwrap(); // idempotent
    }

    #[test]
    fn torn_tail_is_dropped_but_mid_file_corruption_errors() {
        let wal = AppendWal::at(tmp("torn.wal"));
        wal.clear().unwrap();
        wal.append_batch(&[(1, vec![2])]).unwrap();
        // Simulate a crash mid-append: a torn final record.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(wal.path()).unwrap();
            f.write_all(b"{\"goal\":9,\"ac").unwrap();
        }
        assert_eq!(wal.replay().unwrap(), vec![(1, vec![2])]);

        // Garbage *between* records is corruption, not a torn tail.
        let wal = AppendWal::at(tmp("corrupt.wal"));
        std::fs::write(
            wal.path(),
            "{\"goal\":1,\"actions\":[2]}\n{\"goal\":\"x\",\"actions\":[2]}\n{\"goal\":3,\"actions\":[4]}\n",
        )
        .unwrap();
        let err = wal.replay().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":2:"), "{err}");
        assert!(err.to_string().contains("field `goal`"), "{err}");
    }

    #[test]
    fn faults_cover_both_sides_of_the_wal() {
        let wal = AppendWal::at(tmp("faulty.wal"));
        wal.clear().unwrap();
        let plan = FaultPlan::parse("path=faulty.wal;write-error@op=1").unwrap();
        let err = with_plan(plan, || wal.append_batch(&[(1, vec![2])])).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");

        wal.clear().unwrap();
        wal.append_batch(&[(1, vec![2])]).unwrap();
        let plan = FaultPlan::parse("path=faulty.wal;read-error@op=1").unwrap();
        let err = with_plan(plan, || wal.replay()).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        wal.clear().unwrap();
    }
}
