//! Zipf-distributed sampling.
//!
//! Item popularity in both of the paper's domains is heavily skewed: a few
//! staple ingredients appear in a large share of recipes, and a few everyday
//! actions serve many life goals, while the tail is rare. The generators use
//! a classic Zipf(s) sampler over ranks `1..=n` built on an inverse-CDF
//! table, which makes sampling `O(log n)` and exactly reproducible from the
//! seed.

use rand::Rng;

/// A Zipf distribution over `0..n` (rank 0 is the most popular item).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` items and exponent `s ≥ 0`.
    /// `s = 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point leaving the last entry below 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Samples `k` *distinct* ranks. Falls back to enumerating the support
    /// when `k` approaches `n`, so it always terminates.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        let n = self.len();
        assert!(k <= n, "cannot draw {k} distinct items from {n}");
        if k == n {
            return (0..n).collect();
        }
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        // Rejection sampling is fast while the acceptance rate is high;
        // bail to a uniform fill for the (rare) dense case.
        let mut attempts = 0usize;
        let max_attempts = 20 * k + 100;
        while out.len() < k && attempts < max_attempts {
            attempts += 1;
            let r = self.sample(rng);
            if chosen.insert(r) {
                out.push(r);
            }
        }
        while out.len() < k {
            let r = rng.gen_range(0..n);
            if chosen.insert(r) {
                out.push(r);
            }
        }
        out
    }
}

/// Samples an integer from a discrete distribution given by `weights`.
/// Linear scan — intended for small supports such as cart-count or
/// goal-count distributions.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut u: f64 = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[70]);
        // Rank 0 of Zipf(1.1) over 100 items should take a large share.
        assert!(counts[0] > 15_000, "rank 0 got {}", counts[0]);
    }

    #[test]
    fn samples_within_bounds() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sample_distinct_yields_unique_items() {
        let z = Zipf::new(30, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for k in [0, 1, 5, 29, 30] {
            let got = z.sample_distinct(&mut rng, k);
            assert_eq!(got.len(), k);
            let mut dedup = got.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), k);
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn sample_distinct_rejects_oversized_k() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        z.sample_distinct(&mut rng, 4);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.05);
    }

    #[test]
    fn len_accessors() {
        let z = Zipf::new(9, 1.0);
        assert_eq!(z.len(), 9);
        assert!(!z.is_empty());
    }
}
