//! Chaos tests for dataset persistence: every writer must be crash-safe
//! under injected torn writes and IO errors, and every reader must turn
//! injected faults into errors — never panics, never a half-read library
//! accepted as whole.
//!
//! Fault plans are process-global, so every test takes the `GATE` mutex
//! and scopes its plan with a path filter unique to its own files.

use goalrec_core::{GoalLibrary, LibraryBuilder};
use goalrec_datasets::binary::{read_library_binary, write_library_binary};
use goalrec_datasets::io::{read_library_auto, write_library_jsonl};
use goalrec_faults::{with_plan, FaultPlan};
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("goalrec-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn library_a() -> GoalLibrary {
    let mut b = LibraryBuilder::new();
    b.add_impl("salad", ["potatoes", "carrots", "pickles"])
        .unwrap();
    b.add_impl("mash", ["potatoes", "butter"]).unwrap();
    b.add_impl("soup", ["peas", "carrots", "onion"]).unwrap();
    b.build().unwrap()
}

/// A different library, so "the old file survived" is distinguishable
/// from "the new write half-succeeded".
fn library_b() -> GoalLibrary {
    let mut b = LibraryBuilder::new();
    b.add_impl("omelette", ["eggs", "butter", "chives"])
        .unwrap();
    b.add_impl("custard", ["eggs", "milk", "sugar", "vanilla"])
        .unwrap();
    b.build().unwrap()
}

/// Kill-between-write simulation: a torn write at *every* byte offset of
/// the replacement file must leave the previously persisted library
/// byte-identical at the target path — a reader can never observe a
/// partial file.
#[test]
fn torn_write_at_every_offset_never_corrupts_the_target() {
    let _g = lock();
    let path = tmp("torn-every-offset.grlb");
    write_library_binary(&library_a(), &path).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Size the sweep off a throwaway clean write of the replacement.
    let probe = tmp("torn-probe.grlb");
    write_library_binary(&library_b(), &probe).unwrap();
    let new_len = std::fs::read(&probe).unwrap().len();

    for offset in 0..new_len as u64 {
        let plan =
            FaultPlan::parse(&format!("path=torn-every-offset;torn-write@byte={offset}")).unwrap();
        with_plan(plan, || {
            let err = write_library_binary(&library_b(), &path)
                .expect_err("torn write must fail the writer");
            assert!(err.to_string().contains("torn write"), "{err}");
        });
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good,
            "target corrupted by a tear at byte {offset}"
        );
        // And the surviving file still loads.
        assert_eq!(
            read_library_binary(&path).unwrap().implementations(),
            library_a().implementations()
        );
    }

    // With the chaos over, the replacement goes through.
    write_library_binary(&library_b(), &path).unwrap();
    assert_eq!(
        read_library_binary(&path).unwrap().implementations(),
        library_b().implementations()
    );
}

#[test]
fn write_error_leaves_jsonl_target_untouched() {
    let _g = lock();
    let path = tmp("werr.jsonl");
    write_library_jsonl(&library_a(), &path).unwrap();
    let good = std::fs::read(&path).unwrap();
    let plan = FaultPlan::parse("path=werr;write-error@op=1").unwrap();
    with_plan(plan, || {
        assert!(write_library_jsonl(&library_b(), &path).is_err());
    });
    assert_eq!(std::fs::read(&path).unwrap(), good);
    assert_eq!(
        read_library_auto(&path).unwrap().implementations(),
        library_a().implementations()
    );
}

#[test]
fn injected_read_errors_surface_as_errors_not_panics() {
    let _g = lock();
    let grlb = tmp("rerr.grlb");
    let jsonl = tmp("rerr.jsonl");
    write_library_binary(&library_a(), &grlb).unwrap();
    write_library_jsonl(&library_a(), &jsonl).unwrap();

    for (path, filter) in [(&grlb, "rerr.grlb"), (&jsonl, "rerr.jsonl")] {
        let plan = FaultPlan::parse(&format!("path={filter};read-error@byte=8")).unwrap();
        with_plan(plan, || {
            let err = read_library_auto(path).expect_err("injected read error must surface");
            assert!(err.to_string().contains("injected"), "{err}");
        });
        // One-shot plan consumed per stream; disarmed read works again.
        assert!(read_library_auto(path).is_ok());
    }
}

#[test]
fn short_reads_and_stalls_still_load_correctly() {
    let _g = lock();
    let path = tmp("slow.grlb");
    write_library_binary(&library_a(), &path).unwrap();
    let plan = FaultPlan::parse("path=slow.grlb;short-read@op=1;stall-20ms@op=2").unwrap();
    let t0 = std::time::Instant::now();
    let lib = with_plan(plan, || read_library_auto(&path).unwrap());
    assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
    assert_eq!(lib.implementations(), library_a().implementations());
}

#[test]
fn faulted_binary_read_through_auto_loader_rolls_up_cleanly() {
    let _g = lock();
    let path = tmp("auto-fault.grlb");
    write_library_binary(&library_a(), &path).unwrap();
    // Error in the middle of the impl records: must be an Err, and the
    // next (unfaulted) load must succeed — no sticky state.
    let plan = FaultPlan::parse("path=auto-fault;read-error@op=2").unwrap();
    with_plan(plan, || {
        assert!(read_library_auto(&path).is_err());
    });
    assert!(read_library_auto(&path).is_ok());
}
