//! Property tests for the dataset generators: any reasonable configuration
//! must produce a structurally valid world — the paper-calibrated presets
//! are just two points in that space.

use goalrec_datasets::{hide_split_all, FoodMart, FoodMartConfig, FortyThings, FortyThingsConfig};
use proptest::prelude::*;

fn foodmart_cfg() -> impl Strategy<Value = FoodMartConfig> {
    (
        20usize..80,  // products
        2usize..8,    // subcategories
        20usize..120, // recipes
        5usize..40,   // carts
        2usize..5,    // recipe len min
        0.0f64..0.9,  // cuisine affinity
        0u64..50,     // seed
    )
        .prop_map(
            |(products, subcats, recipes, carts, len_min, affinity, seed)| FoodMartConfig {
                num_products: products,
                num_subcategories: subcats,
                num_classes: 2,
                num_recipes: recipes,
                num_carts: carts,
                max_carts_per_user: 3,
                recipe_len: (len_min, (len_min + 4).min(products)),
                cart_len: (2, 6),
                ingredient_skew: 0.7,
                num_cuisines: 3,
                cuisine_affinity: affinity,
                noise_skew: 1.2,
                alt_impl_probability: 0.2,
                dish_skew: 0.8,
                dishes_per_user: (2, 3),
                dish_coverage: 0.5,
                noise_fraction: 0.3,
                seed,
            },
        )
}

fn fortythree_cfg() -> impl Strategy<Value = FortyThingsConfig> {
    (
        5usize..40,  // goals
        10usize..80, // actions
        1usize..4,   // impls multiplier
        5usize..60,  // users
        1usize..6,   // families
        0u64..50,    // seed
    )
        .prop_map(
            |(goals, actions, mult, users, families, seed)| FortyThingsConfig {
                num_goals: goals,
                num_actions: actions,
                num_impls: goals * mult,
                num_users: users,
                num_families: families.min(goals),
                impl_len: (1, 5),
                family_leak: 0.1,
                goal_count_weights: [5.0, 2.0, 1.0, 1.0],
                many_goals: (4, 5),
                goal_skew: 0.7,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn foodmart_structurally_valid(cfg in foodmart_cfg()) {
        let fm = FoodMart::generate(&cfg);
        prop_assert_eq!(fm.library.len(), cfg.num_recipes);
        prop_assert_eq!(fm.carts.len(), cfg.num_carts);
        prop_assert!(fm.num_users >= 1);
        // Every cart references valid products and is non-empty.
        for cart in &fm.carts {
            prop_assert!(!cart.is_empty());
            prop_assert!(cart.iter().all(|a| a.index() < cfg.num_products));
        }
        // The model always compiles.
        let model = goalrec_core::GoalModel::build(&fm.library).unwrap();
        prop_assert_eq!(model.num_impls(), cfg.num_recipes);
        // Implementation lengths within bounds.
        for imp in fm.library.implementations() {
            prop_assert!(!imp.is_empty() && imp.len() <= cfg.recipe_len.1);
        }
    }

    #[test]
    fn fortythree_structurally_valid(cfg in fortythree_cfg()) {
        let ft = FortyThings::generate(&cfg);
        prop_assert_eq!(ft.library.len(), cfg.num_impls);
        prop_assert_eq!(ft.full_activities.len(), cfg.num_users);
        for (goals, impls) in ft.user_goals.iter().zip(&ft.user_impls) {
            prop_assert!(!goals.is_empty());
            prop_assert_eq!(goals.len(), impls.len());
            for (g, p) in goals.iter().zip(impls) {
                prop_assert_eq!(ft.library.implementations()[p.index()].goal, *g);
            }
        }
        let _ = goalrec_core::GoalModel::build(&ft.library).unwrap();
    }

    #[test]
    fn splits_partition_any_generated_world(cfg in fortythree_cfg(), frac in 0.1f64..0.9) {
        let ft = FortyThings::generate(&cfg);
        let splits = hide_split_all(&ft.full_activities, frac, cfg.seed);
        for (full, split) in ft.full_activities.iter().zip(&splits) {
            prop_assert_eq!(split.visible.len() + split.hidden.len(), full.len());
        }
    }
}
