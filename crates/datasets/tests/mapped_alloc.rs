//! Counting-allocator proof that serving from an mmap-backed GRLB v2
//! model is as allocation-free as serving from a heap-built one.
//!
//! The core suite (`goalrec-core/tests/alloc_counting.rs`) pins the
//! zero-allocation steady state for heap-built models; this is the same
//! measurement against a model whose CSR sections are borrowed views of a
//! live file mapping. Deliberately a single `#[test]` — the counter is
//! process-global.

use goalrec_core::strategies::default_strategies;
use goalrec_core::{Activity, GoalModel, LibraryBuilder, Scratch};
use goalrec_datasets::grlb2;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Same shape as the core alloc test's library: dozens of goals with
/// overlapping action sets, big enough that per-request sloppiness shows.
fn library() -> goalrec_core::GoalLibrary {
    let mut b = LibraryBuilder::new();
    for g in 0..24u32 {
        for v in 0..3u32 {
            let actions: Vec<String> = (0..4u32)
                .map(|i| format!("a{}", (g * 7 + v * 13 + i * 5) % 40))
                .collect();
            let refs: Vec<&str> = actions.iter().map(String::as_str).collect();
            b.add_impl(&format!("g{g}"), refs).unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn steady_state_rank_on_a_mapped_model_performs_zero_heap_allocations() {
    let lib = library();
    let built = GoalModel::build(&lib).unwrap();
    let dir = std::env::temp_dir().join("goalrec-mapped-alloc");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("model-{}.grlb2", std::process::id()));
    grlb2::write_model_v2(&built, &path).unwrap();
    let model = grlb2::read_model_v2(&path).unwrap();
    if goalrec_datasets::mmap::mmap_supported() {
        assert!(model.is_mapped(), "expected an mmap-backed model");
    }

    let activities: Vec<Activity> = vec![
        Activity::from_raw([0]),
        Activity::from_raw([1, 5, 9]),
        Activity::from_raw([2, 3, 17, 30]),
    ];
    let mut scratch = Scratch::new();
    let strategies = default_strategies();

    // Warm-up: two rounds per (strategy, activity) pair size the arena.
    for _ in 0..2 {
        for s in &strategies {
            for h in &activities {
                s.rank_into(&model, h, 10, &mut scratch);
            }
        }
    }

    for s in &strategies {
        for h in &activities {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let n = s.rank_into(&model, h, 10, &mut scratch);
            let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert_eq!(
                delta,
                0,
                "{} allocated {delta} time(s) ranking a mapped model (H={:?})",
                s.name(),
                h
            );
            assert!(n > 0, "{} found no candidates on the mapped model", s.name());
            assert!(!scratch.out().is_empty());
        }
    }

    std::fs::remove_file(&path).ok();
}
