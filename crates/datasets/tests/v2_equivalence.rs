//! GRLB v2 round-trip equivalence.
//!
//! A model written to the v2 format and read back — mapped in place or
//! through the heap fallback — must be observationally identical to the
//! heap-built original: every §4 space operator and every strategy's full
//! ranking (scores included) must match bit for bit, under both the
//! allocating and the arena-based entry points. This is the property that
//! makes `goalrec compile` + mmap serving a pure performance change.

use goalrec_core::strategies::default_strategies;
use goalrec_core::{ActionId, Activity, GoalId, GoalLibrary, GoalModel, Scratch};
use goalrec_datasets::{grlb2, mmap};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const MAX_ACTIONS: u32 = 18;
const MAX_GOALS: u32 = 7;

/// Same generator family as core's `csr_equivalence` suite: small dense
/// id spaces so goal/action collisions (the interesting cases) are common.
fn library_and_activity() -> impl Strategy<Value = (GoalLibrary, Activity)> {
    (
        proptest::collection::vec(
            (
                0..MAX_GOALS,
                proptest::collection::btree_set(0..MAX_ACTIONS, 1..6),
            ),
            1..25,
        ),
        proptest::collection::btree_set(0..MAX_ACTIONS, 0..7),
    )
        .prop_map(|(impls, h)| {
            let lib = GoalLibrary::from_id_implementations(
                MAX_ACTIONS,
                MAX_GOALS,
                impls
                    .into_iter()
                    .map(|(g, acts)| {
                        (
                            GoalId::new(g),
                            acts.into_iter().map(ActionId::new).collect(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
            (lib, Activity::from_raw(h))
        })
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_model_path() -> PathBuf {
    let dir = std::env::temp_dir().join("goalrec-v2-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "case-{}-{}.grlb2",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// write → read (mapped AND heap-fallback) → rank is bit-identical to
    /// the heap-built model for every strategy, every score, every rank.
    #[test]
    fn v2_roundtrip_ranks_bit_identically(
        (lib, h) in library_and_activity(),
        k in 0usize..12,
    ) {
        let built = GoalModel::build(&lib).unwrap();
        let path = tmp_model_path();
        grlb2::write_model_v2(&built, &path).unwrap();
        let mapped = grlb2::read_model_v2(&path).unwrap();
        let heap = grlb2::read_model_v2_heap(&path).unwrap();
        // Both readers hand out borrowed section views (the heap fallback
        // borrows one shared word buffer), so `is_mapped` is true either
        // way; what distinguishes them is only where the bytes live.
        if mmap::mmap_supported() {
            prop_assert!(mapped.is_mapped(), "expected an mmap-backed model");
        }

        let raw = h.raw();
        let mut scratch = Scratch::new();
        for reread in [&mapped, &heap] {
            prop_assert_eq!(reread.num_impls(), built.num_impls());
            prop_assert_eq!(
                reread.implementation_space(raw),
                built.implementation_space(raw)
            );
            prop_assert_eq!(reread.goal_space(raw), built.goal_space(raw));
            prop_assert_eq!(reread.action_space(raw), built.action_space(raw));
            for s in default_strategies() {
                let expect = s.rank(&built, &h, k);
                let got = s.rank(reread, &h, k);
                prop_assert_eq!(&got, &expect, "{} k={}", s.name(), k);
                s.rank_into(reread, &h, k, &mut scratch);
                prop_assert_eq!(scratch.out(), &expect[..], "{} rank_into", s.name());
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
