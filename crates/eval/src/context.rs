//! The shared experimental setup of §6: datasets, trained methods, and
//! precomputed recommendation lists.
//!
//! Every table and figure of the paper aggregates the same underlying
//! artefact — the top-k lists each method produces for each input
//! activity. [`EvalContext::build`] materialises those lists once (the
//! expensive step, parallelised over inputs), and the per-experiment
//! modules reduce them into the published statistics.

use goalrec_baselines::{
    AlsConfig, AlsWr, Apriori, AprioriConfig, CfKnn, ContentBased, ItemFeatures, Popularity,
    TrainingSet,
};
use goalrec_core::{
    batch::recommend_batch_actions, ActionId, Activity, GoalModel, GoalRecommender, Recommender,
};
use goalrec_datasets::{
    hide_split_all, FoodMart, FoodMartConfig, FortyThings, FortyThingsConfig, SplitActivity,
};
use std::sync::Arc;

/// Canonical method names, in the order the paper's tables list them.
pub mod method {
    /// Best Match (§5.3).
    pub const BEST_MATCH: &str = "BestMatch";
    /// Focus with the completeness measure (§5.1).
    pub const FOCUS_CMP: &str = "Focus_cmp";
    /// Focus with the closeness measure (§5.1).
    pub const FOCUS_CL: &str = "Focus_cl";
    /// Breadth (§5.2).
    pub const BREADTH: &str = "Breadth";
    /// Content-based filtering.
    pub const CONTENT: &str = "Content";
    /// Collaborative filtering, user kNN.
    pub const CF_KNN: &str = "CF-kNN";
    /// Collaborative filtering, ALS-WR matrix factorisation.
    pub const CF_MF: &str = "CF-MF";
    /// Association rules (§2 comparator).
    pub const APRIORI: &str = "Apriori";
    /// Popularity reference.
    pub const POPULARITY: &str = "Popularity";

    /// The four goal-based mechanisms.
    pub const GOAL_BASED: [&str; 4] = [BEST_MATCH, FOCUS_CMP, FOCUS_CL, BREADTH];
}

/// Configuration of one full evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// FoodMart generator parameters.
    pub foodmart: FoodMartConfig,
    /// 43Things generator parameters.
    pub fortythree: FortyThingsConfig,
    /// Recommendation list length (the paper reports top-10, with top-5
    /// prefixes for Fig. 4).
    pub k: usize,
    /// Cap on the number of FoodMart input carts (None = all).
    pub max_foodmart_inputs: Option<usize>,
    /// Cap on the number of 43Things input users (None = all).
    pub max_fortythree_inputs: Option<usize>,
    /// CF-kNN neighbourhood size.
    pub knn_neighbourhood: usize,
    /// ALS-WR hyper-parameters.
    pub als: AlsConfig,
    /// Apriori mining parameters.
    pub apriori: AprioriConfig,
    /// Visible fraction for the 43Things hide split (paper: 0.3).
    pub visible_fraction: f64,
    /// Seed for the hide split.
    pub split_seed: u64,
}

impl EvalConfig {
    /// Full paper-scale run (minutes, release build).
    pub fn paper_scale() -> Self {
        Self {
            foodmart: FoodMartConfig::paper_scale(),
            fortythree: FortyThingsConfig::paper_scale(),
            k: 10,
            max_foodmart_inputs: None,
            max_fortythree_inputs: None,
            knn_neighbourhood: 50,
            als: AlsConfig::default(),
            apriori: AprioriConfig {
                min_support: 20,
                min_confidence: 0.2,
                max_itemset_size: 3,
            },
            visible_fraction: 0.3,
            split_seed: 0x5EED,
        }
    }

    /// Large run: the 43Things side at **full paper scale** and FoodMart
    /// at 1/4 scale with 5 000 input carts — the biggest configuration
    /// that completes in minutes on a single core. (`paper_scale` is exact
    /// but its Best Match pass over 20 500 carts at connectivity ≈1.2k
    /// wants a many-core machine.)
    pub fn large_scale() -> Self {
        let mut cfg = Self::paper_scale();
        cfg.foodmart = FoodMartConfig::paper_scale().with_scale(0.25);
        cfg.max_foodmart_inputs = Some(5_000);
        cfg.max_fortythree_inputs = None; // all 8 071 users
        cfg.apriori.min_support = 10;
        cfg
    }

    /// Reduced-scale run with the paper's shape (seconds, release build).
    /// Default for the `repro` harness.
    pub fn medium_scale() -> Self {
        let mut cfg = Self::paper_scale();
        cfg.foodmart = FoodMartConfig::paper_scale().with_scale(0.1);
        cfg.fortythree = FortyThingsConfig {
            num_goals: 800,
            num_actions: 1_200,
            num_impls: 3_800,
            num_users: 1_600,
            num_families: 90,
            ..FortyThingsConfig::paper_scale()
        };
        cfg.max_foodmart_inputs = Some(1_500);
        cfg.max_fortythree_inputs = Some(1_600);
        cfg.apriori.min_support = 8;
        cfg
    }

    /// Miniature run for unit tests (sub-second, debug build).
    pub fn test_scale() -> Self {
        Self {
            foodmart: FoodMartConfig::test_scale(),
            fortythree: FortyThingsConfig::test_scale(),
            k: 10,
            max_foodmart_inputs: Some(60),
            max_fortythree_inputs: Some(80),
            knn_neighbourhood: 10,
            als: AlsConfig {
                num_factors: 8,
                num_iterations: 4,
                ..AlsConfig::default()
            },
            apriori: AprioriConfig {
                min_support: 3,
                min_confidence: 0.2,
                max_itemset_size: 2,
            },
            visible_fraction: 0.3,
            split_seed: 0x5EED,
        }
    }
}

/// One method's precomputed lists: `lists[i]` is the top-k for input `i`.
#[derive(Debug, Clone)]
pub struct MethodLists {
    /// Canonical method name (see [`method`]).
    pub name: String,
    /// Whether this is one of the four goal-based mechanisms.
    pub goal_based: bool,
    /// The top-k lists, parallel to the bundle's inputs.
    pub lists: Vec<Vec<ActionId>>,
}

/// Everything the FoodMart-side experiments consume.
pub struct FoodmartEval {
    /// The generated dataset.
    pub data: FoodMart,
    /// The compiled goal model over the recipe library.
    pub model: Arc<GoalModel>,
    /// Input activities (sampled carts).
    pub inputs: Vec<Activity>,
    /// Index of each input in `data.carts`.
    pub input_carts: Vec<usize>,
    /// Per-input ground truth: actions in the *other* carts of the same
    /// user (sorted), for the Fig. 4 TPR study.
    pub other_cart_actions: Vec<Vec<ActionId>>,
    /// Product domain features.
    pub features: ItemFeatures,
    /// Selection counts per action over all carts (Table 3 popularity).
    pub activity_counts: Vec<u32>,
    /// Precomputed lists per method.
    pub methods: Vec<MethodLists>,
}

/// Everything the 43Things-side experiments consume.
pub struct FortyThreeEval {
    /// The generated dataset.
    pub data: FortyThings,
    /// The compiled goal model over the implementation library.
    pub model: Arc<GoalModel>,
    /// Hide splits of the sampled users' full activities.
    pub splits: Vec<SplitActivity>,
    /// Index of each input in `data.full_activities`.
    pub input_users: Vec<usize>,
    /// Visible activities (the recommender inputs), parallel to `splits`.
    pub inputs: Vec<Activity>,
    /// Selection counts per action over all full activities.
    pub activity_counts: Vec<u32>,
    /// Precomputed lists per method (no Content: the paper notes the
    /// dataset has no accepted domain features).
    pub methods: Vec<MethodLists>,
}

/// The full §6 setup.
pub struct EvalContext {
    /// Evaluation configuration used to build this context.
    pub cfg: EvalConfig,
    /// FoodMart side.
    pub foodmart: FoodmartEval,
    /// 43Things side.
    pub fortythree: FortyThreeEval,
}

impl EvalContext {
    /// Generates both datasets, trains every method, and precomputes all
    /// recommendation lists.
    pub fn build(cfg: EvalConfig) -> Self {
        let _span = goalrec_obs::Timer::scoped(goalrec_obs::names::EVAL_CONTEXT_BUILD);
        let foodmart = {
            let _span = goalrec_obs::Timer::scoped(goalrec_obs::names::EVAL_CONTEXT_FOODMART);
            build_foodmart(&cfg)
        };
        let fortythree = {
            let _span = goalrec_obs::Timer::scoped(goalrec_obs::names::EVAL_CONTEXT_FORTYTHREE);
            build_fortythree(&cfg)
        };
        Self {
            cfg,
            foodmart,
            fortythree,
        }
    }
}

impl FoodmartEval {
    /// Lists of one method by canonical name.
    pub fn lists(&self, name: &str) -> Option<&[Vec<ActionId>]> {
        self.methods
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.lists.as_slice())
    }
}

impl FortyThreeEval {
    /// Lists of one method by canonical name.
    pub fn lists(&self, name: &str) -> Option<&[Vec<ActionId>]> {
        self.methods
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.lists.as_slice())
    }
}

fn build_foodmart(cfg: &EvalConfig) -> FoodmartEval {
    let data = FoodMart::generate(&cfg.foodmart);
    // goalrec-lint:allow(no-panic-paths): generated eval libraries are never empty, and the context builder has no error channel
    let model = Arc::new(GoalModel::build(&data.library).expect("non-empty library"));

    let n_inputs = cfg
        .max_foodmart_inputs
        .unwrap_or(data.carts.len())
        .min(data.carts.len());
    let input_carts: Vec<usize> = (0..n_inputs).collect();
    let inputs: Vec<Activity> = input_carts.iter().map(|&i| data.carts[i].clone()).collect();

    // Ground truth for TPR: the user's other carts.
    let user_carts = data.user_carts();
    let other_cart_actions: Vec<Vec<ActionId>> = input_carts
        .iter()
        .map(|&cart| {
            let user = data.cart_user[cart] as usize;
            let mut ids: Vec<u32> = Vec::new();
            for &other in &user_carts[user] {
                if other != cart {
                    ids.extend_from_slice(data.carts[other].raw());
                }
            }
            goalrec_core::setops::normalize(&mut ids);
            ids.into_iter().map(ActionId::new).collect()
        })
        .collect();

    let training = TrainingSet::new(data.carts.clone(), data.library.num_actions());
    let activity_counts = training.action_counts();
    let features = ItemFeatures::new(data.product_feature_vectors());

    let mut methods = goal_based_methods(&model, &inputs, cfg.k);
    let standard: Vec<Box<dyn Recommender>> = vec![
        Box::new(ContentBased::new(ItemFeatures::new(
            data.product_feature_vectors(),
        ))),
        Box::new(CfKnn::tanimoto(training.clone(), cfg.knn_neighbourhood)),
        Box::new(AlsWr::train(&training, cfg.als.clone())),
        Box::new(Apriori::mine(&training, &cfg.apriori)),
        Box::new(Popularity::from_training(&training)),
    ];
    for rec in &standard {
        methods.push(MethodLists {
            name: rec.name(),
            goal_based: false,
            lists: recommend_batch_actions(rec.as_ref(), &inputs, cfg.k),
        });
    }

    FoodmartEval {
        data,
        model,
        inputs,
        input_carts,
        other_cart_actions,
        features,
        activity_counts,
        methods,
    }
}

fn build_fortythree(cfg: &EvalConfig) -> FortyThreeEval {
    let data = FortyThings::generate(&cfg.fortythree);
    // goalrec-lint:allow(no-panic-paths): generated eval libraries are never empty, and the context builder has no error channel
    let model = Arc::new(GoalModel::build(&data.library).expect("non-empty library"));

    let n_inputs = cfg
        .max_fortythree_inputs
        .unwrap_or(data.full_activities.len())
        .min(data.full_activities.len());
    let input_users: Vec<usize> = (0..n_inputs).collect();
    let sampled: Vec<Activity> = input_users
        .iter()
        .map(|&u| data.full_activities[u].clone())
        .collect();
    let splits = hide_split_all(&sampled, cfg.visible_fraction, cfg.split_seed);
    let inputs: Vec<Activity> = splits.iter().map(|s| s.visible.clone()).collect();

    // CF baselines train on the *visible* parts of all users (the
    // information a deployed system would actually have).
    let training = TrainingSet::new(
        hide_split_all(&data.full_activities, cfg.visible_fraction, cfg.split_seed)
            .into_iter()
            .map(|s| s.visible)
            .collect(),
        data.library.num_actions(),
    );
    let activity_counts = {
        let full = TrainingSet::new(data.full_activities.clone(), data.library.num_actions());
        full.action_counts()
    };

    let mut methods = goal_based_methods(&model, &inputs, cfg.k);
    let standard: Vec<Box<dyn Recommender>> = vec![
        Box::new(CfKnn::tanimoto(training.clone(), cfg.knn_neighbourhood)),
        Box::new(AlsWr::train(&training, cfg.als.clone())),
        Box::new(Apriori::mine(&training, &cfg.apriori)),
        Box::new(Popularity::from_training(&training)),
    ];
    for rec in &standard {
        methods.push(MethodLists {
            name: rec.name(),
            goal_based: false,
            lists: recommend_batch_actions(rec.as_ref(), &inputs, cfg.k),
        });
    }

    FortyThreeEval {
        data,
        model,
        splits,
        input_users,
        inputs,
        activity_counts,
        methods,
    }
}

fn goal_based_methods(model: &Arc<GoalModel>, inputs: &[Activity], k: usize) -> Vec<MethodLists> {
    GoalRecommender::all_strategies(Arc::clone(model))
        .into_iter()
        .map(|rec| MethodLists {
            name: rec.name(),
            goal_based: true,
            lists: recommend_batch_actions(&rec, inputs, k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EvalContext {
        EvalContext::build(EvalConfig::test_scale())
    }

    #[test]
    fn builds_all_methods_in_canonical_order() {
        let c = ctx();
        let fm_names: Vec<&str> = c.foodmart.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            fm_names,
            vec![
                "BestMatch",
                "Focus_cmp",
                "Focus_cl",
                "Breadth",
                "Content",
                "CF-kNN",
                "CF-MF",
                "Apriori",
                "Popularity"
            ]
        );
        let ft_names: Vec<&str> = c
            .fortythree
            .methods
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert!(!ft_names.contains(&"Content"));
        assert!(ft_names.contains(&"CF-kNN"));
    }

    #[test]
    fn lists_are_parallel_to_inputs_and_capped_at_k() {
        let c = ctx();
        let k = c.cfg.k;
        for m in &c.foodmart.methods {
            assert_eq!(m.lists.len(), c.foodmart.inputs.len());
            assert!(m.lists.iter().all(|l| l.len() <= k));
        }
        for m in &c.fortythree.methods {
            assert_eq!(m.lists.len(), c.fortythree.inputs.len());
            assert!(m.lists.iter().all(|l| l.len() <= k));
        }
    }

    #[test]
    fn goal_based_flags() {
        let c = ctx();
        for m in &c.foodmart.methods {
            assert_eq!(m.goal_based, method::GOAL_BASED.contains(&m.name.as_str()));
        }
    }

    #[test]
    fn recommendations_exclude_inputs() {
        let c = ctx();
        for m in &c.foodmart.methods {
            for (h, list) in c.foodmart.inputs.iter().zip(&m.lists) {
                for a in list {
                    assert!(!h.contains(*a), "{} recommended a performed action", m.name);
                }
            }
        }
    }

    #[test]
    fn fortythree_truth_is_disjoint_from_input() {
        let c = ctx();
        for (input, split) in c.fortythree.inputs.iter().zip(&c.fortythree.splits) {
            for a in &split.hidden {
                assert!(!input.contains(*a));
            }
        }
    }

    #[test]
    fn lists_lookup_by_name() {
        let c = ctx();
        assert!(c.foodmart.lists(method::BREADTH).is_some());
        assert!(c.foodmart.lists("NoSuchMethod").is_none());
        assert!(c.fortythree.lists(method::CF_KNN).is_some());
    }

    #[test]
    fn goal_based_lists_are_mostly_nonempty() {
        let c = ctx();
        for m in c.foodmart.methods.iter().filter(|m| m.goal_based) {
            let nonempty = m.lists.iter().filter(|l| !l.is_empty()).count();
            assert!(
                nonempty * 10 >= m.lists.len() * 9,
                "{} produced too many empty lists",
                m.name
            );
        }
    }
}
