//! Ablation: the Best Match distance metric (DESIGN.md §7).
//!
//! Eq. 10 leaves the distance metric open ("a standard metric"). This
//! experiment swaps cosine for Euclidean and Manhattan and reports how the
//! lists shift (overlap with the cosine lists) and whether usefulness
//! moves — quantifying how sensitive the strategy is to that choice.

use crate::context::EvalContext;
use crate::metrics::completeness::usefulness;
use crate::metrics::overlap::mean_overlap;
use crate::report::{f3, pct, TextTable};
use goalrec_core::{batch::recommend_batch_actions, BestMatch, DistanceMetric, GoalRecommender};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One metric's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Metric name.
    pub metric: String,
    /// Mean overlap of this metric's lists with the cosine lists.
    pub overlap_with_cosine: f64,
    /// Usefulness (AvgAvg goal completeness) on the FoodMart inputs.
    pub usefulness_avg: f64,
}

/// Full ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceAblation {
    /// One row per metric, cosine first.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablation on the FoodMart bundle.
pub fn run(ctx: &EvalContext) -> DistanceAblation {
    let fm = &ctx.foodmart;
    let goals: Vec<Vec<u32>> = fm
        .inputs
        .iter()
        .map(|h| fm.model.goal_space(h.raw()))
        .collect();

    let lists_for = |metric: DistanceMetric| {
        let rec = GoalRecommender::new(Arc::clone(&fm.model), Box::new(BestMatch::new(metric)));
        recommend_batch_actions(&rec, &fm.inputs, ctx.cfg.k)
    };

    let cosine_lists = lists_for(DistanceMetric::Cosine);
    let rows = DistanceMetric::ALL
        .iter()
        .map(|&metric| {
            let lists = if metric == DistanceMetric::Cosine {
                cosine_lists.clone()
            } else {
                lists_for(metric)
            };
            AblationRow {
                metric: metric.name().to_owned(),
                overlap_with_cosine: mean_overlap(&lists, &cosine_lists),
                usefulness_avg: usefulness(&fm.model, &fm.inputs, &lists, &goals).avg_avg,
            }
        })
        .collect();
    DistanceAblation { rows }
}

impl fmt::Display for DistanceAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Ablation (FoodMart): Best Match distance metric",
            &["Metric", "Overlap with cosine", "Usefulness AvgAvg"],
        );
        for row in &self.rows {
            t.row(vec![
                row.metric.clone(),
                pct(row.overlap_with_cosine),
                f3(row.usefulness_avg),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalConfig;

    #[test]
    fn cosine_row_is_the_identity() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let ab = run(&ctx);
        assert_eq!(ab.rows.len(), 3);
        assert_eq!(ab.rows[0].metric, "cosine");
        assert!((ab.rows[0].overlap_with_cosine - 1.0).abs() < 1e-12);
        for row in &ab.rows {
            assert!((0.0..=1.0).contains(&row.overlap_with_cosine));
            assert!((0.0..=1.0).contains(&row.usefulness_avg));
        }
        assert!(ab.to_string().contains("Ablation"));
    }
}
