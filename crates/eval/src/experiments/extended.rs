//! Extended (beyond-the-paper) evaluation: beyond-accuracy metrics and
//! standard ranking metrics for every method on both datasets.
//!
//! §2 positions goal-based recommendation against heuristic
//! novelty/diversity/serendipity work; this experiment quantifies those
//! qualities directly, alongside NDCG/precision/recall on the hidden-70 %
//! ground truth, giving downstream users the full modern scorecard the
//! original evaluation predates.

use crate::context::{method, EvalContext};
use crate::metrics::novelty::{catalogue_coverage, intra_list_diversity, novelty, serendipity};
use crate::metrics::ranking;
use crate::report::{f3, pct, TextTable};
use goalrec_core::ActionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One method's extended scorecard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedRow {
    /// Method name.
    pub method: String,
    /// Mean self-information of recommended actions (bits).
    pub novelty: f64,
    /// Intra-list diversity (FoodMart only — needs features); None on 43T.
    pub diversity: Option<f64>,
    /// Fraction of the catalogue ever recommended.
    pub coverage: f64,
    /// Relevant-and-unexpected fraction vs the popularity primer.
    pub serendipity: f64,
    /// NDCG@10 against the ground truth.
    pub ndcg10: f64,
    /// Precision@10.
    pub precision10: f64,
    /// Recall@10.
    pub recall10: f64,
}

/// Extended scorecard for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedDataset {
    /// Dataset label.
    pub dataset: String,
    /// One row per method.
    pub rows: Vec<ExtendedRow>,
}

/// Full extended-evaluation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Extended {
    /// Per-dataset scorecards.
    pub datasets: Vec<ExtendedDataset>,
}

fn dataset_rows(
    methods: &[crate::context::MethodLists],
    truths: &[Vec<ActionId>],
    activity_counts: &[u32],
    num_users: usize,
    num_actions: usize,
    features: Option<&goalrec_baselines::ItemFeatures>,
) -> Vec<ExtendedRow> {
    let primitive = methods
        .iter()
        .find(|m| m.name == method::POPULARITY)
        .map(|m| m.lists.clone())
        .unwrap_or_else(|| vec![Vec::new(); truths.len()]);
    methods
        .iter()
        .map(|m| ExtendedRow {
            method: m.name.clone(),
            novelty: novelty(&m.lists, activity_counts, num_users),
            diversity: features.map(|f| intra_list_diversity(f, &m.lists)),
            coverage: catalogue_coverage(&m.lists, num_actions),
            serendipity: serendipity(&m.lists, &primitive, truths),
            ndcg10: ranking::mean_over_queries(&m.lists, truths, |l, t| {
                ranking::ndcg_at_k(l, t, 10)
            }),
            precision10: ranking::mean_over_queries(&m.lists, truths, |l, t| {
                ranking::precision_at_k(l, t, 10)
            }),
            recall10: ranking::mean_over_queries(&m.lists, truths, |l, t| {
                ranking::recall_at_k(l, t, 10)
            }),
        })
        .collect()
}

/// Runs the extended evaluation on both datasets.
pub fn run(ctx: &EvalContext) -> Extended {
    let fm = &ctx.foodmart;
    let fm_rows = dataset_rows(
        &fm.methods,
        &fm.other_cart_actions,
        &fm.activity_counts,
        fm.data.carts.len(),
        fm.model.num_actions(),
        Some(&fm.features),
    );

    let ft = &ctx.fortythree;
    let ft_truths: Vec<Vec<ActionId>> = ft.splits.iter().map(|s| s.hidden.clone()).collect();
    let ft_rows = dataset_rows(
        &ft.methods,
        &ft_truths,
        &ft.activity_counts,
        ft.data.full_activities.len(),
        ft.model.num_actions(),
        None,
    );

    Extended {
        datasets: vec![
            ExtendedDataset {
                dataset: "FoodMart".into(),
                rows: fm_rows,
            },
            ExtendedDataset {
                dataset: "43Things".into(),
                rows: ft_rows,
            },
        ],
    }
}

impl fmt::Display for Extended {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ds in &self.datasets {
            let mut t = TextTable::new(
                format!(
                    "Extended evaluation ({}): beyond-accuracy + ranking",
                    ds.dataset
                ),
                &[
                    "Method",
                    "Novelty",
                    "ILD",
                    "Coverage",
                    "Serendip.",
                    "NDCG@10",
                    "P@10",
                    "R@10",
                ],
            );
            for row in &ds.rows {
                t.row(vec![
                    row.method.clone(),
                    f3(row.novelty),
                    row.diversity.map_or("-".into(), f3),
                    pct(row.coverage),
                    pct(row.serendipity),
                    f3(row.ndcg10),
                    f3(row.precision10),
                    f3(row.recall10),
                ]);
            }
            writeln!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalConfig;

    #[test]
    fn scorecard_bounds_and_structure() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let ext = run(&ctx);
        assert_eq!(ext.datasets.len(), 2);
        for ds in &ext.datasets {
            for r in &ds.rows {
                assert!(r.novelty >= 0.0, "{}: novelty {}", r.method, r.novelty);
                assert!((0.0..=1.0).contains(&r.coverage));
                assert!((0.0..=1.0).contains(&r.serendipity));
                assert!((0.0..=1.0).contains(&r.ndcg10));
                assert!((0.0..=1.0).contains(&r.precision10));
                assert!((0.0..=1.0).contains(&r.recall10));
                if let Some(d) = r.diversity {
                    assert!((-1e-9..=1.0 + 1e-9).contains(&d));
                }
            }
        }
        // Diversity reported on FoodMart only.
        assert!(ext.datasets[0].rows[0].diversity.is_some());
        assert!(ext.datasets[1].rows[0].diversity.is_none());
        assert!(ext.to_string().contains("Extended evaluation"));
    }

    #[test]
    fn popularity_has_zero_serendipity_and_low_novelty() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let ext = run(&ctx);
        for ds in &ext.datasets {
            let pop = ds
                .rows
                .iter()
                .find(|r| r.method == method::POPULARITY)
                .unwrap();
            assert_eq!(pop.serendipity, 0.0, "{}", ds.dataset);
            let max_novelty = ds.rows.iter().map(|r| r.novelty).fold(0.0, f64::max);
            assert!(pop.novelty <= max_novelty);
        }
    }

    #[test]
    fn content_is_least_diverse_on_foodmart() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let ext = run(&ctx);
        let fm = &ext.datasets[0];
        let content = fm
            .rows
            .iter()
            .find(|r| r.method == method::CONTENT)
            .unwrap()
            .diversity
            .unwrap();
        for m in method::GOAL_BASED {
            let d = fm
                .rows
                .iter()
                .find(|r| r.method == m)
                .unwrap()
                .diversity
                .unwrap();
            assert!(d > content, "{m}: {d} vs content {content}");
        }
    }
}
