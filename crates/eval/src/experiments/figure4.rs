//! Figure 4: Average True Positive Rate of the top-5 and top-10 lists.
//!
//! Ground truth: the hidden 70 % of each 43Things activity; the user's
//! other carts for FoodMart. Since every method ranks a full candidate
//! pool and truncates, the top-5 list is the top-10 prefix.

use crate::context::EvalContext;
use crate::metrics::tpr::avg_tpr;
use crate::report::{pct, BarChart, TextTable};
use goalrec_core::ActionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One method's Avg TPR values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Method name.
    pub method: String,
    /// Avg TPR of the top-5 prefix.
    pub top5: f64,
    /// Avg TPR of the full top-10 list.
    pub top10: f64,
}

/// Figure 4 for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Dataset {
    /// Dataset label.
    pub dataset: String,
    /// One row per method.
    pub rows: Vec<Figure4Row>,
}

/// Full Figure 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4 {
    /// Per-dataset results.
    pub datasets: Vec<Figure4Dataset>,
}

fn rows_for(methods: &[crate::context::MethodLists], truths: &[Vec<ActionId>]) -> Vec<Figure4Row> {
    methods
        .iter()
        .map(|m| {
            let top5: Vec<Vec<ActionId>> = m
                .lists
                .iter()
                .map(|l| l.iter().take(5).copied().collect())
                .collect();
            Figure4Row {
                method: m.name.clone(),
                top5: avg_tpr(&top5, truths),
                top10: avg_tpr(&m.lists, truths),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &EvalContext) -> Figure4 {
    let ft_truth: Vec<Vec<ActionId>> = ctx
        .fortythree
        .splits
        .iter()
        .map(|s| s.hidden.clone())
        .collect();
    Figure4 {
        datasets: vec![
            Figure4Dataset {
                dataset: "FoodMart".into(),
                rows: rows_for(&ctx.foodmart.methods, &ctx.foodmart.other_cart_actions),
            },
            Figure4Dataset {
                dataset: "43Things".into(),
                rows: rows_for(&ctx.fortythree.methods, &ft_truth),
            },
        ],
    }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ds in &self.datasets {
            let mut t = TextTable::new(
                format!("Figure 4 ({}): Avg TPR", ds.dataset),
                &["Method", "Top-5", "Top-10"],
            );
            for row in &ds.rows {
                t.row(vec![row.method.clone(), pct(row.top5), pct(row.top10)]);
            }
            writeln!(f, "{}", t.render())?;
            let mut chart =
                BarChart::new(format!("Figure 4 ({}): Avg TPR, top-10", ds.dataset), 40);
            for row in &ds.rows {
                chart.bar(row.method.clone(), row.top10);
            }
            writeln!(f, "{}", chart.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{method, EvalConfig};

    #[test]
    fn tpr_bounds_and_structure() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let fig = run(&ctx);
        assert_eq!(fig.datasets.len(), 2);
        for ds in &fig.datasets {
            for row in &ds.rows {
                assert!((0.0..=1.0).contains(&row.top5), "{}: {row:?}", ds.dataset);
                assert!((0.0..=1.0).contains(&row.top10));
            }
        }
        assert!(fig.to_string().contains("Figure 4"));
    }

    #[test]
    fn goal_based_recovers_hidden_actions_on_fortythree() {
        // The visible 30% points at the user's goals; the hidden 70% is
        // drawn from the same implementations, so goal-based TPR must be
        // clearly positive.
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let fig = run(&ctx);
        let ft = &fig.datasets[1];
        let cmp = ft
            .rows
            .iter()
            .find(|r| r.method == method::FOCUS_CMP)
            .unwrap();
        assert!(cmp.top10 > 0.1, "Focus_cmp TPR {}", cmp.top10);
    }
}
