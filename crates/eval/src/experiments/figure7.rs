//! Figure 7: time efficiency and scalability of the goal-based strategies.
//!
//! The paper plots per-request recommendation time while growing the
//! implementation set into the millions, and observes that (a) all
//! strategies scale (near-linearly in `|H| × connectivity`), (b) Breadth is
//! the fastest multi-goal method and Best Match the slowest, (c) Focus_cl
//! is at most as expensive as Focus_cmp, and (d) connectivity — not the
//! raw number of implementations or actions — dominates the cost.
//!
//! Two sweeps reproduce that: a *size* sweep growing `|L|` at constant
//! connectivity shape, and a *connectivity* sweep growing connectivity at
//! constant `|L|`.

use crate::report::TextTable;
use goalrec_core::{ActionId, Activity, GoalId, GoalLibrary, GoalModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Figure7Config {
    /// Implementation counts for the size sweep.
    pub sizes: Vec<usize>,
    /// Action-universe sizes for the connectivity sweep (smaller universe →
    /// higher connectivity at fixed `|L|`).
    pub connectivity_actions: Vec<usize>,
    /// `|L|` held fixed during the connectivity sweep.
    pub connectivity_impls: usize,
    /// Action universe for the size sweep.
    pub num_actions: usize,
    /// Actions per implementation.
    pub impl_len: usize,
    /// Actions per query activity.
    pub activity_len: usize,
    /// Number of timed queries per point (averaged).
    pub queries: usize,
    /// Top-k per query.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Figure7Config {
    /// The default sweep used by the `repro` harness (seconds in release).
    pub fn medium_scale() -> Self {
        Self {
            sizes: vec![10_000, 50_000, 100_000, 250_000],
            connectivity_actions: vec![20_000, 5_000, 1_500, 500],
            connectivity_impls: 50_000,
            num_actions: 5_000,
            impl_len: 8,
            activity_len: 10,
            queries: 30,
            k: 10,
            seed: 0x716,
        }
    }

    /// Paper-scale sweep reaching millions of implementations.
    pub fn paper_scale() -> Self {
        Self {
            sizes: vec![100_000, 500_000, 1_000_000, 2_000_000],
            ..Self::medium_scale()
        }
    }

    /// Miniature sweep for tests.
    pub fn test_scale() -> Self {
        Self {
            sizes: vec![500, 1_500],
            connectivity_actions: vec![2_000, 300],
            connectivity_impls: 1_000,
            num_actions: 1_000,
            impl_len: 6,
            activity_len: 6,
            queries: 5,
            k: 10,
            seed: 0x716,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7Point {
    /// Which sweep the point belongs to ("size" / "connectivity").
    pub sweep: String,
    /// Number of implementations in the library.
    pub num_impls: usize,
    /// Measured mean action connectivity.
    pub connectivity: f64,
    /// Strategy name.
    pub strategy: String,
    /// Mean per-request latency in microseconds.
    pub avg_micros: f64,
    /// Compiled model footprint in mebibytes.
    pub model_mib: f64,
}

/// Full Figure 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7 {
    /// All measured points, grouped by sweep then library then strategy.
    pub points: Vec<Figure7Point>,
}

/// Runs both sweeps.
pub fn run(cfg: &Figure7Config) -> Figure7 {
    let mut points = Vec::new();
    for &n in &cfg.sizes {
        measure_library(cfg, "size", n, cfg.num_actions, &mut points);
    }
    for &actions in &cfg.connectivity_actions {
        measure_library(
            cfg,
            "connectivity",
            cfg.connectivity_impls,
            actions,
            &mut points,
        );
    }
    Figure7 { points }
}

fn measure_library(
    cfg: &Figure7Config,
    sweep: &str,
    num_impls: usize,
    num_actions: usize,
    out: &mut Vec<Figure7Point>,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (num_impls as u64) ^ (num_actions as u64));
    let library = synthetic_library(num_impls, num_actions, cfg.impl_len, &mut rng);
    // goalrec-lint:allow(no-panic-paths): synthetic_library always yields at least one implementation, and the scaling driver has no error channel
    let model = GoalModel::build(&library).expect("non-empty");
    let connectivity = library.stats().connectivity;
    let model_mib = model.memory_bytes() as f64 / (1024.0 * 1024.0);

    // Queries drawn from actions that exist in the library.
    let queries: Vec<Activity> = (0..cfg.queries)
        .map(|_| {
            Activity::from_raw(
                (0..cfg.activity_len)
                    .map(|_| rng.gen_range(0..num_actions) as u32)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

    for strategy in goalrec_core::strategies::default_strategies() {
        // One warm-up pass, then timed passes.
        for q in queries.iter().take(2) {
            std::hint::black_box(strategy.rank(&model, q, cfg.k));
        }
        let start = Instant::now();
        for q in &queries {
            std::hint::black_box(strategy.rank(&model, q, cfg.k));
        }
        let avg_micros = start.elapsed().as_secs_f64() * 1e6 / cfg.queries.max(1) as f64;
        out.push(Figure7Point {
            sweep: sweep.to_owned(),
            num_impls,
            connectivity,
            strategy: strategy.name().to_owned(),
            avg_micros,
            model_mib,
        });
    }
}

/// Uniform synthetic library: connectivity ≈ `num_impls × impl_len /
/// num_actions`, exactly the knob both sweeps turn.
fn synthetic_library(
    num_impls: usize,
    num_actions: usize,
    impl_len: usize,
    rng: &mut StdRng,
) -> GoalLibrary {
    let impls: Vec<(GoalId, Vec<ActionId>)> = (0..num_impls)
        .map(|i| {
            let mut acts: Vec<u32> = Vec::with_capacity(impl_len);
            while acts.len() < impl_len.min(num_actions) {
                let a = rng.gen_range(0..num_actions) as u32;
                if !acts.contains(&a) {
                    acts.push(a);
                }
            }
            (
                GoalId::new(i as u32),
                acts.into_iter().map(ActionId::new).collect(),
            )
        })
        .collect();
    GoalLibrary::from_id_implementations(num_actions as u32, num_impls as u32, impls)
        // goalrec-lint:allow(no-panic-paths): ids are generated modulo the bounds passed on the previous line
        .expect("valid synthetic library")
}

impl fmt::Display for Figure7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 7: per-request latency of the goal-based strategies",
            &[
                "Sweep",
                "|L|",
                "Connectivity",
                "Model MiB",
                "Strategy",
                "Avg µs/request",
            ],
        );
        for p in &self.points {
            t.row(vec![
                p.sweep.clone(),
                p.num_impls.to_string(),
                format!("{:.1}", p.connectivity),
                format!("{:.1}", p.model_mib),
                p.strategy.clone(),
                format!("{:.1}", p.avg_micros),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_points() {
        let cfg = Figure7Config::test_scale();
        let fig = run(&cfg);
        // (2 sizes + 2 connectivity settings) × 4 strategies.
        assert_eq!(fig.points.len(), 16);
        for p in &fig.points {
            assert!(p.avg_micros >= 0.0);
            assert!(p.connectivity > 0.0);
            assert!(p.model_mib > 0.0);
        }
        assert!(fig.to_string().contains("Figure 7"));
    }

    #[test]
    fn connectivity_sweep_varies_connectivity() {
        let cfg = Figure7Config::test_scale();
        let fig = run(&cfg);
        let conns: Vec<f64> = fig
            .points
            .iter()
            .filter(|p| p.sweep == "connectivity" && p.strategy == "Breadth")
            .map(|p| p.connectivity)
            .collect();
        assert_eq!(conns.len(), 2);
        assert!(
            conns[1] > conns[0] * 2.0,
            "connectivity sweep flat: {conns:?}"
        );
    }

    #[test]
    fn synthetic_library_hits_target_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let lib = synthetic_library(2_000, 500, 6, &mut rng);
        let got = lib.stats().connectivity;
        let want = 2_000.0 * 6.0 / 500.0;
        assert!((got - want).abs() / want < 0.1, "got {got}, want {want}");
    }
}
