//! Figures 5 and 6: do certain actions monopolise the goal-based lists?
//!
//! Figure 5 histograms each retrieved action's frequency *across the
//! recommendation lists*; Figure 6 histograms the retrieved actions'
//! frequency *in the implementation set*. Paper shape (FoodMart): the
//! majority of actions appear in <20 % of lists (Best Match and Breadth
//! have the heaviest tails at 22 % / 14 % above 0.2), and >92 % of
//! retrieved actions sit below 0.2 implementation-set frequency.

use crate::context::EvalContext;
use crate::metrics::frequency::{
    figure5_histogram, figure6_histogram, recommendation_gini, FrequencyHistogram,
};
use crate::report::{pct, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of histogram buckets (0.2-wide, matching the paper's reading).
pub const NUM_BUCKETS: usize = 5;

/// Histograms for one goal-based method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Method name.
    pub method: String,
    /// The frequency histogram.
    pub histogram: FrequencyHistogram,
    /// Gini concentration of the recommendation slots (Figure 5 rows
    /// only; 0 for Figure 6 where it is not meaningful).
    pub gini: f64,
}

/// Figures 5 + 6 result (FoodMart, goal-based methods).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figures56 {
    /// Figure 5: frequency across recommendation lists.
    pub figure5: Vec<FigureRow>,
    /// Figure 6: frequency in the implementation set.
    pub figure6: Vec<FigureRow>,
    /// §6.1.2 C.2.1's companion statistic: the maximum list frequency any
    /// action reaches on **43Things**, per goal-based method (the paper
    /// reports "at maximum 0.001" at full scale).
    pub fortythree_max_frequency: Vec<(String, f64)>,
}

/// Runs both figures.
pub fn run(ctx: &EvalContext) -> Figures56 {
    let fm = &ctx.foodmart;
    let num_actions = fm.model.num_actions();
    let goal_methods = fm.methods.iter().filter(|m| m.goal_based);
    let figure5 = goal_methods
        .clone()
        .map(|m| FigureRow {
            method: m.name.clone(),
            histogram: figure5_histogram(&m.lists, num_actions, NUM_BUCKETS),
            gini: recommendation_gini(&m.lists, num_actions),
        })
        .collect();
    let figure6 = goal_methods
        .map(|m| FigureRow {
            method: m.name.clone(),
            histogram: figure6_histogram(&fm.model, &m.lists, NUM_BUCKETS),
            gini: 0.0,
        })
        .collect();
    let ft = &ctx.fortythree;
    let fortythree_max_frequency = ft
        .methods
        .iter()
        .filter(|m| m.goal_based)
        .map(|m| {
            let hist = figure5_histogram(&m.lists, ft.model.num_actions(), NUM_BUCKETS);
            (m.name.clone(), hist.max_frequency)
        })
        .collect();
    Figures56 {
        figure5,
        figure6,
        fortythree_max_frequency,
    }
}

fn render(
    title: &str,
    rows: &[FigureRow],
    with_gini: bool,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let bounds: Vec<String> = rows
        .first()
        .map(|r| {
            r.histogram
                .bounds
                .iter()
                .map(|b| format!("≤{b:.1}"))
                .collect()
        })
        .unwrap_or_default();
    let mut header = vec!["Method"];
    header.extend(bounds.iter().map(String::as_str));
    if with_gini {
        header.push("Gini");
    }
    let mut t = TextTable::new(title, &header);
    for row in rows {
        let mut cells = vec![row.method.clone()];
        cells.extend(row.histogram.fractions.iter().map(|&v| pct(v)));
        if with_gini {
            cells.push(format!("{:.3}", row.gini));
        }
        t.row(cells);
    }
    writeln!(f, "{}", t.render())
}

impl fmt::Display for Figures56 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        render(
            "Figure 5 (FoodMart): action frequency across recommendation lists",
            &self.figure5,
            true,
            f,
        )?;
        render(
            "Figure 6 (FoodMart): implementation-set frequency of retrieved actions",
            &self.figure6,
            false,
            f,
        )?;
        writeln!(
            f,
            "43Things max list frequency per goal-based method (paper: ≤0.001 at full scale):"
        )?;
        for (m, v) in &self.fortythree_max_frequency {
            writeln!(f, "  {m:<10} {v:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalConfig;

    #[test]
    fn histograms_cover_goal_methods_and_sum_to_one() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let figs = run(&ctx);
        assert_eq!(figs.figure5.len(), 4);
        assert_eq!(figs.figure6.len(), 4);
        for row in figs.figure5.iter().chain(&figs.figure6) {
            if row.histogram.num_actions > 0 {
                let total: f64 = row.histogram.fractions.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "{}: {total}", row.method);
            }
        }
        for row in &figs.figure5 {
            assert!(
                (0.0..=1.0).contains(&row.gini),
                "{}: {}",
                row.method,
                row.gini
            );
        }
        assert_eq!(figs.fortythree_max_frequency.len(), 4);
        for (m, v) in &figs.fortythree_max_frequency {
            assert!((0.0..=1.0).contains(v), "{m}: {v}");
        }
        assert!(figs.to_string().contains("Figure 5"));
        assert!(figs.to_string().contains("Figure 6"));
    }

    #[test]
    fn no_action_monopolises_most_lists() {
        // Figure 5's qualitative claim: the bulk of retrieved actions sit
        // in the low-frequency buckets.
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let figs = run(&ctx);
        for row in &figs.figure5 {
            let low = row.histogram.fraction_below(0.6);
            assert!(
                low > 0.5,
                "{}: only {low} of actions below 0.6 list frequency",
                row.method
            );
        }
    }
}
