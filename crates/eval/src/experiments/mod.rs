//! Per-table / per-figure experiment drivers (§6).
//!
//! Each module reduces the precomputed lists of an
//! [`crate::context::EvalContext`] into one published table or figure; the
//! DESIGN.md experiment index maps each to its bench target.

pub mod ablation;
pub mod extended;
pub mod figure4;
pub mod figure7;
pub mod figures56;
pub mod rerank;
pub mod sessions;
pub mod stability;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
