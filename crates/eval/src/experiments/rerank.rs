//! Diversity re-ranking experiment: fixing Content-based filtering's
//! homogeneity (Table 5's finding) with MMR.
//!
//! The paper reports Content's lists at ≈0.8 intra-list similarity —
//! items too alike to be useful together. This experiment re-ranks the
//! Content baseline's candidate pool with [`goalrec_core::mmr_rerank`] at
//! several λ values and reports how intra-list similarity falls and what
//! it costs in usefulness, quantifying the relevance↔diversity trade-off
//! on the same measurement the paper uses.

use crate::context::EvalContext;
use crate::metrics::completeness::usefulness;
use crate::metrics::pairwise::pairwise_similarity;
use crate::report::{f3, TextTable};
use goalrec_baselines::{ContentBased, ItemFeatures};
use goalrec_core::{mmr_rerank, ActionId, Recommender};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Candidate pool depth handed to MMR (3× the output length, as in the
/// hybrid fusion).
const POOL: usize = 30;

/// One λ setting's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RerankRow {
    /// MMR trade-off parameter (1.0 = no re-ranking).
    pub lambda: f64,
    /// Mean intra-list pairwise feature similarity (Table 5's AvgAvg).
    pub intra_list_similarity: f64,
    /// Usefulness (AvgAvg goal completeness) of the re-ranked lists.
    pub usefulness_avg: f64,
}

/// Full re-ranking experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rerank {
    /// One row per λ, descending (1.0 first = the unmodified baseline).
    pub rows: Vec<RerankRow>,
}

/// Runs the experiment on the FoodMart Content baseline.
pub fn run(ctx: &EvalContext) -> Rerank {
    let fm = &ctx.foodmart;
    let content = ContentBased::new(ItemFeatures::new(fm.data.product_feature_vectors()));
    let goals: Vec<Vec<u32>> = fm
        .inputs
        .iter()
        .map(|h| fm.model.goal_space(h.raw()))
        .collect();

    // Deep scored pools, computed once.
    let pools: Vec<Vec<goalrec_core::Scored>> = fm
        .inputs
        .par_iter()
        .map(|h| content.recommend(h, POOL))
        .collect();

    let rows = [1.0, 0.7, 0.5, 0.3]
        .into_iter()
        .map(|lambda| {
            let lists: Vec<Vec<ActionId>> = pools
                .par_iter()
                .map(|pool| {
                    mmr_rerank(pool, ctx.cfg.k, lambda, |a, b| {
                        fm.features.pairwise_similarity(a, b)
                    })
                    .into_iter()
                    .map(|s| s.action)
                    .collect()
                })
                .collect();
            RerankRow {
                lambda,
                intra_list_similarity: pairwise_similarity(&fm.features, &lists).avg_avg,
                usefulness_avg: usefulness(&fm.model, &fm.inputs, &lists, &goals).avg_avg,
            }
        })
        .collect();
    Rerank { rows }
}

impl fmt::Display for Rerank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "MMR re-ranking of the Content baseline (FoodMart)",
            &["λ", "Intra-list similarity", "Usefulness AvgAvg"],
        );
        for row in &self.rows {
            t.row(vec![
                format!("{:.1}", row.lambda),
                f3(row.intra_list_similarity),
                f3(row.usefulness_avg),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalConfig;

    #[test]
    fn diversity_pressure_reduces_intra_list_similarity() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let r = run(&ctx);
        assert_eq!(r.rows.len(), 4);
        let baseline = &r.rows[0];
        assert_eq!(baseline.lambda, 1.0);
        let strongest = r.rows.last().unwrap();
        assert!(
            strongest.intra_list_similarity < baseline.intra_list_similarity,
            "MMR did not diversify: {} → {}",
            baseline.intra_list_similarity,
            strongest.intra_list_similarity
        );
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.intra_list_similarity));
            assert!((0.0..=1.0).contains(&row.usefulness_avg));
        }
        assert!(r.to_string().contains("MMR"));
    }
}
