//! Multi-round session simulation: which policy gets users to their goals
//! fastest?
//!
//! The paper motivates its strategies with *policies*: Focus is "for users
//! that need to fulfil at least one goal through the actions in the
//! current recommendation list", Breadth "keeps paths open" to maximise
//! eventually-fulfilled goals (§1, §5). Its single-shot metrics can't test
//! those claims — so this experiment simulates interactive sessions on the
//! 43Things world:
//!
//! 1. a user starts from the visible 30 % of their activity;
//! 2. each round, the strategy recommends `k` actions and the user
//!    performs the ones belonging to their *true* chosen implementations
//!    (their actual intent, known to the generator);
//! 3. repeat for `rounds` rounds.
//!
//! Reported per strategy: mean rounds until the *first* goal completes
//! (Focus's design target) and the mean number of goals completed by the
//! horizon (Breadth's design target).

use crate::context::{EvalConfig, EvalContext};
use crate::report::{f3, TextTable};
use goalrec_core::{ActionId, Activity, GoalRecommender, ImplId, Recommender};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Recommendations per round.
    pub k: usize,
    /// Number of rounds simulated.
    pub rounds: usize,
    /// Cap on the number of users simulated (None = all inputs).
    pub max_users: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            k: 5,
            rounds: 6,
            max_users: Some(400),
        }
    }
}

/// One strategy's session statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRow {
    /// Strategy name.
    pub strategy: String,
    /// Mean round index (1-based) at which the first goal completed, over
    /// users who completed at least one goal within the horizon.
    pub mean_rounds_to_first_goal: f64,
    /// Fraction of users who completed ≥1 goal within the horizon.
    pub users_with_a_completed_goal: f64,
    /// Mean number of the user's goals completed by the horizon.
    pub mean_goals_completed: f64,
    /// Mean fraction of recommended actions the user accepted (actions in
    /// their true implementations).
    pub acceptance_rate: f64,
}

/// Full session-simulation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sessions {
    /// Simulation parameters echoed back.
    pub rounds: usize,
    /// Recommendations per round.
    pub k: usize,
    /// One row per goal-based strategy.
    pub rows: Vec<SessionRow>,
}

/// Runs the simulation on the 43Things bundle.
pub fn run(ctx: &EvalContext, cfg: &SessionConfig) -> Sessions {
    let ft = &ctx.fortythree;
    let n_users = cfg
        .max_users
        .unwrap_or(ft.inputs.len())
        .min(ft.inputs.len());

    let rows = GoalRecommender::all_strategies(Arc::clone(&ft.model))
        .into_iter()
        .map(|rec| {
            let per_user: Vec<(Option<usize>, usize, usize, usize)> = (0..n_users)
                .into_par_iter()
                .map(|u| simulate_user(ctx, &rec, u, cfg))
                .collect();

            let completed_users: Vec<usize> =
                per_user.iter().filter_map(|(first, ..)| *first).collect();
            let total_goals: usize = per_user.iter().map(|&(_, g, ..)| g).sum();
            let accepted: usize = per_user.iter().map(|&(_, _, a, _)| a).sum();
            let offered: usize = per_user.iter().map(|&(_, _, _, o)| o).sum();
            SessionRow {
                strategy: rec.name(),
                mean_rounds_to_first_goal: completed_users.iter().sum::<usize>() as f64
                    / completed_users.len().max(1) as f64,
                users_with_a_completed_goal: completed_users.len() as f64 / n_users.max(1) as f64,
                mean_goals_completed: total_goals as f64 / n_users.max(1) as f64,
                acceptance_rate: accepted as f64 / offered.max(1) as f64,
            }
        })
        .collect();

    Sessions {
        rounds: cfg.rounds,
        k: cfg.k,
        rows,
    }
}

/// Simulates one user; returns (first-completion round, goals completed,
/// accepted recommendations, offered recommendations).
fn simulate_user(
    ctx: &EvalContext,
    rec: &GoalRecommender,
    user: usize,
    cfg: &SessionConfig,
) -> (Option<usize>, usize, usize, usize) {
    let ft = &ctx.fortythree;
    let model = &ft.model;
    let true_impls: &[ImplId] = &ft.data.user_impls[ft.input_users[user]];
    // An action is "acceptable" if it belongs to one of the user's chosen
    // implementations — the generator's ground-truth intent.
    let acceptable: Vec<u32> = {
        let mut v: Vec<u32> = true_impls
            .iter()
            .flat_map(|p| model.impl_actions(*p).iter().copied())
            .collect();
        goalrec_core::setops::normalize(&mut v);
        v
    };

    let mut current: Activity = ft.inputs[user].clone();
    let completed_at_start = completed_goals(model, true_impls, &current);
    let mut first_completion: Option<usize> = None;
    let mut accepted = 0usize;
    let mut offered = 0usize;

    for round in 1..=cfg.rounds {
        let recs = rec.recommend_actions(&current, cfg.k);
        if recs.is_empty() {
            break;
        }
        offered += recs.len();
        let take: Vec<ActionId> = recs
            .into_iter()
            .filter(|a| acceptable.binary_search(&a.raw()).is_ok())
            .collect();
        accepted += take.len();
        if !take.is_empty() {
            current = current.extended(take);
        }
        if first_completion.is_none()
            && completed_goals(model, true_impls, &current) > completed_at_start
        {
            first_completion = Some(round);
        }
    }
    let completed = completed_goals(model, true_impls, &current) - completed_at_start;
    (first_completion, completed, accepted, offered)
}

/// Number of the user's chosen implementations fully covered by `h`.
fn completed_goals(model: &goalrec_core::GoalModel, true_impls: &[ImplId], h: &Activity) -> usize {
    true_impls
        .iter()
        .filter(|p| {
            let acts = model.impl_actions(**p);
            goalrec_core::setops::intersection_len(acts, h.raw()) == acts.len()
        })
        .count()
}

impl fmt::Display for Sessions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            format!(
                "Session simulation (43Things): {} rounds × top-{}",
                self.rounds, self.k
            ),
            &[
                "Strategy",
                "Rounds to 1st goal",
                "Users w/ goal done",
                "Goals done",
                "Acceptance",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.strategy.clone(),
                f3(row.mean_rounds_to_first_goal),
                crate::report::pct(row.users_with_a_completed_goal),
                f3(row.mean_goals_completed),
                crate::report::pct(row.acceptance_rate),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// Convenience: run with defaults on a fresh test-scale context (used by
/// the `repro` harness at test scale).
pub fn run_default(cfg: &EvalConfig) -> Sessions {
    let ctx = EvalContext::build(cfg.clone());
    run(&ctx, &SessionConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sessions() -> Sessions {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        run(
            &ctx,
            &SessionConfig {
                k: 5,
                rounds: 5,
                max_users: Some(60),
            },
        )
    }

    #[test]
    fn all_strategies_complete_goals_in_session() {
        let s = sessions();
        assert_eq!(s.rows.len(), 4);
        for row in &s.rows {
            assert!(
                row.users_with_a_completed_goal > 0.3,
                "{}: only {:.0}% of users completed a goal",
                row.strategy,
                row.users_with_a_completed_goal * 100.0
            );
            assert!(row.mean_rounds_to_first_goal >= 1.0);
            assert!((0.0..=1.0).contains(&row.acceptance_rate));
            assert!(row.mean_goals_completed >= 0.0);
        }
        assert!(s.to_string().contains("Session simulation"));
    }

    #[test]
    fn focus_cmp_completes_first_goal_at_least_as_fast_as_best_match() {
        // The §5.1 design claim: Focus targets fastest single-goal
        // completion. Compare against Best Match, the most diffuse policy.
        let s = sessions();
        let get = |name: &str| {
            s.rows
                .iter()
                .find(|r| r.strategy == name)
                .unwrap()
                .mean_rounds_to_first_goal
        };
        assert!(
            get("Focus_cmp") <= get("BestMatch") + 0.25,
            "Focus_cmp {} vs BestMatch {}",
            get("Focus_cmp"),
            get("BestMatch")
        );
    }

    #[test]
    fn simulation_progress_is_monotone_in_rounds() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let short = run(
            &ctx,
            &SessionConfig {
                k: 5,
                rounds: 1,
                max_users: Some(40),
            },
        );
        let long = run(
            &ctx,
            &SessionConfig {
                k: 5,
                rounds: 6,
                max_users: Some(40),
            },
        );
        for (a, b) in short.rows.iter().zip(&long.rows) {
            assert!(
                b.mean_goals_completed >= a.mean_goals_completed - 1e-9,
                "{}: more rounds completed fewer goals",
                a.strategy
            );
        }
    }
}
