//! Seed stability: do the headline comparisons survive re-rolling the
//! synthetic worlds?
//!
//! The paper evaluates one fixed dataset pair; our reproduction generates
//! them. A claim that only holds for one RNG seed would be an artefact of
//! the generator, so this experiment re-runs the usefulness study
//! (Table 4's 43Things side — the paper's clearest ordering) across
//! several seeds and reports mean ± sample standard deviation per method,
//! plus how often the paper's winner (Focus_cmp) actually wins.

use crate::context::{method, EvalConfig, EvalContext};
use crate::experiments::table4;
use crate::report::{f3, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean ± std of one method's 43Things usefulness over the seed sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityRow {
    /// Method name.
    pub method: String,
    /// Mean AvgAvg goal completeness.
    pub mean: f64,
    /// Sample standard deviation across seeds.
    pub std: f64,
}

/// Full stability result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stability {
    /// Seeds evaluated.
    pub seeds: Vec<u64>,
    /// Per-method statistics, ordered as in the context.
    pub rows: Vec<StabilityRow>,
    /// In how many seeds Focus_cmp had the highest usefulness among all
    /// methods (the paper's 43Things ordering).
    pub focus_cmp_wins: usize,
}

/// Runs the sweep: `base` is re-built per seed with both generators and
/// the split protocol re-seeded.
pub fn run(base: &EvalConfig, seeds: &[u64]) -> Stability {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut per_method: Vec<(String, Vec<f64>)> = Vec::new();
    let mut focus_cmp_wins = 0usize;

    for &seed in seeds {
        let mut cfg = base.clone();
        cfg.fortythree.seed = seed;
        cfg.foodmart.seed = seed ^ 0xF00D;
        cfg.split_seed = seed.rotate_left(17);
        let ctx = EvalContext::build(cfg);
        let t4 = table4::run(&ctx);
        let ft = &t4.datasets[1];

        let mut best: Option<(&str, f64)> = None;
        for row in &ft.rows {
            let v = row.usefulness.avg_avg;
            match per_method.iter_mut().find(|(m, _)| *m == row.method) {
                Some((_, vals)) => vals.push(v),
                None => per_method.push((row.method.clone(), vec![v])),
            }
            if best.is_none_or(|(_, b)| v > b) {
                best = Some((&row.method, v));
            }
        }
        if best.map(|(m, _)| m) == Some(method::FOCUS_CMP) {
            focus_cmp_wins += 1;
        }
    }

    let n = seeds.len() as f64;
    let rows = per_method
        .into_iter()
        .map(|(method, vals)| {
            let mean = vals.iter().sum::<f64>() / n;
            let var = if vals.len() > 1 {
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            StabilityRow {
                method,
                mean,
                std: var.sqrt(),
            }
        })
        .collect();

    Stability {
        seeds: seeds.to_vec(),
        rows,
        focus_cmp_wins,
    }
}

impl fmt::Display for Stability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            format!(
                "Stability (43Things usefulness over {} seeds)",
                self.seeds.len()
            ),
            &["Method", "Mean AvgAvg", "Std"],
        );
        for row in &self.rows {
            t.row(vec![row.method.clone(), f3(row.mean), f3(row.std)]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "Focus_cmp ranked first in {}/{} seeds",
            self.focus_cmp_wins,
            self.seeds.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_all_methods_with_small_variance() {
        let st = run(&EvalConfig::test_scale(), &[1, 2, 3]);
        assert_eq!(st.seeds.len(), 3);
        assert!(st.rows.iter().any(|r| r.method == method::FOCUS_CMP));
        for row in &st.rows {
            assert!(
                (0.0..=1.0).contains(&row.mean),
                "{}: {}",
                row.method,
                row.mean
            );
            assert!(row.std >= 0.0);
            // Re-rolled worlds must not swing usefulness wildly.
            assert!(row.std < 0.2, "{} unstable: std {}", row.method, row.std);
        }
        assert!(st.to_string().contains("Stability"));
    }

    #[test]
    fn goal_based_ordering_is_seed_robust() {
        let st = run(&EvalConfig::test_scale(), &[10, 20, 30]);
        let get = |name: &str| st.rows.iter().find(|r| r.method == name).unwrap().mean;
        // The paper's coarse ordering: goal-based above popularity on the
        // goal-structured dataset, in the mean across seeds.
        let best_goal = method::GOAL_BASED
            .iter()
            .map(|m| get(m))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best_goal > get(method::POPULARITY) + 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        run(&EvalConfig::test_scale(), &[]);
    }
}
