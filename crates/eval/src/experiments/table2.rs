//! Table 2: overlap of the goal-based top-10 lists with the standard
//! recommenders' lists, per dataset.
//!
//! Paper shape: all entries are tiny (≲2.5 % against Content, ≲0.9 %
//! against CF-MF, ≲0.4 % against CF-kNN on FoodMart) — the approaches are
//! fundamentally different.

use crate::context::{method, EvalContext};
use crate::metrics::overlap::mean_overlap;
use crate::report::{pct, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One cell: goal-based method × standard method → mean overlap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// The goal-based method.
    pub goal_method: String,
    /// Mean overlap with each standard method, keyed by name.
    pub overlaps: Vec<(String, f64)>,
}

/// Table 2 for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Dataset {
    /// Dataset label ("FoodMart" / "43Things").
    pub dataset: String,
    /// Standard method names forming the columns.
    pub standard_methods: Vec<String>,
    /// One row per goal-based method.
    pub rows: Vec<Table2Row>,
}

/// Full Table 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-dataset tables.
    pub datasets: Vec<Table2Dataset>,
}

/// Runs the experiment.
pub fn run(ctx: &EvalContext) -> Table2 {
    let mut datasets = Vec::new();

    for (label, methods) in [
        ("FoodMart", &ctx.foodmart.methods),
        ("43Things", &ctx.fortythree.methods),
    ] {
        let standard: Vec<&crate::context::MethodLists> = methods
            .iter()
            .filter(|m| {
                matches!(
                    m.name.as_str(),
                    method::CONTENT | method::CF_KNN | method::CF_MF
                )
            })
            .collect();
        let rows = methods
            .iter()
            .filter(|m| m.goal_based)
            .map(|gm| Table2Row {
                goal_method: gm.name.clone(),
                overlaps: standard
                    .iter()
                    .map(|sm| (sm.name.clone(), mean_overlap(&gm.lists, &sm.lists)))
                    .collect(),
            })
            .collect();
        datasets.push(Table2Dataset {
            dataset: label.to_owned(),
            standard_methods: standard.iter().map(|m| m.name.clone()).collect(),
            rows,
        });
    }

    Table2 { datasets }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ds in &self.datasets {
            let mut header = vec!["Method"];
            let cols: Vec<String> = ds
                .standard_methods
                .iter()
                .map(|m| format!("vs {m}"))
                .collect();
            header.extend(cols.iter().map(String::as_str));
            let mut t = TextTable::new(
                format!(
                    "Table 2 ({}): top-10 overlap, goal-based vs standard",
                    ds.dataset
                ),
                &header,
            );
            for row in &ds.rows {
                let mut cells = vec![row.goal_method.clone()];
                cells.extend(row.overlaps.iter().map(|(_, v)| pct(*v)));
                t.row(cells);
            }
            writeln!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalConfig;

    #[test]
    fn table2_shape_and_bounds() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        assert_eq!(t.datasets.len(), 2);
        let fm = &t.datasets[0];
        assert_eq!(fm.dataset, "FoodMart");
        assert_eq!(fm.standard_methods.len(), 3); // Content, CF-kNN, CF-MF
        assert_eq!(fm.rows.len(), 4);
        for row in &fm.rows {
            for (_, v) in &row.overlaps {
                assert!((0.0..=1.0).contains(v));
            }
        }
        // 43Things has no Content column.
        assert_eq!(t.datasets[1].standard_methods.len(), 2);
        // Rendering works.
        let s = t.to_string();
        assert!(s.contains("Table 2 (FoodMart)"));
        assert!(s.contains("Breadth"));
    }
}
