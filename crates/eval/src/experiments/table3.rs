//! Table 3: Pearson correlation between the top-20 popular actions'
//! presence in user activities and in the recommendation lists.
//!
//! Paper shape: CF methods strongly positive (kNN 0.45/0.75, MF
//! 0.78/0.87), Content mildly positive (0.115), goal-based methods all
//! negative (−0.02 … −0.27).

use crate::context::EvalContext;
use crate::metrics::correlation::popularity_correlation;
use crate::report::{f3, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How many of the most popular actions enter the correlation (the paper
/// uses 20).
pub const TOP_N_POPULAR: usize = 20;

/// One method's correlations on both datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Method name.
    pub method: String,
    /// Correlation on FoodMart (None if the method doesn't run there).
    pub foodmart: Option<f64>,
    /// Correlation on 43Things.
    pub fortythree: Option<f64>,
}

/// Full Table 3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per method.
    pub rows: Vec<Table3Row>,
}

/// Runs the experiment.
pub fn run(ctx: &EvalContext) -> Table3 {
    let mut rows: Vec<Table3Row> = Vec::new();
    for m in &ctx.foodmart.methods {
        rows.push(Table3Row {
            method: m.name.clone(),
            foodmart: Some(popularity_correlation(
                &ctx.foodmart.activity_counts,
                &m.lists,
                TOP_N_POPULAR,
            )),
            fortythree: None,
        });
    }
    for m in &ctx.fortythree.methods {
        let r = popularity_correlation(&ctx.fortythree.activity_counts, &m.lists, TOP_N_POPULAR);
        if let Some(row) = rows.iter_mut().find(|row| row.method == m.name) {
            row.fortythree = Some(r);
        } else {
            rows.push(Table3Row {
                method: m.name.clone(),
                foodmart: None,
                fortythree: Some(r),
            });
        }
    }
    Table3 { rows }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            format!("Table 3: correlation with top-{TOP_N_POPULAR} popular actions"),
            &["Method", "FoodMart", "43Things"],
        );
        let cell = |v: &Option<f64>| v.map_or("-".to_owned(), f3);
        for row in &self.rows {
            t.row(vec![
                row.method.clone(),
                cell(&row.foodmart),
                cell(&row.fortythree),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{method, EvalConfig};

    #[test]
    fn table3_covers_all_methods() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        let names: Vec<&str> = t.rows.iter().map(|r| r.method.as_str()).collect();
        assert!(names.contains(&method::BREADTH));
        assert!(names.contains(&method::CF_KNN));
        // Content has a FoodMart value and no 43Things value.
        let content = t.rows.iter().find(|r| r.method == method::CONTENT).unwrap();
        assert!(content.foodmart.is_some());
        assert!(content.fortythree.is_none());
        for r in &t.rows {
            for v in [r.foodmart, r.fortythree].into_iter().flatten() {
                assert!((-1.0..=1.0).contains(&v), "{}: {v}", r.method);
            }
        }
        assert!(t.to_string().contains("Table 3"));
    }

    #[test]
    fn popularity_recommender_is_the_positive_anchor() {
        // Popularity is the definition of following the crowd: its
        // correlation must be positive and above every goal-based method's.
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        let get = |name: &str| {
            t.rows
                .iter()
                .find(|r| r.method == name)
                .unwrap()
                .foodmart
                .unwrap()
        };
        let pop = get(method::POPULARITY);
        assert!(pop > 0.0, "popularity correlation {pop}");
        // The paper's *negative* goal-based correlations only emerge at
        // scale (large candidate pools dilute popular items); at test scale
        // we only pin the anchor's sign. EXPERIMENTS.md records the
        // directional comparison from the full run.
    }
}
