//! Table 4 / Figure 3: usefulness — goal completeness after following the
//! recommended actions.
//!
//! For 43Things the goals under evaluation are the ones the user declared;
//! for FoodMart (where real intent is unknown) the whole goal space of the
//! input cart is used, as in the paper. Paper shape: Breadth and Best
//! Match lead on FoodMart, Focus_cmp on 43Things; the standard methods
//! trail everywhere.

use crate::context::EvalContext;
use crate::metrics::completeness::{usefulness, Usefulness};
use crate::report::{f3, BarChart, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One method's usefulness on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Method name.
    pub method: String,
    /// AvgAvg / MinAvg / MaxAvg triple.
    pub usefulness: Usefulness,
}

/// Usefulness table for one dataset (Figure 3 plots the AvgAvg column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Dataset {
    /// Dataset label.
    pub dataset: String,
    /// One row per method.
    pub rows: Vec<Table4Row>,
}

/// Full Table 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// Per-dataset tables.
    pub datasets: Vec<Table4Dataset>,
}

/// Runs the experiment.
pub fn run(ctx: &EvalContext) -> Table4 {
    // FoodMart: evaluate against the whole goal space of each input.
    let fm = &ctx.foodmart;
    let fm_goals: Vec<Vec<u32>> = fm
        .inputs
        .iter()
        .map(|h| fm.model.goal_space(h.raw()))
        .collect();
    let fm_rows = fm
        .methods
        .iter()
        .map(|m| Table4Row {
            method: m.name.clone(),
            usefulness: usefulness(&fm.model, &fm.inputs, &m.lists, &fm_goals),
        })
        .collect();

    // 43Things: evaluate against the user's declared goals.
    let ft = &ctx.fortythree;
    let ft_goals: Vec<Vec<u32>> = ft
        .input_users
        .iter()
        .map(|&u| {
            let mut ids: Vec<u32> = ft.data.user_goals[u].iter().map(|g| g.raw()).collect();
            ids.sort_unstable();
            ids
        })
        .collect();
    let ft_rows = ft
        .methods
        .iter()
        .map(|m| Table4Row {
            method: m.name.clone(),
            usefulness: usefulness(&ft.model, &ft.inputs, &m.lists, &ft_goals),
        })
        .collect();

    Table4 {
        datasets: vec![
            Table4Dataset {
                dataset: "FoodMart".into(),
                rows: fm_rows,
            },
            Table4Dataset {
                dataset: "43Things".into(),
                rows: ft_rows,
            },
        ],
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ds in &self.datasets {
            let mut t = TextTable::new(
                format!(
                    "Table 4 / Fig. 3 ({}): goal completeness after following the list",
                    ds.dataset
                ),
                &["Method", "AvgAvg", "MinAvg", "MaxAvg"],
            );
            for row in &ds.rows {
                t.row(vec![
                    row.method.clone(),
                    f3(row.usefulness.avg_avg),
                    f3(row.usefulness.min_avg),
                    f3(row.usefulness.max_avg),
                ]);
            }
            writeln!(f, "{}", t.render())?;
            // Figure 3 proper: the AvgAvg bars.
            let mut chart = BarChart::new(
                format!("Figure 3 ({}): average goal completeness", ds.dataset),
                40,
            );
            for row in &ds.rows {
                chart.bar(row.method.clone(), row.usefulness.avg_avg);
            }
            writeln!(f, "{}", chart.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{method, EvalConfig};

    #[test]
    fn usefulness_bounds_and_shape() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        assert_eq!(t.datasets.len(), 2);
        for ds in &t.datasets {
            for row in &ds.rows {
                let u = &row.usefulness;
                assert!((0.0..=1.0).contains(&u.avg_avg), "{}: {u:?}", row.method);
                assert!(u.min_avg <= u.avg_avg + 1e-12);
                assert!(u.avg_avg <= u.max_avg + 1e-12);
            }
        }
        assert!(t.to_string().contains("Fig. 3"));
    }

    #[test]
    fn goal_based_beats_popularity_on_fortythree() {
        // The headline claim in miniature: on the goal-structured dataset,
        // a goal-based method completes the user's declared goals better
        // than popularity.
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        let ft = &t.datasets[1];
        let get = |name: &str| {
            ft.rows
                .iter()
                .find(|r| r.method == name)
                .unwrap()
                .usefulness
                .avg_avg
        };
        let best_goal = crate::context::method::GOAL_BASED
            .iter()
            .map(|m| get(m))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_goal > get(method::POPULARITY),
            "goal-based {best_goal} vs popularity {}",
            get(method::POPULARITY)
        );
    }
}
