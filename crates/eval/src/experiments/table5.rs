//! Table 5: pairwise feature-based similarity within each list
//! (FoodMart only — 43Things has no accepted domain features).
//!
//! Paper shape: Content ≈ 0.81 AvgAvg (its known self-similarity
//! drawback), CF methods 0.15–0.16, goal-based 0.24–0.33.

use crate::context::EvalContext;
use crate::metrics::pairwise::{pairwise_similarity, PairwiseSimilarity};
use crate::report::{f3, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One method's intra-list similarity statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Method name.
    pub method: String,
    /// AvgAvg / AvgMax / AvgMin triple.
    pub similarity: PairwiseSimilarity,
}

/// Full Table 5 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// One row per method (FoodMart methods only).
    pub rows: Vec<Table5Row>,
}

/// Runs the experiment.
pub fn run(ctx: &EvalContext) -> Table5 {
    let fm = &ctx.foodmart;
    Table5 {
        rows: fm
            .methods
            .iter()
            .map(|m| Table5Row {
                method: m.name.clone(),
                similarity: pairwise_similarity(&fm.features, &m.lists),
            })
            .collect(),
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table 5 (FoodMart): pairwise feature similarity within lists",
            &["Method", "AvgAvg", "AvgMax", "AvgMin"],
        );
        for row in &self.rows {
            t.row(vec![
                row.method.clone(),
                f3(row.similarity.avg_avg),
                f3(row.similarity.avg_max),
                f3(row.similarity.avg_min),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{method, EvalConfig};

    #[test]
    fn content_is_the_most_self_similar() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        let get = |name: &str| {
            t.rows
                .iter()
                .find(|r| r.method == name)
                .unwrap()
                .similarity
                .avg_avg
        };
        let content = get(method::CONTENT);
        for m in crate::context::method::GOAL_BASED {
            assert!(
                content > get(m),
                "Content {content} should exceed {m} {}",
                get(m)
            );
        }
        for r in &t.rows {
            let s = &r.similarity;
            assert!(s.avg_min <= s.avg_avg + 1e-12 && s.avg_avg <= s.avg_max + 1e-12);
            assert!((0.0..=1.0).contains(&s.avg_avg));
        }
        assert!(t.to_string().contains("Table 5"));
    }
}
