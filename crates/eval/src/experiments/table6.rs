//! Table 6: overlap among the goal-based methods' own top-10 lists.
//!
//! Paper shape: Best Match × Breadth overlap massively (98 % FoodMart,
//! 79 % 43Things); Focus_cmp × Focus_cl 35.6 % / 78 %; Focus × {Breadth,
//! Best Match} over 40 % / 70 %; overall higher overlap on 43Things.

use crate::context::EvalContext;
use crate::metrics::overlap::mean_overlap;
use crate::report::{pct, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pairwise overlaps among goal-based methods, one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Dataset {
    /// Dataset label.
    pub dataset: String,
    /// Goal-based method names (matrix axes).
    pub methods: Vec<String>,
    /// `matrix[i][j]` = mean overlap of method i and method j.
    pub matrix: Vec<Vec<f64>>,
}

impl Table6Dataset {
    /// Overlap of two methods by name.
    pub fn overlap(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.methods.iter().position(|m| m == a)?;
        let j = self.methods.iter().position(|m| m == b)?;
        Some(self.matrix[i][j])
    }
}

/// Full Table 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6 {
    /// Per-dataset matrices.
    pub datasets: Vec<Table6Dataset>,
}

/// Runs the experiment.
pub fn run(ctx: &EvalContext) -> Table6 {
    let mut datasets = Vec::new();
    for (label, methods) in [
        ("FoodMart", &ctx.foodmart.methods),
        ("43Things", &ctx.fortythree.methods),
    ] {
        let goal: Vec<&crate::context::MethodLists> =
            methods.iter().filter(|m| m.goal_based).collect();
        let names: Vec<String> = goal.iter().map(|m| m.name.clone()).collect();
        let matrix: Vec<Vec<f64>> = goal
            .iter()
            .map(|a| {
                goal.iter()
                    .map(|b| mean_overlap(&a.lists, &b.lists))
                    .collect()
            })
            .collect();
        datasets.push(Table6Dataset {
            dataset: label.to_owned(),
            methods: names,
            matrix,
        });
    }
    Table6 { datasets }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ds in &self.datasets {
            let mut header = vec!["Method"];
            header.extend(ds.methods.iter().map(String::as_str));
            let mut t = TextTable::new(
                format!("Table 6 ({}): overlap among goal-based methods", ds.dataset),
                &header,
            );
            for (i, name) in ds.methods.iter().enumerate() {
                let mut cells = vec![name.clone()];
                cells.extend(ds.matrix[i].iter().map(|&v| pct(v)));
                t.row(cells);
            }
            writeln!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{method, EvalConfig};

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        for ds in &t.datasets {
            assert_eq!(ds.methods.len(), 4);
            for i in 0..4 {
                // Diagonal = self-overlap; 1.0 whenever any list is
                // non-empty (0 only in the degenerate all-empty case).
                assert!(
                    ds.matrix[i][i] > 0.5,
                    "{} diag {}",
                    ds.dataset,
                    ds.matrix[i][i]
                );
                for j in 0..4 {
                    assert!((ds.matrix[i][j] - ds.matrix[j][i]).abs() < 1e-12);
                    assert!((0.0..=1.0).contains(&ds.matrix[i][j]));
                }
            }
        }
    }

    #[test]
    fn best_match_and_breadth_overlap_strongly() {
        // The paper's strongest observation in miniature: the two
        // multi-goal strategies retrieve very similar lists.
        let ctx = EvalContext::build(EvalConfig::test_scale());
        let t = run(&ctx);
        for ds in &t.datasets {
            let bm_br = ds.overlap(method::BEST_MATCH, method::BREADTH).unwrap();
            assert!(
                bm_br > 0.3,
                "{}: BestMatch×Breadth overlap only {bm_br}",
                ds.dataset
            );
        }
    }

    #[test]
    fn renders() {
        let ctx = EvalContext::build(EvalConfig::test_scale());
        assert!(run(&ctx).to_string().contains("Table 6"));
    }
}
