//! # goalrec-eval
//!
//! Metrics and experiment drivers reproducing the evaluation section (§6)
//! of *"Modeling and Exploiting Goal and Action Associations for
//! Recommendations"* (EDBT 2018).
//!
//! The entry point is [`context::EvalContext::build`]: it generates both
//! synthetic datasets, trains every method (the four goal-based strategies
//! plus CF-kNN, CF-MF, Content, Apriori and Popularity), and precomputes
//! all top-k recommendation lists. Each module under [`experiments`]
//! reduces those lists into one of the paper's tables or figures; the
//! [`metrics`] modules hold the underlying measures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod experiments;
pub mod metrics;
pub mod report;

pub use context::{EvalConfig, EvalContext};
