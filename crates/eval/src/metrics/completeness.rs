//! Usefulness: goal completeness after following the recommendations
//! (Table 4 / Figure 3, §6.1.1 C.1.3).
//!
//! For each input, extend the activity with the recommended actions and
//! compute the completeness of every goal under consideration (the user's
//! declared goals for 43Things, the whole goal space for FoodMart). Report
//! per-list min / avg / max, then average each over all lists.

use goalrec_core::{ActionId, Activity, GoalId, GoalModel};
use serde::{Deserialize, Serialize};

/// Aggregated usefulness statistics over a batch of lists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Usefulness {
    /// Mean over lists of the per-list *average* goal completeness.
    pub avg_avg: f64,
    /// Mean over lists of the per-list *minimum* goal completeness.
    pub min_avg: f64,
    /// Mean over lists of the per-list *maximum* goal completeness.
    pub max_avg: f64,
}

/// Per-list completeness triple for one input.
fn list_completeness(
    model: &GoalModel,
    activity: &Activity,
    recommendations: &[ActionId],
    goals: &[u32],
) -> Option<(f64, f64, f64)> {
    if goals.is_empty() {
        return None;
    }
    let extended = activity.extended(recommendations.iter().copied());
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &g in goals {
        let c = model.goal_completeness(GoalId::new(g), extended.raw());
        min = min.min(c);
        max = max.max(c);
        sum += c;
    }
    Some((min, sum / goals.len() as f64, max))
}

/// Computes [`Usefulness`] over a batch.
///
/// `goals_per_input[i]` is the goal id set evaluated for input `i`; inputs
/// with an empty goal set are skipped (no evidence to score against).
pub fn usefulness(
    model: &GoalModel,
    activities: &[Activity],
    lists: &[Vec<ActionId>],
    goals_per_input: &[Vec<u32>],
) -> Usefulness {
    assert_eq!(activities.len(), lists.len());
    assert_eq!(activities.len(), goals_per_input.len());
    let mut n = 0usize;
    let (mut s_min, mut s_avg, mut s_max) = (0.0, 0.0, 0.0);
    for ((h, list), goals) in activities.iter().zip(lists).zip(goals_per_input) {
        if let Some((min, avg, max)) = list_completeness(model, h, list, goals) {
            s_min += min;
            s_avg += avg;
            s_max += max;
            n += 1;
        }
    }
    let n = n.max(1) as f64;
    Usefulness {
        avg_avg: s_avg / n,
        min_avg: s_min / n,
        max_avg: s_max / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::{GoalLibrary, GoalModel};

    /// g0: {0,1,2}; g1: {0,3}; g2: {4,5}.
    fn model() -> GoalModel {
        let lib = GoalLibrary::from_id_implementations(
            6,
            3,
            vec![
                (
                    GoalId::new(0),
                    vec![0, 1, 2].into_iter().map(ActionId::new).collect(),
                ),
                (
                    GoalId::new(1),
                    vec![0, 3].into_iter().map(ActionId::new).collect(),
                ),
                (
                    GoalId::new(2),
                    vec![4, 5].into_iter().map(ActionId::new).collect(),
                ),
            ],
        )
        .unwrap();
        GoalModel::build(&lib).unwrap()
    }

    #[test]
    fn recommendations_raise_completeness() {
        let m = model();
        let h = Activity::from_raw([0]);
        let goals = vec![0u32, 1];
        let before = usefulness(
            &m,
            std::slice::from_ref(&h),
            &[vec![]],
            std::slice::from_ref(&goals),
        );
        let after = usefulness(
            &m,
            &[h],
            &[vec![ActionId::new(1), ActionId::new(3)]],
            &[goals],
        );
        assert!(after.avg_avg > before.avg_avg);
        // g1 fully completed by action 3 → max hits 1.0.
        assert_eq!(after.max_avg, 1.0);
    }

    #[test]
    fn exact_values_for_hand_example() {
        let m = model();
        // H = {0}, recommend {1}: g0 completeness = 2/3, g1 = 1/2.
        let u = usefulness(
            &m,
            &[Activity::from_raw([0])],
            &[vec![ActionId::new(1)]],
            &[vec![0u32, 1]],
        );
        assert!((u.avg_avg - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((u.min_avg - 0.5).abs() < 1e-12);
        assert!((u.max_avg - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn inputs_without_goals_are_skipped() {
        let m = model();
        let u = usefulness(
            &m,
            &[Activity::from_raw([0]), Activity::from_raw([4])],
            &[vec![ActionId::new(1)], vec![ActionId::new(5)]],
            &[vec![], vec![2u32]],
        );
        // Only the second input counts; g2 fully complete → all 1.0.
        assert_eq!(u.avg_avg, 1.0);
        assert_eq!(u.min_avg, 1.0);
        assert_eq!(u.max_avg, 1.0);
    }

    #[test]
    fn all_empty_is_zero() {
        let m = model();
        let u = usefulness(&m, &[], &[], &[]);
        assert_eq!(u.avg_avg, 0.0);
    }
}
