//! Popularity correlation (Table 3).
//!
//! "How correlated the recommendation lists with the top-20 popular actions
//! in the user activities are": take the 20 most popular actions, count how
//! often each appears across the recommendation lists, and compute
//! Pearson's r between the activity counts and the list counts. CF methods
//! score high positive values; the goal-based methods go negative.

use goalrec_core::ActionId;

/// Pearson correlation coefficient of two equal-length samples. Returns
/// 0.0 when either sample has zero variance (the conventional degenerate
/// value for this study).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples required");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// The Table 3 statistic: Pearson r between the activity-counts of the
/// `top_n` most popular actions and their appearance counts across the
/// given recommendation lists.
///
/// `activity_counts[a]` is how many input activities contain action `a`.
pub fn popularity_correlation(
    activity_counts: &[u32],
    lists: &[Vec<ActionId>],
    top_n: usize,
) -> f64 {
    // Rank actions by activity count, descending, tie by id for
    // determinism.
    let mut ranked: Vec<(u32, u32)> = activity_counts
        .iter()
        .enumerate()
        .map(|(a, &c)| (a as u32, c))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(top_n);

    let mut rec_counts = vec![0u32; activity_counts.len()];
    for list in lists {
        for a in list {
            if a.index() < rec_counts.len() {
                rec_counts[a.index()] += 1;
            }
        }
    }

    let x: Vec<f64> = ranked.iter().map(|&(_, c)| c as f64).collect();
    let y: Vec<f64> = ranked
        .iter()
        .map(|&(a, _)| rec_counts[a as usize] as f64)
        .collect();
    pearson(&x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // zero variance
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0); // n < 2
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0];
        let r = pearson(&x, &y);
        assert!(r.abs() < 0.9);
    }

    #[test]
    fn popularity_correlation_positive_for_popularity_recommender() {
        // Popular actions 0,1,2 with counts 30,20,10; lists recommending
        // them proportionally → strong positive r.
        let counts = vec![30u32, 20, 10, 0, 0];
        let mut lists = Vec::new();
        for _ in 0..3 {
            lists.push(ids(&[0, 1]));
        }
        lists.push(ids(&[0, 2]));
        let r = popularity_correlation(&counts, &lists, 3);
        assert!(r > 0.8, "r = {r}");
    }

    #[test]
    fn popularity_correlation_negative_for_anti_popular_lists() {
        let counts = vec![30u32, 20, 10];
        // Lists recommend the least popular most often.
        let lists = vec![ids(&[2]), ids(&[2]), ids(&[2, 1]), ids(&[1])];
        let r = popularity_correlation(&counts, &lists, 3);
        assert!(r < -0.8, "r = {r}");
    }

    #[test]
    fn top_n_larger_than_universe_is_safe() {
        let counts = vec![3u32, 1];
        let lists = vec![ids(&[0])];
        let r = popularity_correlation(&counts, &lists, 20);
        assert!(r.is_finite());
    }
}
