//! Action frequency distributions (Figures 5 and 6, §6.1.2 C.2.1).
//!
//! Figure 5: how often each retrieved action appears across the
//! recommendation lists (do some actions monopolise the lists?).
//! Figure 6: how frequent the retrieved actions are in the *implementation
//! set* (does the method just surface staple actions?). Both are reported
//! as histograms over frequency buckets.

use goalrec_core::{ActionId, GoalModel};
use serde::{Deserialize, Serialize};

/// A histogram over `[0, 1]` frequencies with uniform buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyHistogram {
    /// Bucket upper bounds (e.g. 0.2, 0.4, …, 1.0).
    pub bounds: Vec<f64>,
    /// Fraction of actions falling in each bucket (sums to 1 unless empty).
    pub fractions: Vec<f64>,
    /// Number of distinct actions counted.
    pub num_actions: usize,
    /// Maximum observed frequency.
    pub max_frequency: f64,
}

impl FrequencyHistogram {
    fn from_frequencies(freqs: &[f64], num_buckets: usize) -> Self {
        assert!(num_buckets > 0);
        let bounds: Vec<f64> = (1..=num_buckets)
            .map(|i| i as f64 / num_buckets as f64)
            .collect();
        let mut counts = vec![0usize; num_buckets];
        let mut max_frequency: f64 = 0.0;
        for &f in freqs {
            let idx = ((f * num_buckets as f64).ceil() as usize)
                .saturating_sub(1)
                .min(num_buckets - 1);
            counts[idx] += 1;
            max_frequency = max_frequency.max(f);
        }
        let n = freqs.len().max(1) as f64;
        Self {
            bounds,
            fractions: counts.iter().map(|&c| c as f64 / n).collect(),
            num_actions: freqs.len(),
            max_frequency,
        }
    }

    /// Fraction of actions with frequency at most `bound` (sums the buckets
    /// whose upper bound is ≤ `bound`).
    pub fn fraction_below(&self, bound: f64) -> f64 {
        self.bounds
            .iter()
            .zip(&self.fractions)
            .filter(|&(&b, _)| b <= bound + 1e-12)
            .map(|(_, &f)| f)
            .sum()
    }
}

/// Per-action frequency across recommendation lists:
/// `count(lists containing a) / num_lists`, for actions appearing at least
/// once. This is Figure 5's distribution.
pub fn list_frequencies(lists: &[Vec<ActionId>], num_actions: usize) -> Vec<(ActionId, f64)> {
    let mut counts = vec![0u32; num_actions];
    for list in lists {
        for a in list {
            if a.index() < num_actions {
                counts[a.index()] += 1;
            }
        }
    }
    let n = lists.len().max(1) as f64;
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(a, &c)| (ActionId::new(a as u32), c as f64 / n))
        .collect()
}

/// Figure 5 histogram: distribution of list frequencies of retrieved
/// actions.
pub fn figure5_histogram(
    lists: &[Vec<ActionId>],
    num_actions: usize,
    num_buckets: usize,
) -> FrequencyHistogram {
    let freqs: Vec<f64> = list_frequencies(lists, num_actions)
        .into_iter()
        .map(|(_, f)| f)
        .collect();
    FrequencyHistogram::from_frequencies(&freqs, num_buckets)
}

/// Figure 6 histogram: distribution, over the *retrieved* actions, of their
/// frequency in the implementation set (`|IS(a)| / |L|`).
pub fn figure6_histogram(
    model: &GoalModel,
    lists: &[Vec<ActionId>],
    num_buckets: usize,
) -> FrequencyHistogram {
    let mut retrieved = vec![false; model.num_actions()];
    for list in lists {
        for a in list {
            if a.index() < retrieved.len() {
                retrieved[a.index()] = true;
            }
        }
    }
    let n_impls = model.num_impls().max(1) as f64;
    let freqs: Vec<f64> = retrieved
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r)
        .map(|(a, _)| model.connectivity(ActionId::new(a as u32)) as f64 / n_impls)
        .collect();
    FrequencyHistogram::from_frequencies(&freqs, num_buckets)
}

/// Gini coefficient of the recommendation-slot distribution over actions:
/// 0 = every recommended action appears equally often across the lists,
/// → 1 = a handful of actions monopolise the slots. A scalar companion to
/// the Figure 5 histogram.
pub fn recommendation_gini(lists: &[Vec<ActionId>], num_actions: usize) -> f64 {
    let mut counts = vec![0u64; num_actions];
    for list in lists {
        for a in list {
            if a.index() < num_actions {
                counts[a.index()] += 1;
            }
        }
    }
    let mut values: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    if values.len() < 2 {
        return 0.0;
    }
    values.sort_unstable();
    let n = values.len() as f64;
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini via the sorted-rank formula: (2 Σ i·x_i)/(n Σ x) − (n+1)/n.
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::{GoalId, GoalLibrary};

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn list_frequencies_count_lists_not_occurrences() {
        let lists = vec![ids(&[0, 1]), ids(&[0]), ids(&[2])];
        let freqs = list_frequencies(&lists, 4);
        let map: std::collections::HashMap<u32, f64> =
            freqs.iter().map(|&(a, f)| (a.raw(), f)).collect();
        assert!((map[&0] - 2.0 / 3.0).abs() < 1e-12); // in 2 of 3 lists
        assert!((map[&1] - 1.0 / 3.0).abs() < 1e-12);
        assert!(!map.contains_key(&3)); // never retrieved
    }

    #[test]
    fn histogram_buckets_and_fractions() {
        let h = FrequencyHistogram::from_frequencies(&[0.1, 0.15, 0.5, 0.9], 5);
        assert_eq!(h.bounds, vec![0.2, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(h.num_actions, 4);
        assert!((h.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.fraction_below(0.2) - 0.5).abs() < 1e-12);
        assert_eq!(h.max_frequency, 0.9);
    }

    #[test]
    fn histogram_edge_frequencies() {
        let h = FrequencyHistogram::from_frequencies(&[0.0, 1.0], 5);
        assert!((h.fractions[0] - 0.5).abs() < 1e-12);
        assert!((h.fractions[4] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = FrequencyHistogram::from_frequencies(&[], 5);
        assert_eq!(h.num_actions, 0);
        assert_eq!(h.max_frequency, 0.0);
        assert_eq!(h.fraction_below(1.0), 0.0);
    }

    #[test]
    fn gini_zero_for_uniform_and_high_for_monopoly() {
        // Uniform: each of 4 actions recommended once.
        let uniform = vec![ids(&[0]), ids(&[1]), ids(&[2]), ids(&[3])];
        assert!(recommendation_gini(&uniform, 5).abs() < 1e-12);
        // Monopoly: one action dominates.
        let skew = vec![ids(&[0]); 99]
            .into_iter()
            .chain([ids(&[1])])
            .collect::<Vec<_>>();
        assert!(recommendation_gini(&skew, 5) > 0.45);
        // Degenerate inputs.
        assert_eq!(recommendation_gini(&[], 5), 0.0);
        assert_eq!(recommendation_gini(&[ids(&[0])], 5), 0.0);
    }

    #[test]
    fn figure6_uses_connectivity() {
        // Library: action 0 in both impls, action 1 in one.
        let lib = GoalLibrary::from_id_implementations(
            2,
            2,
            vec![(GoalId::new(0), ids(&[0, 1])), (GoalId::new(1), ids(&[0]))],
        )
        .unwrap();
        let model = GoalModel::build(&lib).unwrap();
        let h = figure6_histogram(&model, &[ids(&[0, 1])], 2);
        // freq(0) = 1.0, freq(1) = 0.5 → one in each bucket.
        assert!((h.fractions[0] - 0.5).abs() < 1e-12);
        assert!((h.fractions[1] - 0.5).abs() < 1e-12);
    }
}
