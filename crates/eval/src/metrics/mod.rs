//! Evaluation metrics used by the §6 experiments.

pub mod completeness;
pub mod correlation;
pub mod frequency;
pub mod novelty;
pub mod overlap;
pub mod pairwise;
pub mod ranking;
pub mod tpr;
