//! Beyond-accuracy metrics: novelty, intra-list diversity, catalogue
//! coverage and serendipity.
//!
//! §2 of the paper situates goal-based recommendation against work that
//! chases serendipity, novelty and diversity heuristically. These metrics
//! make that comparison quantitative; the `extended` experiment reports
//! them for every method.

use goalrec_baselines::ItemFeatures;
use goalrec_core::ActionId;

/// Mean self-information of the recommended actions:
/// `−log₂(count(a) / num_users)`, averaged over all recommended slots.
/// Higher = more novel. Actions never seen in training contribute the
/// maximum (`log₂ num_users`).
pub fn novelty(lists: &[Vec<ActionId>], activity_counts: &[u32], num_users: usize) -> f64 {
    let n_users = num_users.max(1) as f64;
    let max_info = n_users.log2();
    let mut total = 0.0;
    let mut slots = 0usize;
    for list in lists {
        for a in list {
            let c = activity_counts.get(a.index()).copied().unwrap_or(0);
            total += if c == 0 {
                max_info
            } else {
                -(c as f64 / n_users).log2()
            };
            slots += 1;
        }
    }
    total / slots.max(1) as f64
}

/// Intra-list diversity: `1 −` mean pairwise feature similarity within a
/// list, averaged over lists with ≥ 2 items. Higher = more diverse.
pub fn intra_list_diversity(features: &ItemFeatures, lists: &[Vec<ActionId>]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for list in lists {
        if list.len() < 2 {
            continue;
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                sum += features.pairwise_similarity(list[i], list[j]);
                pairs += 1;
            }
        }
        total += 1.0 - sum / pairs as f64;
        n += 1;
    }
    total / n.max(1) as f64
}

/// Catalogue coverage: fraction of the action universe recommended at
/// least once across all lists (aggregate diversity).
pub fn catalogue_coverage(lists: &[Vec<ActionId>], num_actions: usize) -> f64 {
    let mut seen = vec![false; num_actions];
    for list in lists {
        for a in list {
            if a.index() < num_actions {
                seen[a.index()] = true;
            }
        }
    }
    seen.iter().filter(|&&s| s).count() as f64 / num_actions.max(1) as f64
}

/// Serendipity: among recommended actions that are *relevant* (appear in
/// the per-input ground truth), the fraction that a popularity primer
/// would *not* have recommended — relevant surprises. `primitive[i]` is
/// the popularity baseline's list for input `i`.
pub fn serendipity(
    lists: &[Vec<ActionId>],
    primitive: &[Vec<ActionId>],
    truths: &[Vec<ActionId>],
) -> f64 {
    assert_eq!(lists.len(), primitive.len());
    assert_eq!(lists.len(), truths.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for ((list, prim), truth) in lists.iter().zip(primitive).zip(truths) {
        if list.is_empty() || truth.is_empty() {
            continue;
        }
        let prim_set: std::collections::HashSet<ActionId> = prim.iter().copied().collect();
        let surprising_hits = list
            .iter()
            .filter(|a| truth.binary_search(a).is_ok() && !prim_set.contains(a))
            .count();
        total += surprising_hits as f64 / list.len() as f64;
        n += 1;
    }
    total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn novelty_rewards_rare_items() {
        // counts: item 0 in all 8 users, item 1 in 1 user.
        let counts = vec![8u32, 1];
        let popular = novelty(&[ids(&[0])], &counts, 8);
        let rare = novelty(&[ids(&[1])], &counts, 8);
        assert_eq!(popular, 0.0); // −log2(1) = 0
        assert_eq!(rare, 3.0); // −log2(1/8)
        let unseen = novelty(&[ids(&[5])], &counts, 8);
        assert_eq!(unseen, 3.0); // capped at log2(8)
    }

    #[test]
    fn novelty_empty_lists() {
        assert_eq!(novelty(&[], &[1], 2), 0.0);
        assert_eq!(novelty(&[vec![]], &[1], 2), 0.0);
    }

    #[test]
    fn diversity_complements_similarity() {
        let features = ItemFeatures::new(vec![vec![(0, 1.0)], vec![(0, 1.0)], vec![(1, 1.0)]]);
        assert_eq!(intra_list_diversity(&features, &[ids(&[0, 1])]), 0.0);
        assert_eq!(intra_list_diversity(&features, &[ids(&[0, 2])]), 1.0);
        // Short lists skipped.
        assert_eq!(intra_list_diversity(&features, &[ids(&[0])]), 0.0);
    }

    #[test]
    fn coverage_counts_distinct_actions() {
        let lists = vec![ids(&[0, 1]), ids(&[1, 2])];
        assert!((catalogue_coverage(&lists, 6) - 0.5).abs() < 1e-12);
        assert_eq!(catalogue_coverage(&[], 6), 0.0);
    }

    #[test]
    fn serendipity_excludes_popular_hits() {
        let lists = vec![ids(&[1, 2, 3, 4])];
        let prim = vec![ids(&[1, 9])];
        let truth = vec![ids(&[1, 3])];
        // Hits: 1 (but popular-primed) and 3 (surprising) → 1/4.
        assert!((serendipity(&lists, &prim, &truth) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serendipity_skips_empty_inputs() {
        let s = serendipity(
            &[ids(&[1]), vec![]],
            &[ids(&[]), ids(&[])],
            &[ids(&[1]), ids(&[2])],
        );
        assert_eq!(s, 1.0); // only the first input counts
    }
}
