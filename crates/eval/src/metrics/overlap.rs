//! Recommendation-list overlap (Tables 2 and 6).
//!
//! The paper quantifies how different two methods' outputs are by the
//! percentage of common actions in their top-k lists, averaged over all
//! inputs.

use goalrec_core::ActionId;

/// Overlap of two single lists: `|a ∩ b| / max(|a|, |b|)` (0 when both are
/// empty). Using the longer list as denominator keeps the measure honest
/// when one method returns a short list.
pub fn list_overlap(a: &[ActionId], b: &[ActionId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<ActionId> = a.iter().copied().collect();
    let common = b.iter().filter(|x| sa.contains(x)).count();
    common as f64 / a.len().max(b.len()) as f64
}

/// Mean overlap over paired lists (one pair per input activity).
///
/// # Panics
/// Panics if the two methods produced a different number of lists.
pub fn mean_overlap(a: &[Vec<ActionId>], b: &[Vec<ActionId>]) -> f64 {
    assert_eq!(a.len(), b.len(), "methods must rank the same inputs");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| list_overlap(x, y)).sum();
    sum / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn identical_lists_overlap_fully() {
        assert_eq!(list_overlap(&ids(&[1, 2, 3]), &ids(&[1, 2, 3])), 1.0);
    }

    #[test]
    fn disjoint_lists_overlap_zero() {
        assert_eq!(list_overlap(&ids(&[1, 2]), &ids(&[3, 4])), 0.0);
    }

    #[test]
    fn partial_overlap_uses_longer_denominator() {
        // common = 1, max len = 4.
        assert_eq!(list_overlap(&ids(&[1]), &ids(&[1, 2, 3, 4])), 0.25);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(list_overlap(&[], &[]), 0.0);
        assert_eq!(list_overlap(&ids(&[1]), &[]), 0.0);
    }

    #[test]
    fn mean_over_pairs() {
        let a = vec![ids(&[1, 2]), ids(&[3, 4])];
        let b = vec![ids(&[1, 2]), ids(&[5, 6])];
        assert_eq!(mean_overlap(&a, &b), 0.5);
        assert_eq!(mean_overlap(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same inputs")]
    fn mismatched_list_counts_panic() {
        mean_overlap(&[ids(&[1])], &[]);
    }
}
