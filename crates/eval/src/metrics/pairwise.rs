//! Intra-list pairwise feature similarity (Table 5, §6.1.1 C.1.4).
//!
//! For each recommendation list, compute the pairwise feature-based
//! similarity of every action pair; report per-list average / max / min and
//! average those over all lists. Content-based filtering tops this table
//! (≈0.8) — the "too similar" drawback the paper highlights — while the
//! goal-based methods sit in the 0.24–0.33 band.

use goalrec_baselines::ItemFeatures;
use goalrec_core::ActionId;
use serde::{Deserialize, Serialize};

/// Aggregated pairwise-similarity statistics over a batch of lists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairwiseSimilarity {
    /// Mean over lists of the per-list average pair similarity.
    pub avg_avg: f64,
    /// Mean over lists of the per-list maximum pair similarity.
    pub avg_max: f64,
    /// Mean over lists of the per-list minimum pair similarity.
    pub avg_min: f64,
}

/// Computes the Table 5 statistic; lists with fewer than two actions are
/// skipped (no pairs).
pub fn pairwise_similarity(features: &ItemFeatures, lists: &[Vec<ActionId>]) -> PairwiseSimilarity {
    let mut n = 0usize;
    let (mut s_avg, mut s_max, mut s_min) = (0.0, 0.0, 0.0);
    for list in lists {
        if list.len() < 2 {
            continue;
        }
        let mut sum = 0.0;
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        let mut pairs = 0usize;
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let s = features.pairwise_similarity(list[i], list[j]);
                sum += s;
                max = max.max(s);
                min = min.min(s);
                pairs += 1;
            }
        }
        s_avg += sum / pairs as f64;
        s_max += max;
        s_min += min;
        n += 1;
    }
    let n = n.max(1) as f64;
    PairwiseSimilarity {
        avg_avg: s_avg / n,
        avg_max: s_max / n,
        avg_min: s_min / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    /// Items 0,1 share a category; 2 is alone; 3 shares with nothing.
    fn features() -> ItemFeatures {
        ItemFeatures::new(vec![
            vec![(0, 1.0)],
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(2, 1.0)],
        ])
    }

    #[test]
    fn homogeneous_list_scores_high() {
        let p = pairwise_similarity(&features(), &[ids(&[0, 1])]);
        assert_eq!(p.avg_avg, 1.0);
        assert_eq!(p.avg_max, 1.0);
        assert_eq!(p.avg_min, 1.0);
    }

    #[test]
    fn diverse_list_scores_low() {
        let p = pairwise_similarity(&features(), &[ids(&[0, 2, 3])]);
        assert_eq!(p.avg_avg, 0.0);
        assert_eq!(p.avg_min, 0.0);
    }

    #[test]
    fn mixed_list_statistics() {
        // Pairs of [0,1,2]: (0,1)=1, (0,2)=0, (1,2)=0 → avg 1/3, max 1, min 0.
        let p = pairwise_similarity(&features(), &[ids(&[0, 1, 2])]);
        assert!((p.avg_avg - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.avg_max, 1.0);
        assert_eq!(p.avg_min, 0.0);
    }

    #[test]
    fn short_lists_skipped() {
        let p = pairwise_similarity(&features(), &[ids(&[0]), ids(&[]), ids(&[0, 1])]);
        assert_eq!(p.avg_avg, 1.0); // only the third list counts
    }

    #[test]
    fn averaging_across_lists() {
        let p = pairwise_similarity(&features(), &[ids(&[0, 1]), ids(&[2, 3])]);
        assert_eq!(p.avg_avg, 0.5);
        assert_eq!(p.avg_max, 0.5);
    }
}
