//! Standard ranking metrics: precision, recall, NDCG, MAP.
//!
//! Not reported in the paper's tables (which use the TPR framing instead),
//! but indispensable for downstream users evaluating the library on their
//! own data, and used by the extended experiments in EXPERIMENTS.md.

use goalrec_core::ActionId;

/// Precision@k: hits / k (uses the actual list length when shorter).
pub fn precision_at_k(list: &[ActionId], truth_sorted: &[ActionId], k: usize) -> f64 {
    let cut = list.len().min(k);
    if cut == 0 {
        return 0.0;
    }
    let hits = list[..cut]
        .iter()
        .filter(|a| truth_sorted.binary_search(a).is_ok())
        .count();
    hits as f64 / cut as f64
}

/// Recall@k: hits / |truth|; 0 for empty truth.
pub fn recall_at_k(list: &[ActionId], truth_sorted: &[ActionId], k: usize) -> f64 {
    if truth_sorted.is_empty() {
        return 0.0;
    }
    let cut = list.len().min(k);
    let hits = list[..cut]
        .iter()
        .filter(|a| truth_sorted.binary_search(a).is_ok())
        .count();
    hits as f64 / truth_sorted.len() as f64
}

/// NDCG@k with binary relevance.
pub fn ndcg_at_k(list: &[ActionId], truth_sorted: &[ActionId], k: usize) -> f64 {
    if truth_sorted.is_empty() {
        return 0.0;
    }
    let cut = list.len().min(k);
    let mut dcg = 0.0;
    for (i, a) in list[..cut].iter().enumerate() {
        if truth_sorted.binary_search(a).is_ok() {
            dcg += 1.0 / ((i + 2) as f64).log2();
        }
    }
    let ideal_hits = truth_sorted.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|i| 1.0 / ((i + 2) as f64).log2()).sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Average precision@k (for MAP: average this over queries).
pub fn average_precision_at_k(list: &[ActionId], truth_sorted: &[ActionId], k: usize) -> f64 {
    if truth_sorted.is_empty() {
        return 0.0;
    }
    let cut = list.len().min(k);
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, a) in list[..cut].iter().enumerate() {
        if truth_sorted.binary_search(a).is_ok() {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / truth_sorted.len().min(k) as f64
}

/// Mean of a per-query metric over a batch, skipping empty truths.
pub fn mean_over_queries<F>(lists: &[Vec<ActionId>], truths: &[Vec<ActionId>], f: F) -> f64
where
    F: Fn(&[ActionId], &[ActionId]) -> f64,
{
    assert_eq!(lists.len(), truths.len());
    let mut n = 0usize;
    let mut sum = 0.0;
    for (list, truth) in lists.iter().zip(truths) {
        if truth.is_empty() {
            continue;
        }
        sum += f(list, truth);
        n += 1;
    }
    sum / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn precision_counts_hits_in_prefix() {
        let list = ids(&[1, 9, 2, 8]);
        let truth = ids(&[1, 2]);
        assert_eq!(precision_at_k(&list, &truth, 2), 0.5);
        assert_eq!(precision_at_k(&list, &truth, 4), 0.5);
        assert_eq!(precision_at_k(&[], &truth, 5), 0.0);
    }

    #[test]
    fn recall_normalises_by_truth_size() {
        let list = ids(&[1, 9]);
        let truth = ids(&[1, 2, 3, 4]);
        assert_eq!(recall_at_k(&list, &truth, 2), 0.25);
        assert_eq!(recall_at_k(&list, &[], 2), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let truth = ids(&[1, 2]);
        assert!((ndcg_at_k(&ids(&[1, 2, 9]), &truth, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalises_late_hits() {
        let truth = ids(&[1]);
        let early = ndcg_at_k(&ids(&[1, 9, 8]), &truth, 3);
        let late = ndcg_at_k(&ids(&[9, 8, 1]), &truth, 3);
        assert!(early > late);
        assert_eq!(early, 1.0);
    }

    #[test]
    fn average_precision_known_value() {
        // Hits at positions 1 and 3 of [1,9,2], truth {1,2}:
        // AP = (1/1 + 2/3) / 2.
        let ap = average_precision_at_k(&ids(&[1, 9, 2]), &ids(&[1, 2]), 3);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_over_queries_skips_empty_truths() {
        let lists = vec![ids(&[1]), ids(&[2])];
        let truths = vec![ids(&[1]), ids(&[])];
        let m = mean_over_queries(&lists, &truths, |l, t| precision_at_k(l, t, 1));
        assert_eq!(m, 1.0);
    }
}
