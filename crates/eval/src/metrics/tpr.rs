//! Average True Positive Rate (Figure 4, §6.1.1 C.1.5).
//!
//! The fraction of recommended actions the user *did* perform at some
//! point — against the hidden 70 % for 43Things, or against the user's
//! other carts for FoodMart. The paper is careful to note this is not
//! precision (the user never saw the lists); it measures how much of each
//! list the user independently validated.

use goalrec_core::ActionId;

/// TPR of one list against a sorted ground-truth action set:
/// `|list ∩ truth| / |list|`; 0 for an empty list.
pub fn list_tpr(list: &[ActionId], truth_sorted: &[ActionId]) -> f64 {
    if list.is_empty() {
        return 0.0;
    }
    let hits = list
        .iter()
        .filter(|a| truth_sorted.binary_search(a).is_ok())
        .count();
    hits as f64 / list.len() as f64
}

/// Mean TPR over a batch; inputs with an empty ground truth are skipped
/// (nothing can be validated for them).
pub fn avg_tpr(lists: &[Vec<ActionId>], truths: &[Vec<ActionId>]) -> f64 {
    assert_eq!(lists.len(), truths.len());
    let mut n = 0usize;
    let mut sum = 0.0;
    for (list, truth) in lists.iter().zip(truths) {
        if truth.is_empty() {
            continue;
        }
        debug_assert!(
            truth.windows(2).all(|w| w[0] < w[1]),
            "truth must be sorted"
        );
        sum += list_tpr(list, truth);
        n += 1;
    }
    sum / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ActionId> {
        v.iter().map(|&x| ActionId::new(x)).collect()
    }

    #[test]
    fn full_and_zero_hits() {
        assert_eq!(list_tpr(&ids(&[1, 2]), &ids(&[1, 2, 3])), 1.0);
        assert_eq!(list_tpr(&ids(&[8, 9]), &ids(&[1, 2, 3])), 0.0);
    }

    #[test]
    fn partial_hits() {
        assert_eq!(list_tpr(&ids(&[1, 8, 2, 9]), &ids(&[1, 2])), 0.5);
    }

    #[test]
    fn empty_list_is_zero() {
        assert_eq!(list_tpr(&[], &ids(&[1])), 0.0);
    }

    #[test]
    fn averaging_skips_empty_truths() {
        let lists = vec![ids(&[1, 2]), ids(&[1, 2]), ids(&[3])];
        let truths = vec![ids(&[1, 2]), ids(&[]), ids(&[4])];
        // Inputs 0 (tpr 1.0) and 2 (tpr 0.0) count.
        assert_eq!(avg_tpr(&lists, &truths), 0.5);
    }

    #[test]
    fn all_empty_is_zero() {
        assert_eq!(avg_tpr(&[], &[]), 0.0);
    }
}
