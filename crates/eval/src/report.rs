//! Plain-text table rendering for experiment reports.
//!
//! Every experiment's result type implements `Display` through this small
//! helper, so the `repro` harness prints tables directly comparable to the
//! paper's.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line_len: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(line_len));
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(out, "{}", "-".repeat(line_len));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        let _ = writeln!(out, "{}", "-".repeat(line_len));
        out
    }
}

/// A horizontal ASCII bar chart — used to render the paper's figures
/// (3 and 4) as figures, not just tables.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    width: usize,
}

impl BarChart {
    /// Creates a chart; `width` is the maximum bar length in characters.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        assert!(width > 0);
        Self {
            title: title.into(),
            bars: Vec::new(),
            width,
        }
    }

    /// Appends one labelled bar. Negative values are clamped to zero.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value.max(0.0)));
        self
    }

    /// Renders the chart; bars are scaled to the maximum value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let max = self
            .bars
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let n = ((value / max) * self.width as f64).round() as usize;
            let _ = writeln!(
                out,
                "  {label:<label_w$} |{} {value:.3}",
                "█".repeat(n),
                label_w = label_w
            );
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo", &["Method", "Score"]);
        t.row(vec!["Breadth".into(), "0.981".into()]);
        t.row(vec!["CF".into(), "0.1".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("| Breadth | 0.981 |"));
        assert!(s.contains("|      CF |   0.1 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        TextTable::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.0213), "2.13%");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let mut c = BarChart::new("Fig", 10);
        c.bar("a", 1.0).bar("bb", 0.5).bar("c", 0.0);
        let s = c.render();
        assert!(s.contains("Fig"));
        // The max bar is exactly `width` blocks; half value → half blocks.
        assert!(s.contains(&format!("a  |{} 1.000", "█".repeat(10))), "{s}");
        assert!(s.contains(&format!("bb |{} 0.500", "█".repeat(5))), "{s}");
        assert!(s.contains("c  | 0.000"), "{s}");
    }

    #[test]
    fn bar_chart_clamps_negative_and_handles_all_zero() {
        let mut c = BarChart::new("t", 4);
        c.bar("neg", -3.0).bar("zero", 0.0);
        let s = c.render();
        assert!(s.contains("neg  | 0.000"));
        assert!(s.contains("zero | 0.000"));
    }

    #[test]
    #[should_panic]
    fn bar_chart_zero_width_rejected() {
        BarChart::new("t", 0);
    }
}
