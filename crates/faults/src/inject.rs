//! The runtime half: [`Read`]/[`Write`] wrappers that execute a
//! [`FaultPlan`], and the process-global switch that arms one.
//!
//! The default is zero-cost: with no plan armed, [`read_wrap`] and
//! [`write_wrap`] return passthrough wrappers whose per-call overhead is a
//! single `Option` check; arming is a relaxed atomic load away. Plans are
//! armed process-globally (not thread-locally) because the interesting
//! victims — a server's reload path, a writer on another thread — do their
//! IO far from the thread that scheduled the chaos.

use crate::plan::{FaultKind, FaultPlan, Trigger};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Arms `plan` for every subsequently wrapped stream whose path matches
/// its filter. Replaces any previously armed plan.
pub fn arm(plan: FaultPlan) {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(plan);
    // ordering: Release pairs with the Acquire loads in is_armed and
    // plan_for; the PLAN mutex separately synchronizes the plan contents,
    // so the flag only needs to order itself after the install above.
    ARMED.store(true, Ordering::Release);
}

/// Disarms fault injection; wrapping returns to plain passthrough.
pub fn disarm() {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
    // ordering: Release, mirroring arm — a disarm observed via Acquire
    // happens-after the plan was cleared under the mutex.
    ARMED.store(false, Ordering::Release);
}

/// Whether any plan is currently armed (regardless of path filters).
pub fn is_armed() -> bool {
    // ordering: Acquire pairs with the Release stores in arm/disarm.
    ARMED.load(Ordering::Acquire)
}

/// Runs `f` with `plan` armed, disarming afterwards even on early return.
/// Intended for tests; real chaos drivers arm/disarm explicitly.
pub fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm();
        }
    }
    arm(plan);
    let _guard = Disarm;
    f()
}

/// The armed plan, if one exists and matches `path`.
fn plan_for(path: &Path) -> Option<FaultPlan> {
    // ordering: Acquire pairs with the Release store in arm — the fast
    // path skips the mutex entirely, so the flag carries the ordering.
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    let slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    let plan = slot.as_ref()?;
    let text = path.to_string_lossy();
    plan.matches(&text).then(|| plan.clone())
}

/// Per-stream execution state of one plan.
struct StreamFaults {
    events: Vec<(crate::plan::FaultEvent, bool)>,
    read_bytes: u64,
    read_ops: u64,
    write_bytes: u64,
    write_ops: u64,
}

impl StreamFaults {
    fn new(plan: FaultPlan) -> Self {
        StreamFaults {
            events: plan.events.into_iter().map(|e| (e, false)).collect(),
            read_bytes: 0,
            read_ops: 0,
            write_bytes: 0,
            write_ops: 0,
        }
    }
}

fn injected(kind: &str) -> io::Error {
    // goalrec-lint:allow(hot-path-alloc): fault injection — the error is the deliberately injected failure
    io::Error::other(format!("injected fault: {kind}"))
}

/// What the pre-call evaluation decided for this IO call.
enum Action {
    /// Proceed normally, but read/write at most this many bytes when set
    /// (used to stop exactly at a byte-offset boundary).
    Proceed(Option<u64>),
    /// Fail the call now.
    Fail(&'static str),
    /// Complete the call but hand back at most one byte.
    Short,
}

impl StreamFaults {
    /// Evaluates the read-side events for the call about to happen.
    fn before_read(&mut self) -> Action {
        self.read_ops += 1;
        let mut cap: Option<u64> = None;
        for (event, fired) in &mut self.events {
            if *fired || !event.kind.is_read_side() {
                continue;
            }
            let hit = match event.trigger {
                Trigger::OpCount(n) => self.read_ops >= n,
                Trigger::ByteOffset(off) => self.read_bytes >= off,
            };
            if hit {
                *fired = true;
                match &event.kind {
                    FaultKind::ReadError => return Action::Fail("read error"),
                    FaultKind::ShortRead => return Action::Short,
                    // goalrec-lint:allow(hot-path-alloc): fault injection — the stall IS the injected fault
                    FaultKind::Stall(d) => std::thread::sleep(*d),
                    // Write-side kinds are filtered out above.
                    FaultKind::WriteError | FaultKind::TornWrite => {}
                }
            } else if let (Trigger::ByteOffset(off), FaultKind::ReadError) =
                (event.trigger, &event.kind)
            {
                // Stop this read exactly at the boundary so the *next*
                // call fails at the scheduled offset, byte-exactly.
                let room = off - self.read_bytes;
                cap = Some(cap.map_or(room, |c| c.min(room)));
            }
        }
        Action::Proceed(cap)
    }

    /// Evaluates the write-side events; `len` is the caller's buffer size.
    fn before_write(&mut self, len: u64) -> Action {
        self.write_ops += 1;
        let mut cap: Option<u64> = None;
        for (event, fired) in &mut self.events {
            if *fired || event.kind.is_read_side() {
                continue;
            }
            let boundary = match event.trigger {
                Trigger::OpCount(n) => {
                    if self.write_ops >= n {
                        Some(0)
                    } else {
                        None
                    }
                }
                Trigger::ByteOffset(off) => {
                    if self.write_bytes >= off {
                        Some(0)
                    } else if self.write_bytes + len > off {
                        // This call crosses the offset: a torn write
                        // persists the prefix below it, an error stops
                        // exactly at it.
                        Some(off - self.write_bytes)
                    } else {
                        None
                    }
                }
            };
            match (boundary, &event.kind) {
                (Some(0), FaultKind::WriteError | FaultKind::TornWrite) => {
                    *fired = true;
                    return Action::Fail(if matches!(event.kind, FaultKind::TornWrite) {
                        "torn write"
                    } else {
                        "write error"
                    });
                }
                (Some(keep), FaultKind::TornWrite) => {
                    // Persist the prefix this call; the next call (offset
                    // reached) fails.
                    cap = Some(cap.map_or(keep, |c| c.min(keep)));
                }
                (Some(keep), FaultKind::WriteError) => {
                    cap = Some(cap.map_or(keep, |c| c.min(keep)));
                }
                _ => {}
            }
        }
        Action::Proceed(cap)
    }
}

/// A [`Read`] wrapper executing the armed plan; passthrough when none.
pub struct FaultyRead<R> {
    inner: R,
    faults: Option<Box<StreamFaults>>,
}

impl<R> FaultyRead<R> {
    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(faults) = self.faults.as_deref_mut() else {
            return self.inner.read(buf);
        };
        let n = match faults.before_read() {
            Action::Fail(kind) => return Err(injected(kind)),
            Action::Short => {
                let end = buf.len().min(1);
                self.inner.read(&mut buf[..end])?
            }
            Action::Proceed(cap) => {
                let end = match cap {
                    Some(c) => buf.len().min(usize::try_from(c).unwrap_or(usize::MAX)),
                    None => buf.len(),
                };
                if end == 0 && !buf.is_empty() {
                    // The boundary sits exactly here; deliver nothing and
                    // let the next call fire the event.
                    0
                } else {
                    self.inner.read(&mut buf[..end])?
                }
            }
        };
        faults.read_bytes += n as u64;
        Ok(n)
    }
}

/// A [`Write`] wrapper executing the armed plan; passthrough when none.
pub struct FaultyWrite<W> {
    inner: W,
    faults: Option<Box<StreamFaults>>,
}

impl<W> FaultyWrite<W> {
    /// The wrapped writer (e.g. to fsync the underlying file).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(faults) = self.faults.as_deref_mut() else {
            return self.inner.write(buf);
        };
        match faults.before_write(buf.len() as u64) {
            Action::Fail(kind) => Err(injected(kind)),
            Action::Short => {
                let n = self.inner.write(&buf[..buf.len().min(1)])?;
                faults.write_bytes += n as u64;
                Ok(n)
            }
            Action::Proceed(cap) => {
                let end = match cap {
                    Some(c) => buf.len().min(usize::try_from(c).unwrap_or(usize::MAX)),
                    None => buf.len(),
                };
                let n = self.inner.write(&buf[..end])?;
                faults.write_bytes += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Wraps a reader opened at `path`, consulting the armed plan. With no
/// matching plan this is a plain passthrough.
pub fn read_wrap<R: Read>(path: &Path, inner: R) -> FaultyRead<R> {
    FaultyRead {
        inner,
        faults: plan_for(path).map(|p| Box::new(StreamFaults::new(p))),
    }
}

/// Wraps a writer destined for `path`, consulting the armed plan. With no
/// matching plan this is a plain passthrough.
///
/// Pass the *target* path even when physically writing a temp file, so
/// path filters describe what the caller is persisting, not the
/// implementation detail of where bytes land first.
pub fn write_wrap<W: Write>(path: &Path, inner: W) -> FaultyWrite<W> {
    FaultyWrite {
        inner,
        faults: plan_for(path).map(|p| Box::new(StreamFaults::new(p))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use std::time::{Duration, Instant};

    fn path() -> &'static Path {
        Path::new("/virtual/test.grlb")
    }

    /// Serializes tests that arm the process-global plan.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_wrapping_is_passthrough() {
        let _g = lock();
        disarm();
        let mut r = read_wrap(path(), &b"hello"[..]);
        assert!(r.faults.is_none());
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn read_error_fires_at_exact_byte_offset() {
        let _g = lock();
        let data = [7u8; 100];
        with_plan(FaultPlan::parse("read-error@byte=40").unwrap(), || {
            let mut r = read_wrap(path(), &data[..]);
            let mut out = Vec::new();
            let err = r.read_to_end(&mut out).unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
            assert_eq!(out.len(), 40, "must stop exactly at the boundary");
        });
    }

    #[test]
    fn read_error_fires_at_op_count() {
        let _g = lock();
        let data = [1u8; 64];
        with_plan(FaultPlan::parse("read-error@op=3").unwrap(), || {
            let mut r = read_wrap(path(), &data[..]);
            let mut buf = [0u8; 8];
            assert_eq!(r.read(&mut buf).unwrap(), 8);
            assert_eq!(r.read(&mut buf).unwrap(), 8);
            assert!(r.read(&mut buf).is_err());
        });
    }

    #[test]
    fn short_read_returns_one_byte_without_error() {
        let _g = lock();
        let data = [9u8; 64];
        with_plan(FaultPlan::parse("short-read@op=1").unwrap(), || {
            let mut r = read_wrap(path(), &data[..]);
            let mut buf = [0u8; 32];
            assert_eq!(r.read(&mut buf).unwrap(), 1);
            // One-shot: the next read is full-size again.
            assert_eq!(r.read(&mut buf).unwrap(), 32);
        });
    }

    #[test]
    fn stall_delays_but_succeeds() {
        let _g = lock();
        let data = [2u8; 16];
        with_plan(FaultPlan::parse("stall-30ms@op=1").unwrap(), || {
            let mut r = read_wrap(path(), &data[..]);
            let t0 = Instant::now();
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out.len(), 16);
            assert!(t0.elapsed() >= Duration::from_millis(25));
        });
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let _g = lock();
        with_plan(FaultPlan::parse("torn-write@byte=10").unwrap(), || {
            let mut sink = Vec::new();
            let mut w = write_wrap(path(), &mut sink);
            // First write crosses the boundary: the prefix lands.
            assert_eq!(w.write(&[1u8; 25]).unwrap(), 10);
            // Next write fails: the tear happened.
            assert!(w.write(&[2u8; 5]).is_err());
            drop(w);
            assert_eq!(sink, vec![1u8; 10]);
        });
    }

    #[test]
    fn write_error_fires_at_op_count() {
        let _g = lock();
        with_plan(FaultPlan::parse("write-error@op=2").unwrap(), || {
            let mut sink = Vec::new();
            let mut w = write_wrap(path(), &mut sink);
            assert_eq!(w.write(&[0u8; 4]).unwrap(), 4);
            assert!(w.write(&[0u8; 4]).is_err());
        });
    }

    #[test]
    fn path_filter_scopes_injection() {
        let _g = lock();
        with_plan(
            FaultPlan::parse("path=.grlb;read-error@op=1").unwrap(),
            || {
                let mut faulted = read_wrap(Path::new("/x/lib.grlb"), &b"abc"[..]);
                assert!(faulted.read(&mut [0u8; 4]).is_err());
                let mut clean = read_wrap(Path::new("/x/lib.jsonl"), &b"abc"[..]);
                assert_eq!(clean.read(&mut [0u8; 4]).unwrap(), 3);
            },
        );
    }

    #[test]
    fn disarm_restores_passthrough() {
        let _g = lock();
        arm(FaultPlan::parse("read-error@op=1").unwrap());
        assert!(is_armed());
        disarm();
        assert!(!is_armed());
        let mut r = read_wrap(path(), &b"ok"[..]);
        assert_eq!(r.read(&mut [0u8; 4]).unwrap(), 2);
    }

    #[test]
    fn seeded_plans_never_hang_or_panic_the_stream() {
        let _g = lock();
        for seed in 0..32u64 {
            with_plan(FaultPlan::seeded(seed, 64), || {
                let data = vec![3u8; 64];
                let mut r = read_wrap(path(), &data[..]);
                let mut out = Vec::new();
                let _ = r.read_to_end(&mut out); // Ok or Err, never a panic
                let mut sink = Vec::new();
                let mut w = write_wrap(path(), &mut sink);
                let _ = w.write_all(&data);
            });
        }
    }
}
