//! # goalrec-faults
//!
//! Deterministic, seedable IO fault injection for the goalrec stack.
//!
//! Production code opens its files through [`read_wrap`]/[`write_wrap`];
//! by default these are passthrough wrappers costing one `Option` check
//! per call. A chaos driver (a test, `loadgen --chaos-smoke`) arms a
//! [`FaultPlan`] — a schedule of IO errors, short reads, latency stalls
//! and torn writes at chosen byte offsets or operation counts — and every
//! stream subsequently opened on a matching path misbehaves exactly as
//! scheduled:
//!
//! ```
//! use goalrec_faults::{FaultPlan, with_plan, read_wrap};
//! use std::io::Read;
//!
//! let plan = FaultPlan::parse("path=.grlb;read-error@byte=64").unwrap();
//! with_plan(plan, || {
//!     let data = vec![0u8; 256];
//!     let mut r = read_wrap(std::path::Path::new("lib.grlb"), &data[..]);
//!     let mut out = Vec::new();
//!     assert!(r.read_to_end(&mut out).is_err()); // fails at byte 64
//!     assert_eq!(out.len(), 64);
//! });
//! ```
//!
//! Everything is deterministic: the same plan against the same byte
//! stream fires at the same offsets, and [`FaultPlan::seeded`] derives a
//! reproducible pseudo-random plan from a seed. The crate depends on
//! nothing and injects nothing unless armed, so shipping it in the
//! serving path is free.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod inject;
mod plan;

pub use inject::{
    arm, disarm, is_armed, read_wrap, with_plan, write_wrap, FaultyRead, FaultyWrite,
};
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanParseError, Trigger};
