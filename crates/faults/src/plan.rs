//! The fault schedule: what misbehaves, where, and how.
//!
//! A [`FaultPlan`] is a list of one-shot [`FaultEvent`]s, each firing when
//! a [`Trigger`] condition on the wrapped stream is met — a byte offset
//! crossed or an operation count reached, on the read or the write side.
//! Plans are plain data: deterministic, cloneable, comparable, and
//! round-trippable through the compact text syntax used by the chaos
//! tooling:
//!
//! ```text
//! plan    := clause (';' clause)*
//! clause  := 'path=' SUBSTR            — only streams whose path contains SUBSTR
//!          | kind '@' trigger
//! kind    := 'read-error' | 'write-error' | 'short-read' | 'torn-write'
//!          | 'stall-' MILLIS 'ms'
//! trigger := ('byte' | 'op') '=' N
//! ```
//!
//! Examples: `read-error@op=2`, `path=.grlb;torn-write@byte=64`,
//! `stall-50ms@op=1;read-error@op=3`.

use std::fmt;
use std::time::Duration;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The read call fails with [`std::io::ErrorKind::Other`].
    ReadError,
    /// The write call fails with [`std::io::ErrorKind::Other`].
    WriteError,
    /// The read returns at most one byte (never an error) — exercises
    /// callers that assume full buffers come back in one call.
    ShortRead,
    /// The write persists only the bytes below the trigger offset, then
    /// fails — the classic torn/partial write of a crash or full disk.
    TornWrite,
    /// The read completes normally after sleeping for the given duration.
    Stall(Duration),
}

impl FaultKind {
    /// Whether this kind fires on the read side of a stream.
    pub fn is_read_side(&self) -> bool {
        matches!(
            self,
            FaultKind::ReadError | FaultKind::ShortRead | FaultKind::Stall(_)
        )
    }
}

/// When an event fires, measured on the side the kind applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fires on the IO call during which the cumulative byte count would
    /// reach or pass this offset.
    ByteOffset(u64),
    /// Fires on the N-th IO call (1-based).
    OpCount(u64),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// What misbehaves.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: Trigger,
}

/// A deterministic schedule of IO faults, optionally scoped to paths
/// containing a substring.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Only streams whose path contains this substring are faulted; an
    /// empty filter matches every stream.
    pub path_filter: Option<String>,
    /// The scheduled events. Each fires at most once per wrapped stream.
    pub events: Vec<FaultEvent>,
}

/// A malformed plan string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The clause that failed to parse.
    pub clause: String,
    /// Why it was rejected.
    pub detail: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause '{}': {}", self.clause, self.detail)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan (no events, no filter) — wrapping with it is a
    /// passthrough.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan applies to a stream opened at `path`.
    pub fn matches(&self, path: &str) -> bool {
        match &self.path_filter {
            Some(filter) => path.contains(filter.as_str()),
            None => true,
        }
    }

    /// Adds an event, builder-style.
    pub fn with(mut self, kind: FaultKind, trigger: Trigger) -> Self {
        self.events.push(FaultEvent { kind, trigger });
        self
    }

    /// Restricts the plan to paths containing `filter`, builder-style.
    pub fn for_paths(mut self, filter: &str) -> Self {
        self.path_filter = Some(filter.to_owned());
        self
    }

    /// Parses the compact text syntax (see the module docs).
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::new();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(filter) = clause.strip_prefix("path=") {
                plan.path_filter = Some(filter.to_owned());
                continue;
            }
            let (kind_text, trigger_text) = clause.split_once('@').ok_or_else(|| {
                bad(
                    clause,
                    "expected KIND@TRIGGER (e.g. read-error@op=2) or path=SUBSTR",
                )
            })?;
            let kind = parse_kind(clause, kind_text)?;
            let trigger = parse_trigger(clause, trigger_text)?;
            plan.events.push(FaultEvent { kind, trigger });
        }
        Ok(plan)
    }

    /// A deterministic pseudo-random single-event plan: the same seed
    /// always yields the same fault. `len_hint` bounds the byte offsets so
    /// the fault lands inside a stream of roughly that size.
    pub fn seeded(seed: u64, len_hint: u64) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move |m: u64| {
            // splitmix64: full-period, seed-deterministic.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % m.max(1)
        };
        let offset = next(len_hint.max(1));
        let kind = match next(5) {
            0 => FaultKind::ReadError,
            1 => FaultKind::WriteError,
            2 => FaultKind::ShortRead,
            3 => FaultKind::TornWrite,
            _ => FaultKind::Stall(Duration::from_millis(1 + next(20))),
        };
        let trigger = if next(2) == 0 {
            Trigger::ByteOffset(offset)
        } else {
            Trigger::OpCount(1 + next(8))
        };
        FaultPlan::new().with(kind, trigger)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ";")?;
            }
            first = false;
            Ok(())
        };
        if let Some(filter) = &self.path_filter {
            sep(f)?;
            write!(f, "path={filter}")?;
        }
        for event in &self.events {
            sep(f)?;
            match &event.kind {
                FaultKind::ReadError => write!(f, "read-error")?,
                FaultKind::WriteError => write!(f, "write-error")?,
                FaultKind::ShortRead => write!(f, "short-read")?,
                FaultKind::TornWrite => write!(f, "torn-write")?,
                FaultKind::Stall(d) => write!(f, "stall-{}ms", d.as_millis())?,
            }
            match event.trigger {
                Trigger::ByteOffset(n) => write!(f, "@byte={n}")?,
                Trigger::OpCount(n) => write!(f, "@op={n}")?,
            }
        }
        Ok(())
    }
}

fn bad(clause: &str, detail: &str) -> PlanParseError {
    PlanParseError {
        clause: clause.to_owned(),
        detail: detail.to_owned(),
    }
}

fn parse_kind(clause: &str, text: &str) -> Result<FaultKind, PlanParseError> {
    match text {
        "read-error" => Ok(FaultKind::ReadError),
        "write-error" => Ok(FaultKind::WriteError),
        "short-read" => Ok(FaultKind::ShortRead),
        "torn-write" => Ok(FaultKind::TornWrite),
        other => {
            let millis = other
                .strip_prefix("stall-")
                .and_then(|t| t.strip_suffix("ms"))
                .and_then(|t| t.parse::<u64>().ok());
            match millis {
                Some(ms) => Ok(FaultKind::Stall(Duration::from_millis(ms))),
                None => Err(bad(
                    clause,
                    "unknown kind (expected read-error | write-error | short-read \
                     | torn-write | stall-<N>ms)",
                )),
            }
        }
    }
}

fn parse_trigger(clause: &str, text: &str) -> Result<Trigger, PlanParseError> {
    let (dim, value) = text
        .split_once('=')
        .ok_or_else(|| bad(clause, "expected byte=N or op=N after '@'"))?;
    let n: u64 = value
        .parse()
        .map_err(|_| bad(clause, "trigger value is not a number"))?;
    match dim {
        "byte" => Ok(Trigger::ByteOffset(n)),
        "op" => {
            if n == 0 {
                return Err(bad(clause, "op counts are 1-based; op=0 never fires"));
            }
            Ok(Trigger::OpCount(n))
        }
        _ => Err(bad(clause, "trigger dimension must be 'byte' or 'op'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_trigger() {
        let plan = FaultPlan::parse(
            "path=.grlb;read-error@byte=64;write-error@op=2;short-read@op=1;\
             torn-write@byte=10;stall-50ms@op=3",
        )
        .unwrap();
        assert_eq!(plan.path_filter.as_deref(), Some(".grlb"));
        assert_eq!(plan.events.len(), 5);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                kind: FaultKind::ReadError,
                trigger: Trigger::ByteOffset(64)
            }
        );
        assert_eq!(
            plan.events[4],
            FaultEvent {
                kind: FaultKind::Stall(Duration::from_millis(50)),
                trigger: Trigger::OpCount(3)
            }
        );
    }

    #[test]
    fn display_round_trips() {
        let text = "path=lib;read-error@byte=64;stall-5ms@op=2;torn-write@byte=9";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn rejects_malformed_clauses() {
        for text in [
            "read-error",        // no trigger
            "read-error@",       // empty trigger
            "read-error@byte",   // no value
            "read-error@byte=x", // non-numeric
            "read-error@line=3", // unknown dimension
            "read-error@op=0",   // op counts are 1-based
            "explode@op=1",      // unknown kind
            "stall-xms@op=1",    // bad stall duration
        ] {
            assert!(FaultPlan::parse(text).is_err(), "'{text}' must be rejected");
        }
    }

    #[test]
    fn empty_and_whitespace_plans_are_empty() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
        assert_eq!(FaultPlan::parse(" ; ; ").unwrap(), FaultPlan::new());
    }

    #[test]
    fn path_filters_scope_matching() {
        let plan = FaultPlan::parse("path=.grlb;read-error@op=1").unwrap();
        assert!(plan.matches("/tmp/lib.grlb"));
        assert!(!plan.matches("/tmp/lib.jsonl"));
        assert!(FaultPlan::new().matches("/anything"));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::seeded(seed, 1024), FaultPlan::seeded(seed, 1024));
            assert_eq!(FaultPlan::seeded(seed, 1024).events.len(), 1);
        }
        // Different seeds explore different faults.
        let distinct: std::collections::HashSet<String> = (0..64u64)
            .map(|s| FaultPlan::seeded(s, 1024).to_string())
            .collect();
        assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
    }
}
