//! `lint-baseline.json`: the committed record of allow-listed findings.
//!
//! The allowlist in `lint.toml` makes whole rule/path prefixes silent,
//! which is exactly where regressions hide. The baseline counters them: a
//! run aggregates its allow-listed findings to `(rule, file, count)` rows,
//! and CI diffs those rows against the committed file — so a *new*
//! allow-listed finding fails the build even though the allowlist would
//! have swallowed it. Rows carry no line numbers on purpose: unrelated
//! edits moving code around must not churn the baseline.
//!
//! The parser covers exactly the JSON this module writes (one object, one
//! `allowed` array of flat string/number objects) — hand-rolled because
//! the workspace is registry-less.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One baseline row: how many findings of `rule` in `file` the allowlist
/// swallows.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineRow {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Number of allow-listed findings.
    pub count: usize,
}

/// Aggregates allow-listed findings into sorted baseline rows.
pub fn rows_from(allowed: &[Finding]) -> Vec<BaselineRow> {
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in allowed {
        *counts.entry((f.rule, f.file.as_str())).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|((rule, file), count)| BaselineRow {
            rule: rule.to_owned(),
            file: file.to_owned(),
            count,
        })
        .collect()
}

/// Renders rows as the stable baseline JSON document.
pub fn render(rows: &[BaselineRow]) -> String {
    let mut out = String::from("{\n  \"allowed\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        out.push_str(&escape(&r.rule));
        out.push_str("\", \"file\": \"");
        out.push_str(&escape(&r.file));
        out.push_str("\", \"count\": ");
        out.push_str(&r.count.to_string());
        out.push('}');
    }
    if !rows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// Parses a baseline document previously written by [`render`] (tolerant
/// of key order and whitespace).
pub fn parse(text: &str) -> Result<Vec<BaselineRow>, String> {
    let mut p = Parser {
        cs: text.chars().collect(),
        i: 0,
    };
    p.ws();
    p.expect('{')?;
    let mut rows = Vec::new();
    loop {
        p.ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.expect(':')?;
        p.ws();
        if key == "allowed" {
            p.expect('[')?;
            loop {
                p.ws();
                if p.eat(']') {
                    break;
                }
                rows.push(p.row()?);
                p.ws();
                if !p.eat(',') {
                    p.ws();
                    p.expect(']')?;
                    break;
                }
            }
        } else {
            return Err(format!("baseline: unknown top-level key `{key}`"));
        }
        p.ws();
        if !p.eat(',') {
            p.ws();
            p.expect('}')?;
            break;
        }
    }
    rows.sort();
    Ok(rows)
}

/// Human-readable drift lines between the current rows and the committed
/// baseline; empty means in sync.
pub fn diff(current: &[BaselineRow], baseline: &[BaselineRow]) -> Vec<String> {
    let index = |rows: &[BaselineRow]| -> BTreeMap<(String, String), usize> {
        rows.iter()
            .map(|r| ((r.rule.clone(), r.file.clone()), r.count))
            .collect()
    };
    let cur = index(current);
    let base = index(baseline);
    let mut out = Vec::new();
    for ((rule, file), &n) in &cur {
        match base.get(&(rule.clone(), file.clone())) {
            None => out.push(format!(
                "new allow-listed findings: {n}× {rule} in {file} (not in lint-baseline.json)"
            )),
            Some(&b) if n > b => out.push(format!(
                "allow-listed findings grew: {rule} in {file}: {b} → {n}"
            )),
            Some(&b) if n < b => out.push(format!(
                "baseline is stale: {rule} in {file}: {b} → {n} — \
                 run --write-baseline to shrink it"
            )),
            Some(_) => {}
        }
    }
    for (rule, file) in base.keys() {
        if !cur.contains_key(&(rule.clone(), file.clone())) {
            out.push(format!(
                "baseline is stale: {rule} in {file} no longer fires — \
                 run --write-baseline to drop it"
            ));
        }
    }
    out.sort();
    out
}

struct Parser {
    cs: Vec<char>,
    i: usize,
}

impl Parser {
    fn ws(&mut self) {
        while self.cs.get(self.i).is_some_and(|c| c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.cs.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline: expected `{c}` at offset {}, found {:?}",
                self.i,
                self.cs.get(self.i)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.cs.get(self.i) {
                Some('"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    if let Some(&next) = self.cs.get(self.i + 1) {
                        s.push(next);
                        self.i += 2;
                    } else {
                        return Err("baseline: truncated escape".to_owned());
                    }
                }
                Some(&c) => {
                    s.push(c);
                    self.i += 1;
                }
                None => return Err("baseline: unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.i;
        while self.cs.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let text: String = self.cs[start..self.i].iter().collect();
        text.parse()
            .map_err(|_| format!("baseline: expected a count at offset {start}"))
    }

    fn row(&mut self) -> Result<BaselineRow, String> {
        self.expect('{')?;
        let mut rule = None;
        let mut file = None;
        let mut count = None;
        loop {
            self.ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.ws();
            self.expect(':')?;
            self.ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "file" => file = Some(self.string()?),
                "count" => count = Some(self.number()?),
                other => return Err(format!("baseline: unknown row key `{other}`")),
            }
            self.ws();
            if !self.eat(',') {
                self.ws();
                self.expect('}')?;
                break;
            }
        }
        Ok(BaselineRow {
            rule: rule.ok_or("baseline: row is missing `rule`")?,
            file: file.ok_or("baseline: row is missing `file`")?,
            count: count.ok_or("baseline: row is missing `count`")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rule: &str, file: &str, count: usize) -> BaselineRow {
        BaselineRow {
            rule: rule.to_owned(),
            file: file.to_owned(),
            count,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let rows = vec![
            row("hot-path-alloc", "crates/server/src/router.rs", 2),
            row("raw-id-cast", "crates/core/src/model.rs", 7),
        ];
        assert_eq!(parse(&render(&rows)).unwrap(), rows);
        assert_eq!(parse(&render(&[])).unwrap(), Vec::<BaselineRow>::new());
    }

    #[test]
    fn rows_aggregate_by_rule_and_file() {
        let allowed = vec![
            crate::rules::Finding {
                rule: "raw-id-cast",
                file: "a.rs".to_owned(),
                line: 1,
                message: String::new(),
            },
            crate::rules::Finding {
                rule: "raw-id-cast",
                file: "a.rs".to_owned(),
                line: 9,
                message: String::new(),
            },
        ];
        assert_eq!(rows_from(&allowed), vec![row("raw-id-cast", "a.rs", 2)]);
    }

    #[test]
    fn diff_reports_growth_staleness_and_novelty() {
        let cur = vec![row("a", "f1", 3), row("b", "f2", 1)];
        let base = vec![row("a", "f1", 2), row("c", "f3", 1)];
        let lines = diff(&cur, &base);
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().any(|l| l.contains("2 → 3")));
        assert!(lines
            .iter()
            .any(|l| l.contains("not in lint-baseline.json")));
        assert!(lines.iter().any(|l| l.contains("no longer fires")));
        assert!(diff(&base, &base).is_empty());
    }

    #[test]
    fn malformed_baselines_are_errors() {
        assert!(parse("").is_err());
        assert!(parse("{\"allowed\": [{\"rule\": \"x\"}]}").is_err());
        assert!(parse("{\"bogus\": []}").is_err());
    }
}
