//! The three call-graph-backed rule families: `hot-path-alloc` (workspace
//! reachability from the serving roots), `atomic-ordering` and
//! `lock-discipline` (per-file, configured by `lint.toml`).
//!
//! All three are deny-by-default. Escapes are the usual inline
//! `goalrec-lint:allow` directive (applied later by the engine), the
//! `lint.toml` allowlist, and — for `hot-path-alloc` only — a *cold-mark*:
//! a justified `goalrec-lint:allow(hot-path-alloc)` directive on the line
//! of (or directly above) an `fn` takes the whole function out of the hot
//! set, so the analyzer neither flags its body nor traverses its calls.
//! Cold-marks are for control-plane functions (admin reload, debug
//! snapshots, error formatting); site-level suppressions are for
//! documented one-off allocations.

use crate::config::{AtomicEntry, LockOrderEntry};
use crate::graph::{matching_brace, CallGraph};
use crate::lexer::{Lexed, Tok, Token};
use crate::rules::{Finding, ATOMIC_ORDERING, HOT_PATH_ALLOC, LOCK_DISCIPLINE};

fn ident(t: Option<&Token>) -> Option<&str> {
    match t {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// Whether a def is a serving-path root: `Strategy::rank_into` impls, the
/// recommender's arena entry points, the router dispatcher, and the pool
/// worker loop.
fn is_root(d: &crate::graph::FnDef) -> bool {
    match d.name.as_str() {
        "rank_into" => d.trait_name.as_deref() == Some("Strategy"),
        "recommend_into" | "recommend_into_traced" => {
            d.receiver.as_deref() == Some("GoalRecommender")
        }
        "handle" => d.receiver.is_none() && d.file.ends_with("router.rs"),
        "worker_loop" => true,
        _ => false,
    }
}

/// Whether a def carries a cold-mark: a justified
/// `goalrec-lint:allow(hot-path-alloc)` directive on its `fn` line or the
/// line directly above.
fn is_cold(d: &crate::graph::FnDef, lexed: &Lexed) -> bool {
    lexed.suppressions.iter().any(|s| {
        !s.justification.is_empty()
            && s.rules.iter().any(|r| r == HOT_PATH_ALLOC)
            && (s.line == d.line || s.line + 1 == d.line)
    })
}

/// Allocation-idiom macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Blocking-output macros.
const BLOCKING_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];
/// `Qualifier::method` allocation constructors.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("VecDeque", "new"),
    ("Box", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("String", "new"),
    ("String", "from"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];
/// `Qualifier::method` blocking calls (file IO, sleeps).
const BLOCKING_QUALIFIED: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("File", "open"),
    ("File", "create"),
    ("OpenOptions", "new"),
];
/// Allocating method calls (`.x(…)` form).
const ALLOC_METHODS: &[&str] = &["to_string", "collect", "clone"];

/// One allocation/blocking site: line plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// e.g. "`format!` allocates".
    pub what: String,
}

/// Scans a body token range for allocation and blocking sites.
pub fn alloc_sites(toks: &[Token], body: (usize, usize)) -> Vec<Site> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let Some(name) = ident(toks.get(k)) else {
            k += 1;
            continue;
        };
        let line = toks[k].line;
        if is_punct(toks.get(k + 1), '!') {
            if ALLOC_MACROS.contains(&name) {
                out.push(Site {
                    line,
                    what: format!("`{name}!` allocates"),
                });
            } else if BLOCKING_MACROS.contains(&name) {
                out.push(Site {
                    line,
                    what: format!("`{name}!` blocks on stdio"),
                });
            }
        } else if is_punct(toks.get(k + 1), ':')
            && is_punct(toks.get(k + 2), ':')
            && ident(toks.get(k + 3)).is_some()
            && is_punct(toks.get(k + 4), '(')
        {
            let method = ident(toks.get(k + 3)).unwrap_or_default();
            if ALLOC_QUALIFIED.contains(&(name, method)) {
                out.push(Site {
                    line,
                    what: format!("`{name}::{method}` allocates"),
                });
            } else if BLOCKING_QUALIFIED.contains(&(name, method)) || name == "fs" {
                out.push(Site {
                    line,
                    what: format!("`{name}::{method}` blocks"),
                });
            }
            k += 3; // past the method ident; its own scan would double-count
        } else if is_punct(toks.get(k + 1), '(')
            && k > open
            && is_punct(toks.get(k - 1), '.')
            && ALLOC_METHODS.contains(&name)
            && !(k >= 2 && is_punct(toks.get(k - 2), ':'))
        {
            let what = if name == "clone" {
                "`.clone()` allocates when the receiver owns its data (use \
                 `Arc::clone(&x)` for ref-count bumps)"
                    .to_owned()
            } else {
                format!("`.{name}()` allocates")
            };
            out.push(Site { line, what });
        }
        k += 1;
    }
    out
}

/// Runs `hot-path-alloc` over the whole workspace: BFS from the serving
/// roots (cold-marked defs block traversal), then flag every
/// allocation/blocking site inside a reached body, each finding carrying
/// its root → … → site trace.
pub fn hot_path_alloc(graph: &CallGraph, files: &[(String, Lexed)], findings: &mut Vec<Finding>) {
    let lexed_of: std::collections::BTreeMap<&str, &Lexed> =
        files.iter().map(|(r, l)| (r.as_str(), l)).collect();
    let cold: Vec<bool> = graph
        .defs
        .iter()
        .map(|d| is_cold(d, lexed_of[d.file.as_str()]))
        .collect();
    let roots: Vec<usize> = (0..graph.defs.len())
        .filter(|&i| is_root(&graph.defs[i]))
        .collect();
    if roots.is_empty() {
        return;
    }
    let reach = graph.reach(&roots, &|i| cold[i]);
    for i in 0..graph.defs.len() {
        if !reach.reached(i) {
            continue;
        }
        let d = &graph.defs[i];
        let Some(body) = d.body else { continue };
        let lexed = lexed_of[d.file.as_str()];
        let trace: Vec<String> = reach
            .path_to(i)
            .into_iter()
            .map(|j| {
                let dj = &graph.defs[j];
                format!("{} ({}:{})", dj.name, dj.file, dj.line)
            })
            .collect();
        for site in alloc_sites(&lexed.tokens, body) {
            if lexed.is_test_line(site.line) {
                continue;
            }
            findings.push(Finding {
                rule: HOT_PATH_ALLOC,
                file: d.file.clone(),
                line: site.line,
                message: format!(
                    "{} on the serving hot path; trace: {}; make it arena-backed, move it \
                     off the hot path, or cold-mark the function with a justified \
                     `goalrec-lint:allow(hot-path-alloc)` directive",
                    site.what,
                    trace.join(" → ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The comment tag that justifies a memory ordering choice.
pub const ORDERING_TAG: &str = "ordering:";

/// Walks back from the `Ordering` token to the atomic operation it
/// parameterizes and extracts (receiver name, op line).
fn atomic_receiver(toks: &[Token], ordering_idx: usize) -> Option<(String, u32)> {
    let floor = ordering_idx.saturating_sub(24);
    let mut p = ordering_idx;
    while p > floor {
        p -= 1;
        let Some(op) = ident(toks.get(p)) else {
            continue;
        };
        if !ATOMIC_OPS.contains(&op) || !is_punct(toks.get(p + 1), '(') {
            continue;
        }
        if p == 0 || !is_punct(toks.get(p - 1), '.') {
            continue;
        }
        let op_line = toks[p].line;
        // Receiver: the identifier before the dot, hopping over one
        // balanced index/call group if present.
        let mut r = p - 1;
        if r > 0 && (is_punct(toks.get(r - 1), ']') || is_punct(toks.get(r - 1), ')')) {
            let (close, open) = if is_punct(toks.get(r - 1), ']') {
                (']', '[')
            } else {
                (')', '(')
            };
            let mut depth = 1usize;
            r -= 1;
            while r > 0 && depth > 0 {
                r -= 1;
                if is_punct(toks.get(r), close) {
                    depth += 1;
                } else if is_punct(toks.get(r), open) {
                    depth -= 1;
                }
            }
        }
        let name = if r > 0 { ident(toks.get(r - 1)) } else { None };
        return Some((name.unwrap_or("<expr>").to_owned(), op_line));
    }
    None
}

/// Line of the first token of the statement containing `idx` — the token
/// after the nearest preceding `;`, `{` or `}`.
fn stmt_start_line(toks: &[Token], idx: usize) -> u32 {
    let mut p = idx;
    while p > 0 {
        let t = toks.get(p - 1);
        if is_punct(t, ';') || is_punct(t, '{') || is_punct(t, '}') {
            break;
        }
        p -= 1;
    }
    toks.get(p).map_or(0, |t| t.line)
}

/// Runs `atomic-ordering` over one file.
pub fn atomic_ordering(
    file: &str,
    lexed: &Lexed,
    registry: &[AtomicEntry],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ident(Some(t)) != Some("Ordering")
            || !is_punct(toks.get(i + 1), ':')
            || !is_punct(toks.get(i + 2), ':')
        {
            continue;
        }
        let Some(variant) = ident(toks.get(i + 3)) else {
            continue;
        };
        if !ORDERING_VARIANTS.contains(&variant) || lexed.is_test_line(t.line) {
            continue;
        }
        let line = t.line;
        let receiver = atomic_receiver(toks, i);
        if variant == "SeqCst" {
            findings.push(Finding {
                rule: ATOMIC_ORDERING,
                file: file.to_owned(),
                line,
                message: "`Ordering::SeqCst` is deny-by-default: almost every use is a \
                          stronger-than-needed default. Use Acquire/Release (or Relaxed for \
                          pure counters) with an `// ordering:` comment, or suppress with a \
                          justification for a genuine total-order requirement"
                    .to_owned(),
            });
            continue;
        }
        if variant == "Relaxed" {
            if let Some((name, _)) = &receiver {
                if let Some(entry) = registry.iter().find(|e| e.path == file && &e.name == name) {
                    findings.push(Finding {
                        rule: ATOMIC_ORDERING,
                        file: file.to_owned(),
                        line,
                        message: format!(
                            "`Ordering::Relaxed` on cross-thread atomic `{name}` ({}); \
                             Relaxed synchronizes nothing — use Acquire for loads and \
                             Release for stores that other threads observe",
                            entry.role
                        ),
                    });
                    continue;
                }
            }
        }
        // A justification may sit on/above the `Ordering` line, the line of
        // the atomic op, or the first line of the statement (multi-line
        // method chains put the comment above the receiver, not the op).
        let justified = lexed.has_comment_tag(line, ORDERING_TAG)
            || receiver
                .as_ref()
                .is_some_and(|(_, op_line)| lexed.has_comment_tag(*op_line, ORDERING_TAG))
            || lexed.has_comment_tag(stmt_start_line(toks, i), ORDERING_TAG);
        if !justified {
            findings.push(Finding {
                rule: ATOMIC_ORDERING,
                file: file.to_owned(),
                line,
                message: format!(
                    "`Ordering::{variant}` lacks a justification — add an \
                     `// ordering: <why this ordering is sufficient>` comment on or \
                     directly above this line"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

const LOCK_OPS: &[&str] = &["lock", "read", "write"];

/// Chain methods after a lock call that still bind the guard to a `let`.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

#[derive(Debug)]
struct Acquisition {
    /// Index of the op identifier token.
    idx: usize,
    line: u32,
    label: String,
    /// Token index the guard is held through (inclusive).
    hold_until: usize,
}

/// `expr.lock()` / `.read()` / `.write()` with **no arguments** — the
/// no-arg restriction keeps `io::Read::read(&mut buf)` out.
fn find_acquisitions(toks: &[Token]) -> Vec<Acquisition> {
    let mut out = Vec::new();
    // Enclosing-block close index for every token.
    let mut stack: Vec<usize> = Vec::new();
    let mut enclosing_close: Vec<usize> = vec![toks.len().saturating_sub(1); toks.len()];
    let mut closes: Vec<usize> = Vec::new(); // parallel to stack
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Punct('{') = t.tok {
            stack.push(i);
            closes.push(matching_brace(toks, i));
        } else if let Tok::Punct('}') = t.tok {
            stack.pop();
            closes.pop();
        }
        enclosing_close[i] = closes.last().copied().unwrap_or(toks.len() - 1);
    }

    for i in 0..toks.len() {
        let Some(op) = ident(toks.get(i)) else {
            continue;
        };
        if !LOCK_OPS.contains(&op)
            || i == 0
            || !is_punct(toks.get(i - 1), '.')
            || !is_punct(toks.get(i + 1), '(')
            || !is_punct(toks.get(i + 2), ')')
        {
            continue;
        }
        let label = lock_label(toks, i - 1);
        let hold_until = if is_guard_bound(toks, i) {
            enclosing_close[i]
        } else {
            // Temporary guard: held to the end of the statement. A `{` at
            // depth 0 means the statement is an `if let`/`for`/`match`
            // over the guard — the temporary lives to the end of that
            // whole expression (its block plus any `else` chain), and is
            // dropped at its close, not held into the next statement.
            let mut j = i + 3;
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('{') if depth == 0 => {
                        let close = matching_brace(toks, j);
                        if ident(toks.get(close + 1)) == Some("else") {
                            j = close + 1;
                        } else {
                            j = close;
                            break;
                        }
                    }
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            j
        };
        out.push(Acquisition {
            idx: i,
            line: toks[i].line,
            label,
            hold_until,
        });
    }
    out
}

/// Name of the lock being acquired: the identifier before the dot,
/// hopping over one balanced index/call group.
fn lock_label(toks: &[Token], dot_idx: usize) -> String {
    let mut r = dot_idx;
    while r > 0 && (is_punct(toks.get(r - 1), ']') || is_punct(toks.get(r - 1), ')')) {
        let (close, open) = if is_punct(toks.get(r - 1), ']') {
            (']', '[')
        } else {
            (')', '(')
        };
        let mut depth = 1usize;
        r -= 1;
        while r > 0 && depth > 0 {
            r -= 1;
            if is_punct(toks.get(r), close) {
                depth += 1;
            } else if is_punct(toks.get(r), open) {
                depth -= 1;
            }
        }
    }
    if r > 0 {
        if let Some(name) = ident(toks.get(r - 1)) {
            return name.to_owned();
        }
    }
    "<expr>".to_owned()
}

/// Whether the acquisition at `op_idx` binds its guard to a `let` (so the
/// guard lives to the end of the block): the statement starts with `let`
/// and the chain after the call is only guard adapters up to the `;`.
fn is_guard_bound(toks: &[Token], op_idx: usize) -> bool {
    // Statement start: scan back to `;`, `{` or `}` at balance 0.
    let mut j = op_idx;
    let mut depth = 0i32;
    let start = loop {
        if j == 0 {
            break 0;
        }
        j -= 1;
        match toks[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                if depth == 0 {
                    break j + 1;
                }
                depth -= 1;
            }
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth == 0 => break j + 1,
            _ => {}
        }
    };
    if ident(toks.get(start)) != Some("let") {
        return false;
    }
    // Forward from the call's `()`: only adapter calls until the `;`.
    let mut k = op_idx + 3;
    loop {
        if is_punct(toks.get(k), ';') {
            return true;
        }
        if !is_punct(toks.get(k), '.') {
            return false;
        }
        let Some(m) = ident(toks.get(k + 1)) else {
            return false;
        };
        if !GUARD_ADAPTERS.contains(&m) || !is_punct(toks.get(k + 2), '(') {
            return false;
        }
        // Skip the adapter's balanced argument list.
        let mut depth = 1usize;
        let mut p = k + 3;
        while p < toks.len() && depth > 0 {
            match toks[p].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth -= 1,
                _ => {}
            }
            p += 1;
        }
        k = p;
    }
}

/// Runs `lock-discipline` over one file: every lexically nested
/// acquisition pair must appear in the declared hierarchy.
pub fn lock_discipline(
    file: &str,
    lexed: &Lexed,
    order: &[LockOrderEntry],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let acqs = find_acquisitions(toks);
    for outer in &acqs {
        if lexed.is_test_line(outer.line) {
            continue;
        }
        for inner in &acqs {
            if inner.idx <= outer.idx || inner.idx > outer.hold_until {
                continue;
            }
            if inner.label == outer.label {
                findings.push(Finding {
                    rule: LOCK_DISCIPLINE,
                    file: file.to_owned(),
                    line: inner.line,
                    message: format!(
                        "lock `{}` acquired while a guard on `{}` (line {}) is still \
                         held — same-label nesting risks self-deadlock and is never \
                         allowed by the hierarchy",
                        inner.label, outer.label, outer.line
                    ),
                });
            } else if !order
                .iter()
                .any(|e| e.outer == outer.label && e.inner == inner.label)
            {
                findings.push(Finding {
                    rule: LOCK_DISCIPLINE,
                    file: file.to_owned(),
                    line: inner.line,
                    message: format!(
                        "lock `{}` acquired while a guard on `{}` (line {}) is still \
                         held, but `{} → {}` is not in the declared hierarchy — add a \
                         `[[lock_order]]` entry to lint.toml or restructure to drop \
                         the outer guard first",
                        inner.label, outer.label, outer.line, outer.label, inner.label
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::lexer::lex;

    fn hot_findings(files: &[(&str, &str)]) -> Vec<(String, u32)> {
        let lexed: Vec<(String, Lexed)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), lex(s)))
            .collect();
        let g = graph::build(&lexed);
        let mut out = Vec::new();
        hot_path_alloc(&g, &lexed, &mut out);
        out.into_iter().map(|f| (f.file, f.line)).collect()
    }

    #[test]
    fn allocations_are_flagged_transitively_with_a_trace() {
        let src = "\
trait Strategy { fn rank_into(&self); }
struct Best;
impl Strategy for Best {
    fn rank_into(&self) { helper(); }
}
fn helper() {
    let _ = format!(\"x\");
}
fn unreached() { let _ = format!(\"y\"); }
";
        let got = hot_findings(&[("crates/core/src/s.rs", src)]);
        assert_eq!(got, vec![("crates/core/src/s.rs".to_owned(), 7)]);

        // The trace names the full chain.
        let lexed = vec![("crates/core/src/s.rs".to_owned(), lex(src))];
        let g = graph::build(&lexed);
        let mut fs = Vec::new();
        hot_path_alloc(&g, &lexed, &mut fs);
        assert!(
            fs[0]
                .message
                .contains("rank_into (crates/core/src/s.rs:4) → helper"),
            "got: {}",
            fs[0].message
        );
    }

    #[test]
    fn cold_marks_sever_traversal() {
        let src = "\
fn worker_loop() { control(); }
// goalrec-lint:allow(hot-path-alloc): admin control plane, not serving
fn control() { let _ = format!(\"x\"); deeper(); }
fn deeper() { let _ = vec![1]; }
";
        assert!(hot_findings(&[("crates/server/src/pool.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_calls_are_flagged() {
        let src = "\
fn worker_loop() {
    std::thread::sleep(d);
    println!(\"x\");
}
";
        let got = hot_findings(&[("crates/server/src/pool.rs", src)]);
        assert_eq!(
            got,
            vec![
                ("crates/server/src/pool.rs".to_owned(), 2),
                ("crates/server/src/pool.rs".to_owned(), 3)
            ]
        );
    }

    #[test]
    fn arc_clone_qualified_form_is_not_a_site() {
        let src = "\
fn worker_loop(x: &std::sync::Arc<u32>) {
    let _a = std::sync::Arc::clone(x);
    let _b = x.clone();
}
";
        let got = hot_findings(&[("crates/server/src/pool.rs", src)]);
        assert_eq!(got, vec![("crates/server/src/pool.rs".to_owned(), 3)]);
    }

    fn atomic_findings(src: &str, registry: &[AtomicEntry]) -> Vec<u32> {
        let lexed = lex(src);
        let mut out = Vec::new();
        atomic_ordering("crates/x/src/a.rs", &lexed, registry, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn seqcst_is_always_flagged_and_comments_justify_the_rest() {
        let src = "\
fn f(a: &std::sync::atomic::AtomicU64) {
    a.store(1, Ordering::SeqCst); // ordering: comment does not save SeqCst
    // ordering: release pairs with the acquire load in g()
    a.store(2, Ordering::Release);
    a.store(3, Ordering::Release);
}
";
        assert_eq!(atomic_findings(src, &[]), vec![2, 5]);
    }

    #[test]
    fn relaxed_on_registered_cross_thread_atomic_is_flagged() {
        let registry = vec![AtomicEntry {
            name: "SHUTDOWN".to_owned(),
            path: "crates/x/src/a.rs".to_owned(),
            role: "signal handler → worker flag".to_owned(),
        }];
        let src = "\
fn f() {
    // ordering: comment cannot excuse a registered cross-thread flag
    SHUTDOWN.store(true, Ordering::Relaxed);
    // ordering: pure local counter
    OTHER.fetch_add(1, Ordering::Relaxed);
}
";
        assert_eq!(atomic_findings(src, &registry), vec![3]);
    }

    #[test]
    fn multi_line_atomic_calls_find_the_justification() {
        let src = "\
fn f(a: &A) {
    // ordering: relaxed gauge, no synchronization carried
    a.inner
        .fetch_add(1, Ordering::Relaxed);
}
";
        assert_eq!(atomic_findings(src, &[]), Vec::<u32>::new());
    }

    fn lock_findings(src: &str, order: &[LockOrderEntry]) -> Vec<u32> {
        let lexed = lex(src);
        let mut out = Vec::new();
        lock_discipline("crates/x/src/a.rs", &lexed, order, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn nested_acquisition_needs_a_declared_pair() {
        let src = "\
fn f(a: &M, b: &M) {
    let g = a.lock().unwrap();
    let h = b.lock().unwrap();
    drop(h);
    drop(g);
}
";
        assert_eq!(lock_findings(src, &[]), vec![3]);
        let order = vec![LockOrderEntry {
            outer: "a".to_owned(),
            inner: "b".to_owned(),
            reason: "a guards b".to_owned(),
        }];
        assert_eq!(lock_findings(src, &order), Vec::<u32>::new());
        // The reverse order is not declared.
        let rev = "\
fn f(a: &M, b: &M) {
    let h = b.lock().unwrap();
    let g = a.lock().unwrap();
}
";
        assert_eq!(lock_findings(rev, &order), vec![3]);
    }

    #[test]
    fn temporary_guards_do_not_hold_past_their_statement() {
        let src = "\
fn f(a: &M, b: &M) {
    let n = a.lock().unwrap().len();
    let g = b.lock().unwrap();
}
";
        assert_eq!(lock_findings(src, &[]), Vec::<u32>::new());
    }

    #[test]
    fn scrutinee_guards_drop_at_their_expressions_close() {
        // The read-then-upgrade idiom: the `if let` scrutinee guard is
        // dropped when the if-let (with no else) closes, so the write
        // lock after it is NOT nested. A `for` over a guard likewise
        // releases at the loop's close.
        let src = "\
fn f(map: &RwLock<M>) {
    if let Some(v) = map.read().unwrap().get(k) {
        return v.clone();
    }
    let mut w = map.write().unwrap();
    for x in map.read().unwrap().iter() {
        use_it(x);
    }
}
fn g(map: &RwLock<M>, other: &RwLock<M>) {
    if let Some(v) = map.read().unwrap().get(k) {
        noop();
    } else {
        let w = other.lock().unwrap();
    }
}
";
        // In `f` the only overlap is `w` (held to block close) vs the
        // `for` read on `map` — same label, line 6. In `g` the guard is
        // still live in the `else` arm (the classic 2021 footgun), so
        // the nested `other.lock()` needs a declared pair.
        assert_eq!(lock_findings(src, &[]), vec![6, 14]);
    }

    #[test]
    fn arg_taking_read_write_calls_are_not_acquisitions() {
        let src = "\
fn f(stream: &mut S, l: &L) {
    let g = l.read().unwrap();
    stream.read(&mut buf);
    stream.write(&data);
}
";
        assert_eq!(lock_findings(src, &[]), Vec::<u32>::new());
    }

    #[test]
    fn indexed_lock_labels_use_the_collection_name() {
        let src = "\
fn f(&self) {
    let s = self.stripes[i % N].lock().unwrap();
    let t = self.stripes[j].lock().unwrap();
}
";
        // Same label → always a finding.
        assert_eq!(lock_findings(src, &[]), vec![3]);
    }
}
