//! `lint.toml` allowlist parsing.
//!
//! The workspace is registry-less, so instead of a TOML dependency this
//! module parses the strict subset the allowlist needs:
//!
//! ```toml
//! [[allow]]
//! rule = "raw-id-cast"
//! path = "crates/core/src/model.rs"
//! reason = "posting lists are raw u32 by design"
//! ```
//!
//! Every entry requires all three keys; `reason` must be non-empty. `path`
//! is a workspace-relative prefix, so a directory allows a whole subtree.
//! Unknown keys, unknown sections and malformed lines are hard errors —
//! the allowlist is part of the lint's trusted configuration, so it fails
//! closed.

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry applies to.
    pub rule: String,
    /// Workspace-relative path prefix the entry covers.
    pub path: String,
    /// Mandatory human-readable justification.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry covers a finding of `rule` in `file`.
    pub fn covers(&self, rule: &str, file: &str) -> bool {
        self.rule == rule && file.starts_with(&self.path)
    }
}

/// Parses the `lint.toml` allowlist. `source_name` labels error messages.
pub fn parse_allowlist(text: &str, source_name: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(Option<String>, Option<String>, Option<String>)> = None;

    let finish = |slot: Option<(Option<String>, Option<String>, Option<String>)>,
                  entries: &mut Vec<AllowEntry>,
                  line_no: usize|
     -> Result<(), String> {
        let Some((rule, path, reason)) = slot else {
            return Ok(());
        };
        let entry = AllowEntry {
            rule: rule.ok_or_else(|| {
                format!("{source_name}:{line_no}: [[allow]] entry is missing `rule`")
            })?,
            path: path.ok_or_else(|| {
                format!("{source_name}:{line_no}: [[allow]] entry is missing `path`")
            })?,
            reason: reason.ok_or_else(|| {
                format!("{source_name}:{line_no}: [[allow]] entry is missing `reason`")
            })?,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!(
                "{source_name}:{line_no}: allowlist entry for `{}` has an empty reason",
                entry.rule
            ));
        }
        entries.push(entry);
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut entries, line_no)?;
            current = Some((None, None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{source_name}:{line_no}: unknown section {line}; only [[allow]] is supported"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{source_name}:{line_no}: expected `key = \"value\"`"
            ));
        };
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!("{source_name}:{line_no}: value must be a double-quoted string")
            })?;
        let Some(slot) = current.as_mut() else {
            return Err(format!(
                "{source_name}:{line_no}: key outside of an [[allow]] entry"
            ));
        };
        match key.trim() {
            "rule" => slot.0 = Some(value.to_owned()),
            "path" => slot.1 = Some(value.to_owned()),
            "reason" => slot.2 = Some(value.to_owned()),
            other => {
                return Err(format!(
                    "{source_name}:{line_no}: unknown key `{other}` in [[allow]] entry"
                ));
            }
        }
    }
    finish(current.take(), &mut entries, text.lines().count())?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_prefix_matching() {
        let toml = r#"
# workspace allowlist
[[allow]]
rule = "raw-id-cast"
path = "crates/core/src/model.rs"
reason = "posting lists are raw u32 by design"

[[allow]]
rule = "no-panic-paths"
path = "crates/eval/src/experiments/"
reason = "offline drivers may abort"
"#;
        let entries = parse_allowlist(toml, "lint.toml").unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].covers("raw-id-cast", "crates/core/src/model.rs"));
        assert!(!entries[0].covers("raw-id-cast", "crates/core/src/dynamic.rs"));
        assert!(entries[1].covers("no-panic-paths", "crates/eval/src/experiments/table2.rs"));
        assert!(!entries[1].covers("raw-id-cast", "crates/eval/src/experiments/table2.rs"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let toml = "[[allow]]\nrule = \"raw-id-cast\"\npath = \"crates/\"\n";
        assert!(parse_allowlist(toml, "lint.toml").is_err());
        let toml = "[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"  \"\n";
        assert!(parse_allowlist(toml, "lint.toml").is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_allowlist("[deny]\n", "lint.toml").is_err());
        assert!(parse_allowlist("rule = \"x\"\n", "lint.toml").is_err());
        assert!(parse_allowlist("[[allow]]\nbogus = \"x\"\n", "lint.toml").is_err());
        assert!(parse_allowlist("[[allow]]\nrule = unquoted\n", "lint.toml").is_err());
    }

    #[test]
    fn empty_config_is_fine() {
        assert!(parse_allowlist("", "lint.toml").unwrap().is_empty());
        assert!(parse_allowlist("# only comments\n", "lint.toml")
            .unwrap()
            .is_empty());
    }
}
