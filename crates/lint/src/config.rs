//! `lint.toml` parsing.
//!
//! The workspace is registry-less, so instead of a TOML dependency this
//! module parses the strict subset the configuration needs: `[[allow]]`
//! entries (rule + path prefix + reason), the `[[atomic]]` registry of
//! cross-thread atomics (name + path + role), and the `[[lock_order]]`
//! hierarchy (outer + inner + reason):
//!
//! ```toml
//! [[allow]]
//! rule = "raw-id-cast"
//! path = "crates/core/src/model.rs"
//! reason = "posting lists are raw u32 by design"
//!
//! [[atomic]]
//! name = "SIGNAL_RECEIVED"
//! path = "crates/server/src/shutdown.rs"
//! role = "signal handler → accept/worker threads"
//!
//! [[lock_order]]
//! outer = "slot"
//! inner = "stripes"
//! reason = "reload holds the state slot while tail stripes flush"
//! ```
//!
//! Every entry requires all of its keys with non-empty values. Unknown
//! keys, unknown sections, malformed lines, `outer == inner`, and cycles
//! in the declared lock hierarchy are hard errors — the configuration is
//! part of the lint's trusted input, so it fails closed.

use std::collections::BTreeMap;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry applies to.
    pub rule: String,
    /// Workspace-relative path prefix the entry covers.
    pub path: String,
    /// Mandatory human-readable justification.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry covers a finding of `rule` in `file`.
    pub fn covers(&self, rule: &str, file: &str) -> bool {
        self.rule == rule && file.starts_with(&self.path)
    }
}

/// One registered cross-thread atomic (for `atomic-ordering`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicEntry {
    /// The static/field identifier as it appears at call sites.
    pub name: String,
    /// Workspace-relative file the atomic lives in.
    pub path: String,
    /// Which threads communicate through it (the annotation).
    pub role: String,
}

/// One declared lock-ordering pair (for `lock-discipline`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderEntry {
    /// Label of the lock acquired first.
    pub outer: String,
    /// Label of the lock that may be acquired while `outer` is held.
    pub inner: String,
    /// Why this nesting is deadlock-free.
    pub reason: String,
}

/// The parsed `lint.toml`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// `[[allow]]` entries.
    pub allow: Vec<AllowEntry>,
    /// `[[atomic]]` cross-thread registry.
    pub atomics: Vec<AtomicEntry>,
    /// `[[lock_order]]` hierarchy.
    pub lock_order: Vec<LockOrderEntry>,
}

const SECTIONS: &[(&str, &[&str])] = &[
    ("allow", &["rule", "path", "reason"]),
    ("atomic", &["name", "path", "role"]),
    ("lock_order", &["outer", "inner", "reason"]),
];

/// Parses the full `lint.toml`. `source_name` labels error messages.
pub fn parse_config(text: &str, source_name: &str) -> Result<LintConfig, String> {
    let mut config = LintConfig::default();
    let mut current: Option<(String, BTreeMap<String, String>, usize)> = None;

    let finish = |slot: Option<(String, BTreeMap<String, String>, usize)>,
                  config: &mut LintConfig|
     -> Result<(), String> {
        let Some((section, keys, line_no)) = slot else {
            return Ok(());
        };
        let required = SECTIONS
            .iter()
            .find(|(s, _)| *s == section)
            .map(|(_, keys)| *keys)
            .unwrap_or_default();
        let get = |key: &str| -> Result<String, String> {
            let v = keys.get(key).ok_or_else(|| {
                format!("{source_name}:{line_no}: [[{section}]] entry is missing `{key}`")
            })?;
            if v.trim().is_empty() {
                return Err(format!(
                    "{source_name}:{line_no}: [[{section}]] entry has an empty `{key}`"
                ));
            }
            Ok(v.clone())
        };
        let values: Vec<String> = required.iter().map(|k| get(k)).collect::<Result<_, _>>()?;
        match section.as_str() {
            "allow" => config.allow.push(AllowEntry {
                rule: values[0].clone(),
                path: values[1].clone(),
                reason: values[2].clone(),
            }),
            "atomic" => config.atomics.push(AtomicEntry {
                name: values[0].clone(),
                path: values[1].clone(),
                role: values[2].clone(),
            }),
            "lock_order" => {
                if values[0] == values[1] {
                    return Err(format!(
                        "{source_name}:{line_no}: [[lock_order]] entry declares `{}` \
                         inside itself; same-label nesting is never allowed",
                        values[0]
                    ));
                }
                config.lock_order.push(LockOrderEntry {
                    outer: values[0].clone(),
                    inner: values[1].clone(),
                    reason: values[2].clone(),
                });
            }
            _ => unreachable!("validated on open"),
        }
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            if !SECTIONS.iter().any(|(s, _)| *s == section) {
                return Err(format!(
                    "{source_name}:{line_no}: unknown section [[{section}]]; supported: \
                     [[allow]], [[atomic]], [[lock_order]]"
                ));
            }
            finish(current.take(), &mut config)?;
            current = Some((section.to_owned(), BTreeMap::new(), line_no));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{source_name}:{line_no}: unknown section {line}; only [[allow]], \
                 [[atomic]] and [[lock_order]] are supported"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{source_name}:{line_no}: expected `key = \"value\"`"
            ));
        };
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!("{source_name}:{line_no}: value must be a double-quoted string")
            })?;
        let Some((section, keys, _)) = current.as_mut() else {
            return Err(format!("{source_name}:{line_no}: key outside of an entry"));
        };
        let key = key.trim();
        let known = SECTIONS
            .iter()
            .find(|(s, _)| s == section)
            .is_some_and(|(_, ks)| ks.contains(&key));
        if !known {
            return Err(format!(
                "{source_name}:{line_no}: unknown key `{key}` in [[{section}]] entry"
            ));
        }
        keys.insert(key.to_owned(), value.to_owned());
    }
    finish(current.take(), &mut config)?;

    check_lock_order_acyclic(&config.lock_order, source_name)?;
    Ok(config)
}

/// Rejects cycles in the declared hierarchy: a cycle would make every
/// acquisition order "declared" while still being deadlock-prone.
fn check_lock_order_acyclic(order: &[LockOrderEntry], source_name: &str) -> Result<(), String> {
    let labels: Vec<&str> = {
        let mut v: Vec<&str> = order
            .iter()
            .flat_map(|e| [e.outer.as_str(), e.inner.as_str()])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Iterative DFS with colors over the tiny declared graph.
    let index = |l: &str| labels.binary_search(&l).unwrap_or_default();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); labels.len()];
    for e in order {
        adj[index(&e.outer)].push(index(&e.inner));
    }
    let mut color = vec![0u8; labels.len()]; // 0 white, 1 gray, 2 black
    for s in 0..labels.len() {
        if color[s] != 0 {
            continue;
        }
        let mut stack = vec![(s, 0usize)];
        color[s] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                if color[v] == 1 {
                    return Err(format!(
                        "{source_name}: [[lock_order]] hierarchy contains a cycle through \
                         `{}` — a cyclic hierarchy permits deadlock",
                        labels[v]
                    ));
                }
                if color[v] == 0 {
                    color[v] = 1;
                    stack.push((v, 0));
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_sections() {
        let toml = r#"
# workspace config
[[allow]]
rule = "raw-id-cast"
path = "crates/core/src/model.rs"
reason = "posting lists are raw u32 by design"

[[atomic]]
name = "SIGNAL_RECEIVED"
path = "crates/server/src/shutdown.rs"
role = "signal handler to accept loop"

[[lock_order]]
outer = "slot"
inner = "stripes"
reason = "reload flushes tails while holding the state slot"
"#;
        let config = parse_config(toml, "lint.toml").unwrap();
        assert_eq!(config.allow.len(), 1);
        assert!(config.allow[0].covers("raw-id-cast", "crates/core/src/model.rs"));
        assert!(!config.allow[0].covers("raw-id-cast", "crates/core/src/dynamic.rs"));
        assert_eq!(config.atomics[0].name, "SIGNAL_RECEIVED");
        assert_eq!(config.lock_order[0].outer, "slot");
    }

    #[test]
    fn missing_or_empty_values_are_errors() {
        let toml = "[[allow]]\nrule = \"raw-id-cast\"\npath = \"crates/\"\n";
        assert!(parse_config(toml, "lint.toml").is_err());
        let toml = "[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"  \"\n";
        assert!(parse_config(toml, "lint.toml").is_err());
        let toml = "[[atomic]]\nname = \"X\"\npath = \"y\"\n";
        assert!(parse_config(toml, "lint.toml").is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_config("[deny]\n", "lint.toml").is_err());
        assert!(parse_config("rule = \"x\"\n", "lint.toml").is_err());
        assert!(parse_config("[[allow]]\nbogus = \"x\"\n", "lint.toml").is_err());
        assert!(parse_config("[[allow]]\nrule = unquoted\n", "lint.toml").is_err());
        assert!(parse_config("[[atomic]]\nrule = \"x\"\n", "lint.toml").is_err());
    }

    #[test]
    fn lock_order_rejects_self_and_cycles() {
        let self_pair = "[[lock_order]]\nouter = \"a\"\ninner = \"a\"\nreason = \"r\"\n";
        assert!(parse_config(self_pair, "lint.toml").is_err());
        let cycle = "\
[[lock_order]]
outer = \"a\"
inner = \"b\"
reason = \"r\"
[[lock_order]]
outer = \"b\"
inner = \"c\"
reason = \"r\"
[[lock_order]]
outer = \"c\"
inner = \"a\"
reason = \"r\"
";
        let err = parse_config(cycle, "lint.toml").unwrap_err();
        assert!(err.contains("cycle"), "got: {err}");
        // A diamond (a→b, a→c, b→c) is fine.
        let dag = "\
[[lock_order]]
outer = \"a\"
inner = \"b\"
reason = \"r\"
[[lock_order]]
outer = \"a\"
inner = \"c\"
reason = \"r\"
[[lock_order]]
outer = \"b\"
inner = \"c\"
reason = \"r\"
";
        assert!(parse_config(dag, "lint.toml").is_ok());
    }

    #[test]
    fn empty_config_is_fine() {
        assert!(parse_config("", "lint.toml").unwrap() == LintConfig::default());
        assert!(parse_config("# only comments\n", "lint.toml")
            .unwrap()
            .allow
            .is_empty());
    }
}
