//! The lint driver: walks the workspace, lexes every file once, builds the
//! call graph, runs the per-file and call-graph rules, applies inline
//! suppressions and the `lint.toml` allowlist, and cross-checks the metric
//! registry against the README.
//!
//! Allowlisted findings are not dropped — they are reported separately in
//! [`RunResult::allowed`] so the baseline machinery can diff them (new
//! findings stay visible even for allow-listed rules).

use crate::callgraph;
use crate::config::{parse_config, LintConfig};
use crate::graph;
use crate::lexer::{lex, Lexed};
use crate::rules::{
    readme_metrics, registry_names, registry_namespaces, source_rules, Finding,
    METRIC_NAME_REGISTRY, METRIC_REGISTRY_PATH, RULES, SUPPRESSION_FORMAT,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Everything one lint run produced.
#[derive(Debug)]
pub struct RunResult {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings swallowed by the `lint.toml` allowlist, same order —
    /// the input to `lint-baseline.json`.
    pub allowed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Knobs for one run.
#[derive(Debug, Default)]
pub struct RunOptions {
    /// When set, only findings in these workspace-relative files are
    /// reported. The call graph is still built over the whole workspace,
    /// so reachability through unchanged files is intact.
    pub changed_files: Option<BTreeSet<String>>,
}

/// Lints the workspace rooted at `root` with default options.
pub fn run_workspace(root: &Path) -> Result<RunResult, String> {
    run_workspace_with(root, &RunOptions::default())
}

/// Lints the workspace rooted at `root`. Configuration problems (missing
/// registry, malformed `lint.toml`, unreadable files) are `Err`s, distinct
/// from findings.
pub fn run_workspace_with(root: &Path, opts: &RunOptions) -> Result<RunResult, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; pass the workspace root via --root",
            root.display()
        ));
    }

    let config = load_config(root)?;

    // The registry is the source of truth for metric names; a workspace
    // without it cannot satisfy the metric-name-registry rule at all.
    let registry_src = read(&root.join(METRIC_REGISTRY_PATH))?;
    let registry = registry_names(&lex(&registry_src));
    let namespaces = registry_namespaces(&registry);

    let readme = read(&root.join("README.md"))?;
    let documented = readme_metrics(&readme);

    let files = collect_rs_files(root, &crates_dir)?;
    let mut lexed_files: Vec<(String, Lexed)> = Vec::with_capacity(files.len());
    for (rel, abs) in &files {
        lexed_files.push((rel.clone(), lex(&read(abs)?)));
    }

    // Per-file rules, then the workspace-level call-graph pass.
    let mut raw: Vec<Finding> = Vec::new();
    for (rel, lexed) in &lexed_files {
        raw.extend(source_rules(rel, lexed, &namespaces));
        callgraph::atomic_ordering(rel, lexed, &config.atomics, &mut raw);
        callgraph::lock_discipline(rel, lexed, &config.lock_order, &mut raw);
    }
    let deps = crate_deps(&crates_dir);
    let call_graph = graph::build_with_deps(&lexed_files, &deps);
    callgraph::hot_path_alloc(&call_graph, &lexed_files, &mut raw);

    // Inline suppressions apply at the finding's site, per file.
    let mut raw_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in raw {
        raw_by_file.entry(f.file.clone()).or_default().push(f);
    }
    let mut findings = Vec::new();
    for (rel, lexed) in &lexed_files {
        let file_raw = raw_by_file.remove(rel.as_str()).unwrap_or_default();
        findings.extend(apply_suppressions(rel, lexed, file_raw));
    }
    // Findings in files without a lexed source (shouldn't happen) pass
    // through unsuppressed.
    findings.extend(raw_by_file.into_values().flatten());

    registry_readme_drift(&registry, &documented, &mut findings);

    let (allowed, mut findings): (Vec<Finding>, Vec<Finding>) = findings
        .into_iter()
        .partition(|f| config.allow.iter().any(|e| e.covers(f.rule, &f.file)));
    if let Some(changed) = &opts.changed_files {
        findings.retain(|f| changed.contains(&f.file));
    }
    let sort = |v: &mut Vec<Finding>| {
        v.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
    };
    let mut allowed = allowed;
    sort(&mut findings);
    sort(&mut allowed);
    Ok(RunResult {
        findings,
        allowed,
        files_scanned: files.len(),
    })
}

/// Transitive crate→crate dependency map from the workspace manifests.
/// Dependencies are declared as `goalrec-<dir>` (workspace path deps), so
/// a line scan of each `crates/<dir>/Cargo.toml` suffices. Crates without
/// a manifest get no entry and stay unrestricted in call resolution —
/// that keeps manifest-less test fixtures working.
fn crate_deps(crates_dir: &Path) -> graph::CrateDeps {
    let mut direct: graph::CrateDeps = BTreeMap::new();
    let Ok(entries) = fs::read_dir(crates_dir) else {
        return direct;
    };
    for entry in entries.flatten() {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let Ok(manifest) = fs::read_to_string(entry.path().join("Cargo.toml")) else {
            continue;
        };
        let mut deps = BTreeSet::new();
        for line in manifest.lines() {
            let line = line.trim();
            // Skip the crate's own `name = "goalrec-x"` line; dependency
            // lines start with the bare `goalrec-` key.
            let Some(rest) = line.strip_prefix("goalrec-") else {
                continue;
            };
            let dep: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !dep.is_empty() && dep != name {
                deps.insert(dep);
            }
        }
        direct.insert(name, deps);
    }
    // Transitive closure: small map, iterate to a fixed point.
    loop {
        let mut grew = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            for d in deps.clone() {
                if let Some(indirect) = snapshot.get(&d) {
                    for i in indirect {
                        grew |= deps.insert(i.clone());
                    }
                }
            }
        }
        if !grew {
            return direct;
        }
    }
}

fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(LintConfig::default());
    }
    let config = parse_config(&read(&path)?, "lint.toml")?;
    for e in &config.allow {
        if !RULES.contains(&e.rule.as_str()) {
            return Err(format!(
                "lint.toml: unknown rule `{}` in allowlist (known: {})",
                e.rule,
                RULES.join(", ")
            ));
        }
    }
    Ok(config)
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// All `.rs` files under `crates/*/src/`, as (workspace-relative, absolute)
/// pairs in deterministic order.
fn collect_rs_files(root: &Path, crates_dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk(&src, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry
            .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Drops findings covered by a well-formed inline directive on the same or
/// the preceding line, and reports malformed directives as findings of
/// their own (which never suppress anything).
fn apply_suppressions(file: &str, lexed: &Lexed, raw: Vec<Finding>) -> Vec<Finding> {
    let mut out = Vec::new();
    for s in &lexed.suppressions {
        let unknown: Vec<&String> = s
            .rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .collect();
        if s.rules.is_empty() || !unknown.is_empty() {
            out.push(Finding {
                rule: SUPPRESSION_FORMAT,
                file: file.to_owned(),
                line: s.line,
                message: format!(
                    "suppression names no known rule (known: {}); it has no effect",
                    RULES.join(", ")
                ),
            });
        } else if s.justification.is_empty() {
            out.push(Finding {
                rule: SUPPRESSION_FORMAT,
                file: file.to_owned(),
                line: s.line,
                message: "suppression is missing its justification — write \
                          `// goalrec-lint:allow(<rule>): <why this is safe>`"
                    .to_owned(),
            });
        }
    }
    for f in raw {
        let suppressed = lexed.suppressions.iter().any(|s| {
            !s.justification.is_empty()
                && s.rules.iter().all(|r| RULES.contains(&r.as_str()))
                && s.rules.iter().any(|r| r == f.rule)
                && (s.line == f.line || s.line + 1 == f.line)
        });
        if !suppressed {
            out.push(f);
        }
    }
    out
}

/// The README half of `metric-name-registry`: every registered name must
/// appear in the README's Observability table and vice versa. A registry
/// name also counts as documented when it matches a documented *pattern*
/// row — `span.shard.3` is covered by `span.shard.<i>` — so pre-expanded
/// per-instance names (arrays of `&'static str` for hot-path use) need one
/// pattern row, not one row per expansion.
fn registry_readme_drift(
    registry: &[(String, u32)],
    documented: &[(String, u32)],
    findings: &mut Vec<Finding>,
) {
    let documented_set: BTreeSet<&str> = documented.iter().map(|(n, _)| n.as_str()).collect();
    let registry_set: BTreeSet<&str> = registry.iter().map(|(n, _)| n.as_str()).collect();
    let covered = |name: &str| {
        documented_set.contains(name) || documented_set.iter().any(|pat| pattern_covers(pat, name))
    };
    for (name, line) in registry {
        if !covered(name.as_str()) {
            findings.push(Finding {
                rule: METRIC_NAME_REGISTRY,
                file: METRIC_REGISTRY_PATH.to_owned(),
                line: *line,
                message: format!(
                    "registered metric \"{name}\" is missing from the README's \
                     Observability table"
                ),
            });
        }
    }
    // Pattern rows themselves must still exist verbatim in the registry
    // (the registry keeps the `<placeholder>` form as its own constant),
    // so the reverse direction stays an exact check.
    for (name, line) in documented {
        if !registry_set.contains(name.as_str()) {
            findings.push(Finding {
                rule: METRIC_NAME_REGISTRY,
                file: "README.md".to_owned(),
                line: *line,
                message: format!(
                    "README documents metric \"{name}\" which is not registered in \
                     {METRIC_REGISTRY_PATH}"
                ),
            });
        }
    }
}

/// Does the documented pattern (`span.shard.<i>`) cover the concrete
/// registry name (`span.shard.3`)? Segment-wise: a `<placeholder>`
/// segment matches exactly one non-empty concrete segment, every other
/// segment must match verbatim. Patterns without a placeholder never
/// "cover" anything — exact names are handled by the set lookup.
fn pattern_covers(pattern: &str, name: &str) -> bool {
    if !pattern.contains('<') {
        return false;
    }
    let pats: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    pats.len() == segs.len()
        && pats.iter().zip(&segs).all(|(p, s)| {
            if p.starts_with('<') && p.ends_with('>') {
                !s.is_empty()
            } else {
                p == s
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "\
// goalrec-lint:allow(no-panic-paths): boundary checked above
x.unwrap();
y.unwrap(); // goalrec-lint:allow(no-panic-paths): cannot be empty here

z.unwrap();
";
        let lexed = lex(src);
        let raw = vec![
            finding(crate::rules::NO_PANIC_PATHS, "f.rs", 2),
            finding(crate::rules::NO_PANIC_PATHS, "f.rs", 3),
            finding(crate::rules::NO_PANIC_PATHS, "f.rs", 5),
        ];
        let kept = apply_suppressions("f.rs", &lexed, raw);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 5);
    }

    #[test]
    fn bad_directives_become_findings_and_do_not_suppress() {
        let src = "\
x.unwrap(); // goalrec-lint:allow(no-panic-paths)
y.unwrap(); // goalrec-lint:allow(no-such-rule): justified
";
        let lexed = lex(src);
        let raw = vec![
            finding(crate::rules::NO_PANIC_PATHS, "f.rs", 1),
            finding(crate::rules::NO_PANIC_PATHS, "f.rs", 2),
        ];
        let kept = apply_suppressions("f.rs", &lexed, raw);
        // Two directive findings plus the two unsuppressed originals.
        assert_eq!(kept.len(), 4);
        assert_eq!(
            kept.iter().filter(|f| f.rule == SUPPRESSION_FORMAT).count(),
            2
        );
    }

    #[test]
    fn drift_is_reported_in_both_directions() {
        let registry = vec![
            ("model.builds".to_owned(), 10),
            ("model.orphan".to_owned(), 11),
        ];
        let documented = vec![
            ("model.builds".to_owned(), 5),
            ("model.ghost".to_owned(), 6),
        ];
        let mut findings = Vec::new();
        registry_readme_drift(&registry, &documented, &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("model.orphan"));
        assert_eq!(findings[1].file, "README.md");
        assert!(findings[1].message.contains("model.ghost"));
    }

    #[test]
    fn documented_pattern_rows_cover_expanded_registry_names() {
        let registry = vec![
            ("span.shard.<i>".to_owned(), 10),
            ("span.shard.0".to_owned(), 11),
            ("span.shard.15".to_owned(), 12),
            ("span.shard.0.extra".to_owned(), 13),
        ];
        let documented = vec![("span.shard.<i>".to_owned(), 5)];
        let mut findings = Vec::new();
        registry_readme_drift(&registry, &documented, &mut findings);
        // The pattern row covers its expansions but not a deeper name.
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("span.shard.0.extra"));
    }

    #[test]
    fn pattern_covers_is_segment_exact() {
        assert!(pattern_covers("span.shard.<i>", "span.shard.3"));
        assert!(pattern_covers(
            "strategy.<name>.requests",
            "strategy.Breadth.requests"
        ));
        assert!(!pattern_covers("span.shard.<i>", "span.shard"));
        assert!(!pattern_covers("span.shard.<i>", "span.reload.load"));
        assert!(!pattern_covers("span.shard.3", "span.shard.3"));
    }
}
