//! Conservative workspace call graph over the token streams.
//!
//! The container is registry-less, so there is no real name resolution to
//! lean on; this pass builds the best call graph a token scan can support
//! and errs on the side of **over**-approximation (extra edges), which is
//! the safe direction for reachability rules like `hot-path-alloc`:
//!
//! * every `fn` item becomes a node, annotated with the type it is
//!   implemented on (`impl Foo` / `impl Trait for Foo`) and the trait, if
//!   any — both reduced to their last path segment;
//! * call sites are recognized syntactically in four forms — `name(…)`,
//!   `expr.name(…)`, `Qualifier::name(…)` (turbofish included) and
//!   `<Type as Trait>::name(…)` — and resolved by name:
//!   - a bare call resolves to free functions of that name only;
//!   - a method call resolves to every method of that name, narrowed to
//!     the enclosing impl's type (and its trait) when the receiver is
//!     literally `self`;
//!   - a qualified call resolves to methods of the named type or trait
//!     when the workspace knows it, and to free functions otherwise
//!     (which is what makes module-qualified calls like `names::f(…)`
//!     work);
//!   - a qualified-path call resolves to implementations of the named
//!     trait, falling back to methods of the named type.
//!
//! Known over-approximations (documented in DESIGN.md): same-name methods
//! on unrelated types alias into one callee set when the receiver is not
//! `self`; closures attribute their calls to the enclosing `fn`; calls
//! through function pointers/references are invisible. The `hot-path-alloc`
//! rule provides the escape hatch (a justified cold-mark on the callee).

use crate::lexer::{Lexed, Tok, Token};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Transitive workspace dependencies per crate directory name: an entry
/// `core → {obs}` means code in `crates/core` can call into `crates/obs`.
/// Crates absent from the map are unrestricted (no manifest was found).
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// Crate directory name of a workspace-relative path
/// (`crates/core/src/model.rs` → `core`).
pub fn crate_of(file: &str) -> Option<&str> {
    file.strip_prefix("crates/")?.split('/').next()
}

/// One `fn` item (free function, inherent/trait method, or trait-provided
/// default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Workspace-relative file the item lives in.
    pub file: String,
    /// Function name, raw-identifier prefix kept (`r#fn`).
    pub name: String,
    /// Last path segment of the impl'd type, or the trait name for
    /// trait-provided defaults; `None` for free functions.
    pub receiver: Option<String>,
    /// Trait being implemented (`impl Tr for Foo`), or the declaring
    /// trait for defaults.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body including both braces; `None` for
    /// signature-only declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` range.
    pub is_test: bool,
}

/// How a call site is written, which decides how it resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — free function call.
    Free,
    /// `expr.name(…)`; `self_recv` when the receiver is literally `self`.
    Method {
        /// Receiver is the bare `self` token.
        self_recv: bool,
    },
    /// `Qualifier::name(…)` — the last path segment before the method.
    Qualified {
        /// Last path segment before `::name` (empty when unknowable).
        qualifier: String,
    },
    /// `<Type as Trait>::name(…)`.
    TraitCast {
        /// First identifier inside the angle brackets.
        ty: String,
        /// Last identifier inside the angle brackets (the trait).
        trait_name: String,
    },
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Syntactic form.
    pub kind: CallKind,
}

/// The workspace call graph: nodes are [`FnDef`]s, edges carry the call
/// line for reachability traces.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function definitions, in file/token order.
    pub defs: Vec<FnDef>,
    /// `edges[i]` = (callee def index, call line) pairs out of `defs[i]`.
    pub edges: Vec<Vec<(usize, u32)>>,
}

/// BFS result: for each def, the (caller def, call line) it was first
/// reached through, or `None` if unreached (roots point at themselves).
#[derive(Debug)]
pub struct Reachability {
    /// Parent pointers; `parent[i] == Some((i, _))` marks a root.
    pub parent: Vec<Option<(usize, u32)>>,
}

impl Reachability {
    /// Whether `def` is reachable from any root.
    pub fn reached(&self, def: usize) -> bool {
        self.parent[def].is_some()
    }

    /// The root-to-`def` chain of def indices (inclusive both ends).
    pub fn path_to(&self, def: usize) -> Vec<usize> {
        let mut path = vec![def];
        let mut cur = def;
        while let Some((p, _)) = self.parent[cur] {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

fn ident(t: Option<&Token>) -> Option<&str> {
    match t {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

/// Index of the `}` matching the `{` at `open` (or the stream end).
pub fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        match toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    i - 1
}

/// Skips a balanced `<…>` group starting at `open` (a `<`), tolerant of
/// `->` arrows inside; returns the index just past the closing `>`.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        match toks[i].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') if !is_punct(toks.get(i - 1), '-') => depth -= 1,
            Tok::Punct('{') | Tok::Punct(';') => break, // lost; bail out
            _ => {}
        }
        i += 1;
    }
    i
}

/// Extracts all function definitions from one lexed file.
pub fn parse_defs(file: &str, lexed: &Lexed) -> Vec<FnDef> {
    let mut defs = Vec::new();
    scan_items(file, lexed, 0, lexed.tokens.len(), None, None, &mut defs);
    defs
}

#[allow(clippy::too_many_arguments)]
fn scan_items(
    file: &str,
    lexed: &Lexed,
    start: usize,
    end: usize,
    receiver: Option<&str>,
    trait_name: Option<&str>,
    defs: &mut Vec<FnDef>,
) {
    let toks = &lexed.tokens;
    let mut i = start;
    while i < end {
        match ident(toks.get(i)) {
            Some("impl") => {
                let (recv, tr, body_open) = parse_impl_header(toks, i + 1, end);
                let Some(open) = body_open else {
                    i += 1;
                    continue;
                };
                let close = matching_brace(toks, open);
                scan_items(
                    file,
                    lexed,
                    open + 1,
                    close,
                    recv.as_deref(),
                    tr.as_deref(),
                    defs,
                );
                i = close + 1;
            }
            Some("trait") => {
                let name = ident(toks.get(i + 1)).map(str::to_owned);
                let mut j = i + 2;
                while j < end && !is_punct(toks.get(j), '{') && !is_punct(toks.get(j), ';') {
                    j += 1;
                }
                if !is_punct(toks.get(j), '{') {
                    i = j + 1;
                    continue;
                }
                let close = matching_brace(toks, j);
                scan_items(
                    file,
                    lexed,
                    j + 1,
                    close,
                    name.as_deref(),
                    name.as_deref(),
                    defs,
                );
                i = close + 1;
            }
            Some("fn") => {
                // `fn` in type position (`fn(u32) -> u32`) has no name.
                let Some(name) = ident(toks.get(i + 1)) else {
                    i += 1;
                    continue;
                };
                let line = toks[i].line;
                let mut j = i + 2;
                while j < end && !is_punct(toks.get(j), '{') && !is_punct(toks.get(j), ';') {
                    j += 1;
                }
                let body = if is_punct(toks.get(j), '{') {
                    Some((j, matching_brace(toks, j)))
                } else {
                    None
                };
                defs.push(FnDef {
                    file: file.to_owned(),
                    name: name.to_owned(),
                    receiver: receiver.map(str::to_owned),
                    trait_name: trait_name.map(str::to_owned),
                    line,
                    body,
                    is_test: lexed.is_test_line(line),
                });
                i = body.map_or(j + 1, |(_, close)| close + 1);
            }
            _ => i += 1,
        }
    }
}

/// Parses an impl header from just after the `impl` keyword: returns the
/// (type, trait) last path segments and the index of the body's `{`.
fn parse_impl_header(
    toks: &[Token],
    mut i: usize,
    end: usize,
) -> (Option<String>, Option<String>, Option<usize>) {
    if is_punct(toks.get(i), '<') {
        i = skip_angles(toks, i);
    }
    // Collect angle-depth-0 identifiers up to `{`, truncated at `where`.
    let mut before_for: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut saw_for = false;
    let mut saw_where = false;
    while i < end && !is_punct(toks.get(i), '{') {
        if is_punct(toks.get(i), '<') {
            i = skip_angles(toks, i);
            continue;
        }
        match ident(toks.get(i)) {
            Some("for") => saw_for = true,
            Some("where") => saw_where = true,
            Some("dyn") | Some("mut") | Some("ref") | None => {}
            Some(name) if !saw_where => {
                if saw_for {
                    after_for.push(name);
                } else {
                    before_for.push(name);
                }
            }
            Some(_) => {}
        }
        i += 1;
    }
    if !is_punct(toks.get(i), '{') {
        return (None, None, None);
    }
    let (recv, tr) = if saw_for {
        (
            after_for.last().map(|s| (*s).to_owned()),
            before_for.last().map(|s| (*s).to_owned()),
        )
    } else {
        (before_for.last().map(|s| (*s).to_owned()), None)
    };
    (recv, tr, Some(i))
}

/// Extracts the call sites inside a body token range `(open, close)`.
pub fn call_sites(toks: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let Some(name) = ident(toks.get(k)) else {
            k += 1;
            continue;
        };
        if KEYWORDS.contains(&name) || ident(toks.get(k.wrapping_sub(1))) == Some("fn") {
            k += 1;
            continue;
        }
        // A call follows as `(` directly or through a `::<…>` turbofish.
        let after = k + 1;
        let call_paren = if is_punct(toks.get(after), '(') {
            Some(after)
        } else if is_punct(toks.get(after), ':')
            && is_punct(toks.get(after + 1), ':')
            && is_punct(toks.get(after + 2), '<')
        {
            let past = skip_angles(toks, after + 2);
            is_punct(toks.get(past), '(').then_some(past)
        } else {
            None
        };
        if call_paren.is_none() {
            k += 1;
            continue;
        }
        let kind = classify_call(toks, k, open);
        out.push(CallSite {
            name: name.to_owned(),
            line: toks[k].line,
            kind,
        });
        k += 1;
    }
    out
}

/// Classifies the call at token `k` (the callee identifier) by what
/// precedes it; `floor` bounds the backward scan.
fn classify_call(toks: &[Token], k: usize, floor: usize) -> CallKind {
    if k == 0 || k <= floor {
        return CallKind::Free;
    }
    if is_punct(toks.get(k - 1), '.') {
        let self_recv = k >= 2
            && ident(toks.get(k - 2)) == Some("self")
            && (k < 3 || !is_punct(toks.get(k - 3), '.'));
        return CallKind::Method { self_recv };
    }
    if k >= 2 && is_punct(toks.get(k - 1), ':') && is_punct(toks.get(k - 2), ':') {
        if k >= 3 {
            if let Some(q) = ident(toks.get(k - 3)) {
                return CallKind::Qualified {
                    qualifier: q.to_owned(),
                };
            }
            if is_punct(toks.get(k - 3), '>') {
                return classify_angle_qualifier(toks, k - 3, floor);
            }
        }
        return CallKind::Qualified {
            qualifier: String::new(),
        };
    }
    CallKind::Free
}

/// Resolves the `<…>::name(…)` and `Path::<…>::name(…)` forms: `close`
/// points at the `>` directly before the `::`.
fn classify_angle_qualifier(toks: &[Token], close: usize, floor: usize) -> CallKind {
    // Walk back to the matching `<`.
    let mut depth = 1usize;
    let mut i = close;
    while i > floor && depth > 0 {
        i -= 1;
        match toks[i].tok {
            Tok::Punct('>') if !is_punct(toks.get(i.wrapping_sub(1)), '-') => depth += 1,
            Tok::Punct('<') => depth -= 1,
            _ => {}
        }
    }
    if depth != 0 {
        return CallKind::Qualified {
            qualifier: String::new(),
        };
    }
    let inner: Vec<&str> = toks[i + 1..close]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    if let Some(as_pos) = inner.iter().position(|s| *s == "as") {
        let ty = inner.first().copied().unwrap_or_default();
        let tr = inner.last().copied().unwrap_or_default();
        if as_pos > 0 && as_pos < inner.len() - 1 {
            return CallKind::TraitCast {
                ty: ty.to_owned(),
                trait_name: tr.to_owned(),
            };
        }
    }
    // Turbofish on a path: `Vec::<u32>::new(…)` — the qualifier is the
    // identifier before the `::<`.
    if i >= 3 && is_punct(toks.get(i - 1), ':') && is_punct(toks.get(i - 2), ':') {
        if let Some(q) = ident(toks.get(i - 3)) {
            return CallKind::Qualified {
                qualifier: q.to_owned(),
            };
        }
    }
    CallKind::Qualified {
        qualifier: String::new(),
    }
}

/// Builds the call graph over every non-test `fn` in `files`
/// (workspace-relative path → lexed file, in deterministic order).
/// Unlike [`build_with_deps`], name resolution is not restricted by crate
/// dependencies.
pub fn build(files: &[(String, Lexed)]) -> CallGraph {
    build_with_deps(files, &CrateDeps::new())
}

/// [`build`], with candidate callees filtered by the crate dependency map:
/// a def in crate D only resolves from a caller in crate C when C == D or
/// C (transitively) depends on D. Cuts same-name aliasing across unrelated
/// crates — a server routine cannot "call" a CLI helper it cannot link to.
pub fn build_with_deps(files: &[(String, Lexed)], deps: &CrateDeps) -> CallGraph {
    let mut defs: Vec<FnDef> = Vec::new();
    for (rel, lexed) in files {
        defs.extend(parse_defs(rel, lexed).into_iter().filter(|d| !d.is_test));
    }

    // Name indexes for resolution.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        if d.receiver.is_none() {
            free_by_name.entry(&d.name).or_default().push(i);
        } else {
            methods_by_name.entry(&d.name).or_default().push(i);
        }
    }

    let lexed_of: BTreeMap<&str, &Lexed> = files.iter().map(|(r, l)| (r.as_str(), l)).collect();
    let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); defs.len()];
    for i in 0..defs.len() {
        let Some(body) = defs[i].body else { continue };
        let lexed = lexed_of[defs[i].file.as_str()];
        for site in call_sites(&lexed.tokens, body) {
            let mut callees = resolve(&defs, &free_by_name, &methods_by_name, i, &site);
            callees.retain(|&c| callable(deps, &defs[i].file, &defs[c].file));
            for c in callees {
                if !edges[i].iter().any(|&(e, _)| e == c) {
                    edges[i].push((c, site.line));
                }
            }
        }
    }
    CallGraph { defs, edges }
}

/// Whether a def in `callee_file`'s crate is visible to `caller_file`'s
/// crate under `deps`. Files outside `crates/` and crates without a map
/// entry are unrestricted.
fn callable(deps: &CrateDeps, caller_file: &str, callee_file: &str) -> bool {
    let (Some(caller), Some(callee)) = (crate_of(caller_file), crate_of(callee_file)) else {
        return true;
    };
    if caller == callee {
        return true;
    }
    deps.get(caller).is_none_or(|set| set.contains(callee))
}

fn resolve(
    defs: &[FnDef],
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    site: &CallSite,
) -> Vec<usize> {
    let free = || {
        free_by_name
            .get(site.name.as_str())
            .cloned()
            .unwrap_or_default()
    };
    let methods = || {
        methods_by_name
            .get(site.name.as_str())
            .cloned()
            .unwrap_or_default()
    };
    match &site.kind {
        CallKind::Free => {
            // A bare call names an item in scope. If the caller's own file
            // defines a free fn with this name, that one shadows (a
            // clashing module-level `use` would be a conflict), so prefer
            // it; otherwise fall back to every free fn with the name.
            let all = free();
            let same_file: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&m| defs[m].file == defs[caller].file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            all
        }
        CallKind::Method { self_recv } => {
            let all = methods();
            if *self_recv {
                let caller_recv = defs[caller].receiver.as_deref();
                let caller_trait = defs[caller].trait_name.as_deref();
                let narrowed: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&m| {
                        let r = defs[m].receiver.as_deref();
                        r == caller_recv || (caller_trait.is_some() && r == caller_trait)
                    })
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
            all
        }
        CallKind::Qualified { qualifier } => {
            let q = if qualifier == "Self" {
                defs[caller].receiver.clone().unwrap_or_default()
            } else {
                qualifier.clone()
            };
            let of_type: Vec<usize> = methods()
                .into_iter()
                .filter(|&m| {
                    defs[m].receiver.as_deref() == Some(q.as_str())
                        || defs[m].trait_name.as_deref() == Some(q.as_str())
                })
                .collect();
            if !of_type.is_empty() {
                return of_type;
            }
            // Unknown qualifier: module path (`names::f(…)`) or a std
            // type. Free functions by name cover the former.
            free()
        }
        CallKind::TraitCast { ty, trait_name } => {
            let all = methods();
            let of_trait: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&m| defs[m].trait_name.as_deref() == Some(trait_name.as_str()))
                .collect();
            if !of_trait.is_empty() {
                return of_trait;
            }
            let of_type: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&m| defs[m].receiver.as_deref() == Some(ty.as_str()))
                .collect();
            if !of_type.is_empty() {
                return of_type;
            }
            all
        }
    }
}

impl CallGraph {
    /// BFS from `roots`, never entering defs for which `blocked` returns
    /// true (cold-marked functions). Roots that are blocked stay
    /// unreached.
    pub fn reach(&self, roots: &[usize], blocked: &dyn Fn(usize) -> bool) -> Reachability {
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; self.defs.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if !blocked(r) && parent[r].is_none() {
                parent[r] = Some((r, self.defs[r].line));
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &(v, line) in &self.edges[u] {
                if parent[v].is_none() && !blocked(v) {
                    parent[v] = Some((u, line));
                    queue.push_back(v);
                }
            }
        }
        Reachability { parent }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> CallGraph {
        build(&[("crates/x/src/lib.rs".to_owned(), lex(src))])
    }

    fn def(g: &CallGraph, name: &str) -> usize {
        g.defs.iter().position(|d| d.name == name).unwrap()
    }

    fn callees<'g>(g: &'g CallGraph, name: &str) -> Vec<&'g str> {
        let i = def(g, name);
        let mut out: Vec<&str> = g.edges[i]
            .iter()
            .map(|&(c, _)| g.defs[c].name.as_str())
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn defs_carry_receiver_and_trait() {
        let g = graph_of(
            "fn free() {}\n\
             struct Foo;\n\
             impl Foo { fn m(&self) {} }\n\
             trait Tr { fn t(&self) { self.m2(); } fn m2(&self); }\n\
             impl Tr for Foo { fn m2(&self) {} }\n",
        );
        let free = &g.defs[def(&g, "free")];
        assert_eq!(
            (free.receiver.as_deref(), free.trait_name.as_deref()),
            (None, None)
        );
        let m = &g.defs[def(&g, "m")];
        assert_eq!(m.receiver.as_deref(), Some("Foo"));
        let t = &g.defs[def(&g, "t")];
        assert_eq!(
            (t.receiver.as_deref(), t.trait_name.as_deref()),
            (Some("Tr"), Some("Tr"))
        );
        // Both the trait declaration and the impl produce an `m2` def.
        assert!(g.defs.iter().any(|d| d.name == "m2"
            && d.receiver.as_deref() == Some("Foo")
            && d.trait_name.as_deref() == Some("Tr")
            && d.body.is_some()));
        assert!(g
            .defs
            .iter()
            .any(|d| d.name == "m2" && d.receiver.as_deref() == Some("Tr") && d.body.is_none()));
    }

    #[test]
    fn generic_impl_headers_resolve_the_type_not_the_params() {
        let g = graph_of(
            "struct Bounded<T>(T);\n\
             impl<T: Clone> Bounded<T> where T: Send { fn push(&self) {} }\n\
             impl<F: Fn() -> u32> Bounded<F> { fn call(&self) {} }\n",
        );
        assert_eq!(g.defs[def(&g, "push")].receiver.as_deref(), Some("Bounded"));
        assert_eq!(g.defs[def(&g, "call")].receiver.as_deref(), Some("Bounded"));
    }

    #[test]
    fn bare_calls_resolve_to_free_fns_only() {
        let g = graph_of(
            "fn helper() {}\n\
             struct S;\n\
             impl S { fn helper(&self) {} }\n\
             fn root() { helper(); }\n",
        );
        let root = def(&g, "root");
        assert_eq!(g.edges[root].len(), 1);
        let (c, _) = g.edges[root][0];
        assert!(g.defs[c].receiver.is_none(), "must not hit the method");
    }

    #[test]
    fn self_method_calls_narrow_to_the_impl_type() {
        let g = graph_of(
            "struct A; struct B;\n\
             impl A { fn go(&self) {} fn root(&self) { self.go(); } }\n\
             impl B { fn go(&self) {} }\n",
        );
        let root = def(&g, "root");
        assert_eq!(g.edges[root].len(), 1);
        let (c, _) = g.edges[root][0];
        assert_eq!(g.defs[c].receiver.as_deref(), Some("A"));
    }

    #[test]
    fn unknown_receiver_methods_fan_out_to_all_candidates() {
        let g = graph_of(
            "struct A; struct B;\n\
             impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n\
             fn root(x: &A) { x.go(); }\n",
        );
        assert_eq!(callees(&g, "root"), vec!["go", "go"]);
    }

    #[test]
    fn qualified_and_trait_cast_calls_resolve() {
        let g = graph_of(
            "struct Scratch;\n\
             impl Scratch { fn new() -> Self { Scratch } }\n\
             trait Rank { fn rank(&self); }\n\
             struct Best;\n\
             impl Rank for Best { fn rank(&self) {} }\n\
             fn a() { let _ = Scratch::new(); }\n\
             fn b(x: &Best) { <Best as Rank>::rank(x); }\n\
             fn c(x: &Best) { Rank::rank(x); }\n",
        );
        assert_eq!(callees(&g, "a"), vec!["new"]);
        // Both the trait declaration (bodyless sink) and the impl match.
        assert_eq!(callees(&g, "b"), vec!["rank", "rank"]);
        assert_eq!(callees(&g, "c"), vec!["rank", "rank"]);
    }

    #[test]
    fn module_qualified_free_calls_fall_back_by_name() {
        let g = graph_of(
            "mod names { }\n\
             fn server_route(x: u32) -> u32 { x }\n\
             fn root() { let _ = names::server_route(1); }\n",
        );
        assert_eq!(callees(&g, "root"), vec!["server_route"]);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let g = graph_of(
            "fn make<T>() -> Option<T> { None }\n\
             struct S;\n\
             impl S { fn pick<T>(&self) {} }\n\
             fn root(s: &S) { let _ = make::<u32>(); s.pick::<u32>(); }\n",
        );
        assert_eq!(callees(&g, "root"), vec!["make", "pick"]);
    }

    #[test]
    fn method_calls_split_across_lines_resolve() {
        let g = graph_of(
            "struct S;\n\
             impl S { fn step(&self) {} }\n\
             fn root(s: &S) {\n\
                 s\n\
                     .step();\n\
             }\n",
        );
        assert_eq!(callees(&g, "root"), vec!["step"]);
        let root = def(&g, "root");
        assert_eq!(g.edges[root][0].1, 5, "edge carries the callee line");
    }

    #[test]
    fn raw_identifier_fns_do_not_collide_with_keywords() {
        let g = graph_of(
            "fn r#fn() {}\n\
             fn root() { r#fn(); }\n",
        );
        assert_eq!(callees(&g, "root"), vec!["r#fn"]);
        // And the `r#fn` def did not swallow the rest of the file.
        assert_eq!(g.defs.len(), 2);
    }

    #[test]
    fn fn_pointer_types_and_nested_fns_are_not_separate_defs() {
        let g = graph_of(
            "fn outer() {\n\
                 let _f: fn(u32) -> u32 = |x| x;\n\
                 fn inner() {}\n\
                 inner;\n\
             }\n",
        );
        let names: Vec<&str> = g.defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["outer"]);
    }

    #[test]
    fn test_code_is_excluded_from_the_graph() {
        let g = graph_of(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests { fn helper() { } }\n",
        );
        assert_eq!(g.defs.len(), 1);
    }

    #[test]
    fn reachability_paths_and_cold_blocking() {
        let g = graph_of(
            "fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n\
             fn island() {}\n",
        );
        let r = def(&g, "root");
        let reach = g.reach(&[r], &|_| false);
        let leaf = def(&g, "leaf");
        assert!(reach.reached(leaf));
        let path: Vec<&str> = reach
            .path_to(leaf)
            .into_iter()
            .map(|i| g.defs[i].name.as_str())
            .collect();
        assert_eq!(path, vec!["root", "mid", "leaf"]);
        assert!(!reach.reached(def(&g, "island")));

        let mid = def(&g, "mid");
        let blocked = g.reach(&[r], &|i| i == mid);
        assert!(!blocked.reached(leaf), "cold mid must sever the path");
    }
}
